"""Observability quickstart: metrics, stats views and request tracing.

Run with::

    python examples/observability_quickstart.py

The serving, streaming, cluster and runtime layers are instrumented with
``repro.obs`` — one stdlib-only metrics registry plus span tracing.  This
script shows the full surface on a live two-shard cluster:

1. stand up a :class:`ShardedForecaster` and drive bursty multi-tenant
   traffic through it — every layer records into the default
   :class:`MetricsRegistry` as a side effect of serving;
2. read latency percentiles straight from the log-bucketed histograms
   (p50/p95/p99 from bucket interpolation, O(1) memory per histogram);
3. export the same numbers as JSON and Prometheus text — the ``*Stats``
   counters the layers already keep are folded in as registry views, so
   ``stats_snapshot()`` and the exports can never disagree;
4. turn on span tracing for one ``forecast_all`` fan-out and export the
   resulting tree (cluster → shard → service flush → batch assembly →
   compiled plan replay) as Chrome trace-event JSON — load it in
   ``chrome://tracing`` or https://ui.perfetto.dev to see the waterfall.

Tracing is off by default and metrics degrade to one attribute check per
touchpoint when disabled, so the instrumented hot paths stay near-free
(see ``benchmarks/test_obs_overhead.py`` for the enforced gate).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cluster import ShardedForecaster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService

INPUT_LENGTH = 48
HORIZON = 12
N_TENANTS = 32
N_BURSTS = 4


def main() -> None:
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=1, patch_length=12,
        hidden_dim=32, dropout=0.0,
    )
    cluster = ShardedForecaster(
        lambda: ForecastService(LiPFormer(config), max_batch_size=16), n_shards=2
    )

    # --- 1. serve bursty traffic; instrumentation rides along ------------
    rng = np.random.default_rng(0)
    for i in range(N_TENANTS):
        cluster.ingest(f"tenant-{i}", rng.normal(size=(INPUT_LENGTH, 1)).astype(np.float32))
    for _ in range(N_BURSTS):
        for i in range(N_TENANTS):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(4, 1)).astype(np.float32))
        cluster.forecast_all()
    print(f"served {N_TENANTS * N_BURSTS + N_TENANTS} forecasts across 2 shards\n")

    # --- 2. latency percentiles from the serving histograms --------------
    latency = obs.histogram("repro_serving_request_latency_seconds")
    flush = obs.histogram("repro_serving_flush_seconds")
    print("request latency: "
          + ", ".join(f"p{q} {latency.percentile(q) * 1e3:.2f}ms" for q in (50, 95, 99)))
    print(f"flush time:      p50 {flush.percentile(50) * 1e3:.2f}ms "
          f"over {flush.count} flushes")
    print(f"peak queue depth: {obs.gauge('repro_serving_queue_depth').max_value:.0f}\n")

    # --- 3. stats views + Prometheus export ------------------------------
    registry = obs.default_registry()
    views = registry.views_snapshot()
    for key in sorted(views):
        if key.startswith(("repro_serving_", "repro_plan_cache_")):
            print(f"{key} = {views[key]:g}")
    print("\nPrometheus excerpt:")
    for line in registry.prometheus().splitlines():
        if line.startswith("repro_serving_request_latency_seconds"):
            print(f"  {line}")

    # --- 4. trace one fan-out and export a Chrome trace ------------------
    recorder = obs.default_recorder()
    recorder.clear()
    with obs.observability(tracing=True):
        cluster.forecast_all()
    recorder.export_chrome("forecast_all_trace.json")
    spans = recorder.spans()
    print(f"\ntraced 1 forecast_all: {len(spans)} spans "
          f"({sorted({span.name for span in spans})})")
    print("Chrome trace written to forecast_all_trace.json — open in chrome://tracing")


if __name__ == "__main__":
    main()
