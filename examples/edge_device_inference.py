"""Edge-device style inference comparison (paper Table VII).

The paper deploys LiPFormer and a vanilla Transformer on a CPU-only edge box
and measures seconds per inference as the input window grows.  This example
reproduces that comparison on the local CPU (optionally limiting BLAS
threads to emulate a weaker device) and also prints the parameter / MAC
comparison behind Table III's efficiency columns.

Run with::

    python examples/edge_device_inference.py
"""

from __future__ import annotations

from repro import ModelConfig, create_model
from repro.baselines import PAPER_BASELINES
from repro.profiling import (
    edge_inference_profile,
    human_readable_count,
    measure_macs,
    time_training_step,
)


def main() -> None:
    n_channels = 7          # ETTh1-style channel count
    horizon = 24
    base_config = ModelConfig(
        input_length=96,
        horizon=horizon,
        n_channels=n_channels,
        patch_length=24,
        hidden_dim=64,
        dropout=0.0,
    )

    # --- Table VII shape: seconds per inference vs input length ------------ #
    input_lengths = (96, 192, 336, 720)
    print(f"single-sample CPU inference seconds (channels={n_channels}):")
    print(f"{'model':>14s} | " + " | ".join(f"T={length:<4d}" for length in input_lengths))
    profiles = {}
    for model_name in ("Transformer", "LiPFormer"):
        profiles[model_name] = edge_inference_profile(
            model_factory=lambda config, name=model_name: create_model(name, config),
            base_config=base_config,
            input_lengths=input_lengths,
            batch_size=1,
            n_threads=4,     # emulate a small CPU
        )
        row = " | ".join(f"{profiles[model_name][length]:.4f}" for length in input_lengths)
        print(f"{model_name:>14s} | {row}")
    speedups = [
        profiles["Transformer"][length] / profiles["LiPFormer"][length] for length in input_lengths
    ]
    print("LiPFormer speedup over Transformer: "
          + ", ".join(f"{speedup:.1f}x" for speedup in speedups))

    # --- Table III efficiency columns: parameters and MACs ----------------- #
    print("\nparameters and MACs for one forward pass (batch 32):")
    print(f"{'model':>14s} | {'params':>10s} | {'MACs':>10s} | {'train step (s)':>14s}")
    for model_name in ("LiPFormer",) + tuple(PAPER_BASELINES) + ("Transformer",):
        model = create_model(model_name, base_config)
        print(
            f"{model_name:>14s} | {human_readable_count(model.num_parameters()):>10s} | "
            f"{human_readable_count(measure_macs(model, batch_size=32)):>10s} | "
            f"{time_training_step(model, batch_size=32):>14.4f}"
        )


if __name__ == "__main__":
    main()
