"""Cluster quickstart: sharded, persistent multi-tenant serving.

Run with::

    python examples/cluster_quickstart.py

Where ``streaming_quickstart.py`` serves many tenants through ONE model
replica in ONE process, this script is the scaling step past both limits:

1. stand up a :class:`ShardedForecaster` — N full streaming stacks (one
   :class:`ForecastService` replica each) behind a consistent-hash ring
   that routes every tenant to a stable shard;
2. serve live traffic through the cluster façade: per-shard micro-batches,
   cluster-wide stats via ``ServiceStats.merge``;
3. grow the cluster live: ``add_shard`` migrates ONLY the tenants whose
   ring assignment changed (≈ 1/N of them), carrying ring buffers,
   timestamp watermarks and Welford scaler moments with them;
4. survive a restart: snapshot the whole cluster to one ``.npz`` archive,
   revive it around fresh replicas, and verify the revived cluster
   forecasts bit-identically;
5. run the fan-outs in parallel (``repro.runtime.PoolExecutor`` drives S
   shards on S cores), checkpoint O(churn) with ``save_incremental``, and
   survive a dead replica with ``failover`` — tenants re-home to the
   survivors from the last checkpoint chain.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import ModelConfig
from repro.cluster import ShardedForecaster
from repro.core import LiPFormer
from repro.serving import ForecastService


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A cluster of model replicas.  Construction is deterministic from
    #    config.seed, so every shard's service hosts identical weights —
    #    in production you would load one trained state dict per replica.
    # ------------------------------------------------------------------ #
    config = ModelConfig(input_length=96, horizon=24, n_channels=1,
                         patch_length=24, hidden_dim=64, dropout=0.0)

    def service_factory() -> ForecastService:
        return ForecastService(LiPFormer(config), max_batch_size=64)

    cluster = ShardedForecaster(service_factory, n_shards=2, normalization="rolling")

    # Forty tenants at wildly different operating levels; the rolling
    # per-tenant scalers mean none of them needs an offline fit.
    rng = np.random.default_rng(17)
    t = np.arange(140, dtype=np.float32)
    tenants = {}
    for i in range(40):
        level = 10.0 ** (1 + (i % 4))
        seasonal = np.sin(2 * np.pi * t / 24 + i)[:, None]
        tenants[f"tenant-{i}"] = (
            level * (1 + 0.1 * seasonal + 0.02 * rng.normal(size=(len(t), 1)))
        ).astype(np.float32)

    for name, values in tenants.items():
        cluster.ingest(name, values[:96])
    placement = {s: len(cluster.shard(s).store) for s in cluster.shard_ids()}
    print(f"2-shard cluster, tenant placement: {placement}")

    # ------------------------------------------------------------------ #
    # 2. Live ticks through the cluster façade.
    # ------------------------------------------------------------------ #
    for step in range(96, 110):
        handles = cluster.ingest_and_forecast(
            {name: values[step] for name, values in tenants.items()}
        )
        for handle in handles.values():
            handle.result()
    stats = cluster.service_stats()
    print(f"cluster-wide: {stats.requests} requests in {stats.forward_passes} "
          f"passes (mean batch {stats.mean_batch_size:.1f} across "
          f"{len(cluster)} shards)")

    # ------------------------------------------------------------------ #
    # 3. Scale out live: one new shard, minimal migration.
    # ------------------------------------------------------------------ #
    moved = cluster.add_shard("shard-2")
    print(f"added shard-2: migrated {len(moved)}/{cluster.tenant_count()} tenants "
          f"({len(moved) / cluster.tenant_count():.0%}, consistent hashing "
          f"≈ 1/3 expected) — not a full reshuffle")

    before = {
        name: cluster.forecast(name).result() for name in list(tenants)[:5]
    }

    # ------------------------------------------------------------------ #
    # 4. Snapshot → restart → bit-identical forecasts.
    # ------------------------------------------------------------------ #
    path = os.path.join(tempfile.mkdtemp(prefix="repro-cluster-"), "cluster.npz")
    cluster.save(path)
    revived = ShardedForecaster.load(service_factory, path)
    after = {name: revived.forecast(name).result() for name in before}
    identical = all(np.array_equal(before[n], after[n]) for n in before)
    size_kb = os.path.getsize(path) / 1024
    print(f"snapshot {size_kb:,.0f} KiB → revived {len(revived)} shards, "
          f"{revived.tenant_count()} tenants; forecasts bit-identical: {identical}")
    assert identical

    # ------------------------------------------------------------------ #
    # 5. The parallel execution layer: pool fan-out, O(churn) checkpoints
    #    and replica failover.
    # ------------------------------------------------------------------ #
    from repro.runtime import PoolExecutor

    revived.executor = PoolExecutor(len(revived))   # S shards on S cores
    for handle in revived.forecast_all().values():
        handle.result()

    # A handful of tenants tick; the delta checkpoint captures only them.
    for name in list(tenants)[:4]:
        revived.ingest(name, tenants[name][-1][None, :])
    delta_path = path.replace("cluster.npz", "delta.npz")
    revived.save(path)                   # full base (starts the chain)
    for name in list(tenants)[:4]:
        revived.ingest(name, tenants[name][-1][None, :])
    revived.save_incremental(delta_path)
    full_kb = os.path.getsize(path) / 1024
    delta_kb = os.path.getsize(delta_path) / 1024
    print(f"incremental checkpoint: {delta_kb:,.1f} KiB vs {full_kb:,.0f} KiB "
          f"full ({delta_kb / full_kb:.0%}) for 4/{revived.tenant_count()} "
          "churned tenants")

    # A replica dies.  Its ring arc falls to the survivors and its tenants
    # restore from the checkpoint chain — the report is honest about any
    # arrivals the chain had not yet captured.
    victim = revived.shard_ids()[0]
    report = revived.failover(victim)
    print(f"failover of {victim}: {len(report.restored)} tenants re-homed, "
          f"{len(report.lost)} lost, {len(report.stale)} stale — "
          f"cluster now {len(revived)} shards, still serving "
          f"{revived.tenant_count()} tenants")
    assert report.complete
    for handle in revived.forecast_all().values():
        handle.result()


if __name__ == "__main__":
    main()
