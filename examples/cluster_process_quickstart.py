"""Process-cluster quickstart: escape the GIL, survive ``kill -9``.

Run with::

    python examples/cluster_process_quickstart.py

Where ``cluster_quickstart.py`` shards tenants across thread-backed
replicas inside ONE interpreter, this script runs each shard's full
streaming stack in its own OS process:

1. stand up a :class:`ProcessCoordinator` from a :class:`ServiceSpec` —
   the spec (config + geometry, never code) crosses the process boundary
   over the pickle-free ``repro.wire`` protocol, and every worker builds
   and warms its replica on spawn;
2. serve routed traffic exactly like the thread backend — same API, same
   bit-identical forecasts — but ``forecast_all`` now fans out to S
   workers computing concurrently under S separate GILs;
3. checkpoint the whole cluster, then ``kill -9`` a live worker and run
   the crash drill: ``detect_failures`` names the corpse, ``failover``
   restores its tenants onto the survivors from the checkpoint chain,
   and the :class:`FailoverReport` accounts for every lost/rolled-back
   row — computed without ever reading the dead worker's memory;
4. read cluster-wide stats and per-worker metrics, merged
   coordinator-side from each worker's last stats poll (a dead worker's
   served traffic stays counted).
"""

from __future__ import annotations

import os
import signal
import tempfile

import numpy as np

from repro import ModelConfig
from repro.cluster import ProcessCoordinator, ServiceSpec


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Spec, not factory: worker processes can't import a closure, so
    #    the process backend takes a declarative ServiceSpec.  (The same
    #    spec is callable, so it also works as a thread-backend factory —
    #    build_cluster(spec, backend=...) switches with one argument.)
    # ------------------------------------------------------------------ #
    config = ModelConfig(input_length=96, horizon=24, n_channels=1,
                         patch_length=24, hidden_dim=64, dropout=0.0)
    spec = ServiceSpec(config=config, max_batch_size=64)

    cluster = ProcessCoordinator(spec, n_shards=3, normalization="rolling")
    print("workers:", {s: cluster.worker_pid(s) for s in cluster.shard_ids()})

    # ------------------------------------------------------------------ #
    # 2. Routed traffic — identical surface to the thread backend.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(17)
    t = np.arange(140, dtype=np.float32)
    for i in range(24):
        level = 10.0 ** (1 + (i % 4))
        series = level * (1 + 0.2 * np.sin(2 * np.pi * t / 24) +
                          0.05 * rng.normal(size=t.shape))
        cluster.ingest(f"meter-{i:02d}", series.astype(np.float32).reshape(-1, 1))

    forecasts = {t: h.result() for t, h in cluster.forecast_all().items()}
    print(f"forecast_all: {len(forecasts)} tenants, "
          f"horizon {next(iter(forecasts.values())).shape[0]} steps, "
          f"fanned out across {len(cluster.shard_ids())} worker processes")

    with tempfile.TemporaryDirectory() as workdir:
        # -------------------------------------------------------------- #
        # 3. The crash drill.  Checkpoint first — failover restores from
        #    the chain; a shard that dies un-checkpointed is honest loss.
        # -------------------------------------------------------------- #
        cluster.save(os.path.join(workdir, "ckpt"))
        cluster.ingest("meter-00", np.full((3, 1), 42.0, dtype=np.float32))

        victim = cluster.shard_for("meter-00")
        print(f"\nkill -9 worker {cluster.worker_pid(victim)} ({victim})")
        os.kill(cluster.worker_pid(victim), signal.SIGKILL)

        dead = cluster.detect_failures(timeout=5.0)
        print("detected dead:", dead)

        report = cluster.failover(victim)
        print(f"failover: restored {len(report.restored)} tenants onto "
              f"{sorted(set(report.restored.values()))}, "
              f"lost {report.lost}, rolled back {report.stale}")

        # The fleet keeps serving — restored tenants forecast from their
        # checkpointed windows, bit-identical to a cluster that never died.
        survivors = {t: h.result() for t, h in cluster.forecast_all().items()}
        print(f"post-failover forecast_all: {len(survivors)} tenants")

    # ------------------------------------------------------------------ #
    # 4. Observability: stats merge coordinator-side; spans cross the
    #    process boundary (enable REPRO_OBS_TRACE=1 to see the tree).
    # ------------------------------------------------------------------ #
    stats = cluster.service_stats()
    print(f"\ncluster stats: {stats.requests} requests, "
          f"{stats.flushes} flushes, largest batch {stats.largest_batch} "
          f"(includes the dead worker's folded counters)")

    cluster.close()
    print("workers shut down cleanly")


if __name__ == "__main__":
    main()
