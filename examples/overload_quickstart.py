"""Overload quickstart: shed typed, keep deadlines, survive a slow worker.

Run with::

    python examples/overload_quickstart.py

The serving stack never queues without bound: when a burst exceeds
capacity it *decides* what to drop, and tells the caller with a typed
error.  This script drives a bursty 3-priority workload through a
2-shard process cluster and shows each layer of the overload story:

1. build a bounded deployment from declarative specs — a
   :class:`ServiceSpec` with admission knobs (per-replica queue limit,
   default deadline) and a :class:`ClusterSpec` with the operational
   shape (shards, timeouts, retry/backoff and circuit-breaker knobs),
   all validated before any worker spawns;
2. submit a burst three times the queue bound across the priority ladder
   ``interactive > batch > best_effort`` — admitted work resolves,
   over-capacity work fails :class:`Overloaded` (higher classes displace
   lower ones, never their own), and nothing is silently dropped;
3. inject a deterministic stall into one worker and fan out with a
   caller deadline: the healthy shard's forecasts land inside the
   budget while the stalled shard's fail :class:`DeadlineExceeded` —
   and after repeated stalls the shard's circuit breaker trips, turning
   timeout-priced failures into instant ones until a probe recovers;
4. read the degradation ledger from the cluster's own stats and breaker
   snapshots — shed counts, deadline misses, trips — the same numbers
   ``BENCH_serving.json``'s ``overload`` section tracks in CI.
"""

from __future__ import annotations

import time

import numpy as np

from repro import ModelConfig
from repro.cluster import ClusterSpec, ServiceSpec, build_cluster
from repro.errors import DeadlineExceeded, Overloaded

N_TENANTS = 6
INPUT_LENGTH = 48
HORIZON = 12


def outcome(handle) -> str:
    try:
        handle.result()
        return "ok"
    except (Overloaded, DeadlineExceeded) as error:
        return type(error).__name__


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A bounded deployment, declared up front.  The ServiceSpec's
    #    admission knobs travel to every worker replica; the ClusterSpec
    #    validates the operational shape (heartbeat < request timeout,
    #    positive retry/breaker knobs) before any process spawns.
    # ------------------------------------------------------------------ #
    config = ModelConfig(input_length=INPUT_LENGTH, horizon=HORIZON,
                         n_channels=1, patch_length=12, hidden_dim=32,
                         dropout=0.0)
    spec = ServiceSpec(config=config, max_batch_size=64,
                       queue_limit=4, default_timeout=30.0)
    deployment = ClusterSpec(
        n_shards=2, backend="process",
        request_timeout=30.0, heartbeat_timeout=2.0,
        retry_attempts=3, retry_base=0.02, retry_cap=0.2,
        breaker_threshold=2, breaker_reset=0.5,
    )
    cluster = build_cluster(spec, cluster=deployment)
    print(f"built {len(cluster.shard_ids())}-shard process cluster "
          f"(queue_limit={spec.queue_limit}/replica, "
          f"breaker trips after {deployment.breaker_threshold} failures)")

    rng = np.random.default_rng(7)
    tenants = [f"tenant-{i}" for i in range(N_TENANTS)]
    for tenant in tenants:
        cluster.ingest(tenant, rng.normal(size=(INPUT_LENGTH, 1)))

    # ------------------------------------------------------------------ #
    # 2. Burst past capacity: 12 submissions against a queue of 4 on one
    #    tenant's shard.  Interactive arrivals displace queued
    #    best-effort work; everything refused or evicted fails typed.
    # ------------------------------------------------------------------ #
    print("\n--- burst: 12 submissions, queue of 4, three priorities ---")
    ladder = ("best_effort", "batch", "interactive")
    handles, refused = [], 0
    for i in range(12):
        priority = ladder[i % 3]
        try:
            handles.append((priority, cluster.forecast("tenant-0",
                                                       priority=priority)))
        except Overloaded:
            refused += 1
    cluster.flush()
    served = sum(1 for _, h in handles if outcome(h) == "ok")
    evicted = sum(1 for _, h in handles if outcome(h) == "Overloaded")
    print(f"served {served}, refused at admission {refused}, "
          f"evicted by higher priority {evicted}")
    interactive_ok = all(outcome(h) == "ok"
                         for p, h in handles if p == "interactive")
    print(f"every interactive submission survived: {interactive_ok}")

    # ------------------------------------------------------------------ #
    # 3. A slow worker under a caller deadline.  inject_stall arms a
    #    deterministic wedge inside one worker process; the fan-out's
    #    deadline bounds how long anyone waits for it.
    # ------------------------------------------------------------------ #
    victim = cluster.shard_for("tenant-0")
    healthy = [t for t in tenants if cluster.shard_for(t) != victim]
    print(f"\n--- stall drill: wedging {victim} for 2s, "
          f"fan-out deadline 0.5s ---")
    cluster.inject_stall(victim, seconds=2.0, count=4)
    started = time.perf_counter()
    results = cluster.forecast_all(tenants, timeout=0.5)
    elapsed = time.perf_counter() - started
    tally: dict = {}
    for tenant, handle in results.items():
        tally.setdefault(outcome(handle), []).append(tenant)
    print(f"fan-out returned in {elapsed:.2f}s "
          f"(stall is 2s — nobody waited it out)")
    for kind, members in sorted(tally.items()):
        print(f"  {kind}: {len(members)} tenants")
    assert all(outcome(results[t]) == "ok" for t in healthy)

    # A second bounded fan-out while still wedged trips the breaker:
    # from here the sick shard fails *instantly*, no timeout paid.
    cluster.forecast_all(tenants, timeout=0.3)
    state = cluster.breaker_states()[victim]
    print(f"breaker on {victim}: {state['state']} "
          f"(trips={state['trips']})")

    # ------------------------------------------------------------------ #
    # 4. Recovery and the ledger.  Once the stall drains and the reset
    #    window passes, the half-open probe closes the breaker and the
    #    shard serves again — no restart, no failover.
    # ------------------------------------------------------------------ #
    time.sleep(2.2 + deployment.breaker_reset)
    results = cluster.forecast_all(tenants, timeout=10.0)
    recovered = sum(1 for h in results.values() if outcome(h) == "ok")
    state = cluster.breaker_states()[victim]
    print(f"\nafter recovery: {recovered}/{N_TENANTS} tenants served, "
          f"breaker {state['state']} (lifetime trips={state['trips']})")

    stats = cluster.service_stats()
    print(f"cluster ledger: requests={stats.requests} "
          f"shed_overloaded={stats.shed_overloaded} "
          f"shed_expired={stats.shed_expired} "
          f"deadline_misses={stats.deadline_misses}")
    cluster.close()


if __name__ == "__main__":
    main()
