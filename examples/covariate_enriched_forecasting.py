"""Weak data enriching on the Electricity-Price scenario (paper Section IV-C).

The Electricity-Price dataset ships *explicit* future covariates — grid load
forecasts, wind/solar projections, per-location weather and a holiday flag
(61 fields, paper Table IV).  This example shows the paper's two-stage
procedure:

1. pre-train the Covariate Encoder / Target Encoder pair with the CLIP-style
   contrastive objective;
2. freeze the Covariate Encoder and train the Base Predictor with the
   Vector-Mapping guidance.

It then compares against LiPFormer without the Covariate Encoder
(reproducing the shape of paper Figure 6) and prints the contrastive logits
diagnostics behind Figure 7.

Run with::

    python examples/covariate_enriched_forecasting.py
"""

from __future__ import annotations

import numpy as np

from repro import ModelConfig, TrainingConfig, prepare_forecasting_data
from repro.core import LiPFormer
from repro.training import ContrastivePretrainer, Trainer, run_experiment


def main() -> None:
    data = prepare_forecasting_data(
        "ElectricityPrice",
        input_length=96,
        horizon=24,
        n_timestamps=3000,
        n_channels=6,
        stride=2,
        seed=2021,
    )
    print(
        f"dataset={data.name}: {data.covariate_numerical_dim} numerical + "
        f"{len(data.covariate_categorical_cardinalities)} categorical future covariates"
    )

    config = ModelConfig(
        input_length=96,
        horizon=24,
        n_channels=data.n_channels,
        patch_length=24,
        hidden_dim=64,
        dropout=0.1,
        covariate_numerical_dim=data.covariate_numerical_dim,
        covariate_categorical_cardinalities=data.covariate_categorical_cardinalities,
        covariate_embed_dim=4,
        covariate_hidden_dim=32,
    )
    training = TrainingConfig(epochs=5, batch_size=64, learning_rate=1e-3, patience=3, pretrain_epochs=2)

    # --- Stage 1 + 2, handled by run_experiment(pretrain=True) ------------- #
    with_encoder = run_experiment(
        LiPFormer(config), data, training, model_name="LiPFormer (future enc)", pretrain=True
    )
    without_encoder = run_experiment(
        LiPFormer(config, use_covariate_guidance=False),
        data,
        training,
        model_name="LiPFormer (without enc)",
        pretrain=False,
    )
    print("\nFigure 6 shape — effect of the future Covariate Encoder:")
    print(f"  with encoder:    mse={with_encoder.mse:.4f}  mae={with_encoder.mae:.4f}")
    print(f"  without encoder: mse={without_encoder.mse:.4f}  mae={without_encoder.mae:.4f}")
    improvement = 100.0 * (without_encoder.mse - with_encoder.mse) / without_encoder.mse
    print(f"  MSE reduction from weak data enriching: {improvement:.1f}%")

    # --- Figure 7 diagnostics: the contrastive logits matrix --------------- #
    model = LiPFormer(config)
    dual_encoder = model.build_dual_encoder()
    ContrastivePretrainer(dual_encoder, training).fit(data)
    batch = data.validation.as_arrays(np.arange(min(64, len(data.validation))))
    logits = dual_encoder.logits_matrix(
        batch["y"], batch["future_numerical"], batch["future_categorical"]
    )
    diagonal = float(np.diag(logits).mean())
    off_diagonal = float(logits[~np.eye(len(logits), dtype=bool)].mean())
    print("\nFigure 7 shape — contrastive logits on an unshuffled validation batch:")
    print(f"  diagonal mean = {diagonal:.3f}, off-diagonal mean = {off_diagonal:.3f} "
          f"(margin {diagonal - off_diagonal:.3f})")

    # --- Inference with explicit covariates -------------------------------- #
    trainer = Trainer(model, training)
    model.freeze_covariate_encoder()
    trainer.fit(data)
    sample = data.test.as_arrays(np.array([0]))
    forecast = model.predict(sample["x"], sample["future_numerical"], sample["future_categorical"])
    print("\nsample electricity-price forecast (channel 0, first 8 steps):")
    print("  predicted:", np.round(forecast[0, :8, 0], 3))
    print("  actual:   ", np.round(sample["y"][0, :8, 0], 3))


if __name__ == "__main__":
    main()
