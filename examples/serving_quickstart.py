"""Serving quickstart: train once, then serve forecasts behind a request API.

Run with::

    python examples/serving_quickstart.py

The script walks the full serving story introduced by ``repro.serving``:

1. train a small LiPFormer on a synthetic ETTh1 replica (two-stage:
   contrastive pre-training of the Covariate Encoder, freeze, then fit);
2. put the trained model in a :class:`ModelRegistry` and stand up a
   :class:`ForecastService` in front of it;
3. submit single requests — including a short "cold start" history that the
   service left-pads — and show how the micro-batching queue coalesces them
   into one padded forward pass;
4. backfill forecasts over every test window through the vectorised window
   fast path, and score them;
5. serve a second scenario (another horizon) from the same process and show
   the registry's LRU accounting.

For the *online* continuation of this story — observations streaming in
per tenant instead of pre-materialised arrays — see
``examples/streaming_quickstart.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro import ModelConfig, TrainingConfig, create_model, prepare_forecasting_data
from repro.serving import ForecastService, ModelRegistry
from repro.training import Trainer, pretrain_covariate_encoder


def make_config(data, horizon: int) -> ModelConfig:
    return ModelConfig(
        input_length=96,
        horizon=horizon,
        n_channels=data.n_channels,
        patch_length=24,
        hidden_dim=64,
        dropout=0.1,
        covariate_numerical_dim=data.covariate_numerical_dim,
        covariate_categorical_cardinalities=data.covariate_categorical_cardinalities,
        covariate_hidden_dim=16,
    )


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Train a model for the primary scenario (ETTh1, horizon 24).
    # ------------------------------------------------------------------ #
    data = prepare_forecasting_data("ETTh1", input_length=96, horizon=24,
                                    n_timestamps=3000, stride=2, seed=2021)
    config = make_config(data, horizon=24)
    training = TrainingConfig(epochs=2, batch_size=64, learning_rate=1e-3, patience=2)

    model = create_model("LiPFormer", config)
    trainer = Trainer(model, training)
    # Two-stage freeze ordering: the trainer above already captured its
    # parameter list, but Trainer.fit re-resolves it, so freezing via
    # pre-training *after* trainer construction is safe.
    pretrain_covariate_encoder(model, data, training)
    trainer.fit(data)
    print(f"trained LiPFormer: test mse={trainer.test(data)['mse']:.4f}")

    # ------------------------------------------------------------------ #
    # 2. Register the trained model and stand up the service.
    # ------------------------------------------------------------------ #
    registry = ModelRegistry(capacity=2)
    registry.register("LiPFormer", config, model=model)
    service = ForecastService.from_registry(registry, "LiPFormer", config,
                                            max_batch_size=32)

    # ------------------------------------------------------------------ #
    # 3. Request-level inference: submit returns a Forecast handle; the
    #    queue coalesces pending requests into one padded forward pass.
    # ------------------------------------------------------------------ #
    test_batch = data.test.as_arrays(np.arange(8))
    handles = [
        service.submit(
            history,
            future_numerical=test_batch["future_numerical"][i],
            future_categorical=test_batch["future_categorical"][i],
        )
        for i, history in enumerate(test_batch["x"])
    ]
    cold_start = service.submit(test_batch["x"][0][-24:])  # 24 of 96 steps: padded
    print(f"queued requests: {service.pending} (none resolved yet: "
          f"{not any(h.done() for h in handles)})")
    first = handles[0].result()            # triggers one flush for the whole queue
    print(f"first forecast shape={first.shape}; "
          f"cold-start forecast shape={cold_start.result().shape}")
    print(f"service stats after flush: {service.stats}")

    # ------------------------------------------------------------------ #
    # 4. Backfill mode: batched inference over every test window, using the
    #    vectorised sliding-window materialisation.
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    predictions = service.backfill(data.test)
    elapsed = time.perf_counter() - start
    targets = data.test.as_arrays()["y"]
    mse = float(np.mean((predictions - targets) ** 2))
    print(f"backfilled {len(predictions)} windows in {elapsed * 1000:.1f}ms "
          f"({len(predictions) / elapsed:,.0f} windows/s), mse={mse:.4f}")

    # ------------------------------------------------------------------ #
    # 5. A second scenario in the same process: the registry builds and
    #    caches a model per (model_name, config_hash) key.
    # ------------------------------------------------------------------ #
    data48 = prepare_forecasting_data("ETTh1", input_length=96, horizon=48,
                                      n_timestamps=3000, stride=2, seed=2021)
    config48 = make_config(data48, horizon=48)
    service48 = ForecastService.from_registry(registry, "DLinear", config48)
    forecast48 = service48.submit(data48.test[0].x).result()
    print(f"second scenario (DLinear, horizon 48): forecast shape={forecast48.shape}")
    print(f"registry keys={registry.keys()}")
    print(f"registry stats: {registry.stats}")


if __name__ == "__main__":
    main()
