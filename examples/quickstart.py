"""Quickstart: train LiPFormer on a synthetic ETTh1 replica and forecast.

Run with::

    python examples/quickstart.py

The script prepares a small ETTh1-like dataset, trains LiPFormer for a few
epochs on the CPU, reports test MSE/MAE against a DLinear baseline and the
naive last-value forecast, and prints a sample forecast.

Serving
-------
Training produces a model; serving it is a separate concern handled by
``repro.serving``.  Wrap any trained :class:`~repro.core.base.ForecastModel`
in a :class:`~repro.serving.ForecastService` to get a request-level API —
``service.submit(history, covariates)`` returns a ``Forecast`` handle, and
pending requests are coalesced into a single padded batched forward pass
under ``no_grad``.  A :class:`~repro.serving.ModelRegistry` LRU-caches the
models for several scenarios (datasets / horizons) in one process.  See
``examples/serving_quickstart.py`` for the end-to-end serving tour.
"""

from __future__ import annotations

import numpy as np

from repro import ModelConfig, TrainingConfig, create_model, prepare_forecasting_data
from repro.training import Trainer, run_experiment


def main() -> None:
    # 1. Data: a synthetic replica of ETTh1 (hourly, 7 channels), windowed
    #    into (96-step history -> 24-step forecast) samples.
    data = prepare_forecasting_data(
        "ETTh1",
        input_length=96,
        horizon=24,
        n_timestamps=3000,   # quick profile; drop the argument for the full-size replica
        stride=2,
        seed=2021,
    )
    print(f"dataset={data.name}  channels={data.n_channels}  "
          f"train/val/test windows = {len(data.train)}/{len(data.validation)}/{len(data.test)}")

    # 2. Model configuration shared by LiPFormer and the baseline.
    config = ModelConfig(
        input_length=96,
        horizon=24,
        n_channels=data.n_channels,
        patch_length=24,
        hidden_dim=64,
        dropout=0.1,
        covariate_numerical_dim=data.covariate_numerical_dim,
        covariate_categorical_cardinalities=data.covariate_categorical_cardinalities,
        covariate_hidden_dim=16,
    )
    training = TrainingConfig(epochs=5, batch_size=64, learning_rate=1e-3, patience=3)

    # 3. Train LiPFormer (with contrastive pre-training of the implicit
    #    calendar covariates) and DLinear for comparison.
    results = {}
    for name in ("LiPFormer", "DLinear"):
        model = create_model(name, config)
        result = run_experiment(
            model, data, training, model_name=name, pretrain=(name == "LiPFormer")
        )
        results[name] = result
        print(
            f"{name:10s}  mse={result.mse:.4f}  mae={result.mae:.4f}  "
            f"params={result.parameters:,}  s/epoch={result.train_seconds_per_epoch:.2f}"
        )

    # 4. Naive last-value baseline for context.
    test_batch = data.test.as_arrays(np.arange(len(data.test)))
    naive = np.repeat(test_batch["x"][:, -1:, :], data.horizon, axis=1)
    naive_mse = float(np.mean((naive - test_batch["y"]) ** 2))
    print(f"{'naive':10s}  mse={naive_mse:.4f}  (repeat the last observed value)")

    # 5. Produce one forecast with the trained LiPFormer.
    model = create_model("LiPFormer", config)
    trainer = Trainer(model, training)
    trainer.fit(data)
    sample = data.test.as_arrays(np.array([0]))
    forecast = model.predict(sample["x"], sample["future_numerical"], sample["future_categorical"])
    print("\nforecast for the first test window (channel 0):")
    print("  predicted:", np.round(forecast[0, :8, 0], 3), "...")
    print("  actual:   ", np.round(sample["y"][0, :8, 0], 3), "...")


if __name__ == "__main__":
    main()
