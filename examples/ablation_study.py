"""Reproduce the architecture ablations of paper Tables X and XI.

Trains the named LiPFormer variants on a small ETTh1 replica:

* adding back the Transformer's FFN and LayerNorm (Table X) — expected to
  add parameters without improving accuracy;
* replacing Cross-Patch / Inter-Patch attention with linear layers
  (Table XI) — expected to lose accuracy relative to the full model.

Run with::

    python examples/ablation_study.py
"""

from __future__ import annotations

from repro import ModelConfig, TrainingConfig, prepare_forecasting_data
from repro.core.variants import ABLATION_VARIANTS
from repro.training import run_experiment


def main() -> None:
    data = prepare_forecasting_data(
        "ETTh1", input_length=96, horizon=24, n_timestamps=3000, stride=2, seed=2021
    )
    config = ModelConfig(
        input_length=96,
        horizon=24,
        n_channels=data.n_channels,
        patch_length=24,
        hidden_dim=64,
        dropout=0.1,
        covariate_numerical_dim=data.covariate_numerical_dim,
        covariate_categorical_cardinalities=data.covariate_categorical_cardinalities,
        covariate_hidden_dim=16,
    )
    training = TrainingConfig(epochs=5, batch_size=64, learning_rate=1e-3, patience=3)

    print(f"{'variant':>24s} | {'mse':>8s} | {'mae':>8s} | {'params':>8s}")
    baseline_mse = None
    for name, factory in ABLATION_VARIANTS.items():
        model = factory(config)
        pretrain = name == "LiPFormer"
        result = run_experiment(model, data, training, model_name=name, pretrain=pretrain)
        if name == "LiPFormer":
            baseline_mse = result.mse
        print(f"{name:>24s} | {result.mse:>8.4f} | {result.mae:>8.4f} | {result.parameters:>8,d}")
    print(f"\nfull LiPFormer reference MSE: {baseline_mse:.4f}")
    print("Variants with higher MSE confirm the corresponding design choice.")


if __name__ == "__main__":
    main()
