"""Transplanting the Covariate Encoder onto other forecasters (paper Table XII).

The weak-data-enriching module is designed to be plug-and-play: any
forecaster can be wrapped with :class:`repro.core.transplant.CovariateEnrichedModel`
to receive the pre-trained covariate guidance.  This example wraps Informer
and the vanilla Transformer, trains each with and without the encoder on the
Electricity-Price scenario and reports the accuracy change.

Run with::

    python examples/transplant_covariate_encoder.py
"""

from __future__ import annotations

from repro import ModelConfig, TrainingConfig, create_model, prepare_forecasting_data
from repro.core.transplant import CovariateEnrichedModel
from repro.training import run_experiment


def main() -> None:
    data = prepare_forecasting_data(
        "ElectricityPrice",
        input_length=96,
        horizon=24,
        n_timestamps=3000,
        n_channels=6,
        stride=4,
        seed=2021,
    )
    config = ModelConfig(
        input_length=96,
        horizon=24,
        n_channels=data.n_channels,
        patch_length=24,
        hidden_dim=48,
        dropout=0.1,
        n_heads=4,
        n_layers=2,
        covariate_numerical_dim=data.covariate_numerical_dim,
        covariate_categorical_cardinalities=data.covariate_categorical_cardinalities,
        covariate_embed_dim=4,
        covariate_hidden_dim=24,
    )
    training = TrainingConfig(epochs=3, batch_size=64, learning_rate=1e-3, pretrain_epochs=2)

    print("Table XII shape — Covariate Encoder transplanted onto other models")
    print(f"{'model':>12s} | {'mse (plain)':>12s} | {'mse (+encoder)':>14s} | {'change':>8s}")
    for model_name in ("Informer", "Transformer"):
        plain = run_experiment(
            create_model(model_name, config), data, training, model_name=model_name, pretrain=False
        )
        enriched_model = CovariateEnrichedModel(create_model(model_name, config), config)
        enriched = run_experiment(
            enriched_model, data, training, model_name=f"{model_name}+enc", pretrain=True
        )
        change = 100.0 * (enriched.mse - plain.mse) / plain.mse
        print(
            f"{model_name:>12s} | {plain.mse:>12.4f} | {enriched.mse:>14.4f} | {change:>7.1f}%"
        )
    print("\nNegative change = the transplanted Covariate Encoder reduced the error.")


if __name__ == "__main__":
    main()
