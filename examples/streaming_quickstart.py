"""Streaming quickstart: multi-tenant online forecasting on live arrivals.

Run with::

    python examples/streaming_quickstart.py

Where ``serving_quickstart.py`` forecasts from pre-materialised arrays,
this script serves the workload the roadmap actually describes —
observations arriving continuously for many tenants, each wanting fresh
forecasts in its own units:

1. train a small LiPFormer once, offline, on standardised data;
2. stand up a :class:`StreamingForecaster` in ``"rolling"`` mode: every
   tenant gets a bounded ring buffer (no reallocation, no unbounded
   history) and an incremental Welford scaler (no offline fit needed);
3. simulate live traffic for tenants at wildly different operating levels
   — each tick ingests one observation per tenant and serves all tenants
   through ONE coalesced forward pass;
4. prove correctness with the replay harness: streaming forecasts over an
   offline-scaled series are bit-identical to ``ForecastService.backfill``.
"""

from __future__ import annotations

import numpy as np

from repro import ModelConfig, TrainingConfig, prepare_forecasting_data
from repro.core import LiPFormer
from repro.serving import ForecastService
from repro.streaming import StreamingForecaster, compare_to_backfill, replay
from repro.training import Trainer


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Offline: train one small model on standardised ETTh1 windows.
    # ------------------------------------------------------------------ #
    data = prepare_forecasting_data("ETTh1", input_length=96, horizon=24,
                                    n_timestamps=2000, n_channels=1, stride=2,
                                    include_covariates=False, seed=2021)
    config = ModelConfig(input_length=96, horizon=24, n_channels=1,
                         patch_length=24, hidden_dim=64, dropout=0.1)
    model = LiPFormer(config)
    trainer = Trainer(model, TrainingConfig(epochs=2, batch_size=64,
                                            learning_rate=1e-3, patience=2))
    trainer.fit(data)
    print(f"trained LiPFormer: test mse={trainer.test(data)['mse']:.4f}")

    # ------------------------------------------------------------------ #
    # 2. Online: one service, one streaming forecaster, rolling per-tenant
    #    normalisation — tenants never need an offline fit.
    # ------------------------------------------------------------------ #
    service = ForecastService(model, max_batch_size=32)
    forecaster = StreamingForecaster(service, normalization="rolling")

    # Five tenants sharing one trained model but living at different
    # operating levels (e.g. small vs. large deployments of one product).
    rng = np.random.default_rng(7)
    t = np.arange(400, dtype=np.float32)
    tenants = {}
    for i in range(5):
        level, spread = 10.0 ** (i / 2 + 1), 0.1 * 10.0 ** (i / 2 + 1)
        seasonal = np.sin(2 * np.pi * t / 24 + i)[:, None]
        tenants[f"tenant-{i}"] = (level + spread * (seasonal + 0.3 * rng.normal(
            size=(len(t), 1)))).astype(np.float32)

    # Warm ingest: each tenant's history streams in (chunked arrival).
    for name, values in tenants.items():
        forecaster.ingest(name, values[:96])

    # ------------------------------------------------------------------ #
    # 3. Live ticks: ingest one observation per tenant, forecast everyone
    #    through one coalesced micro-batch.
    # ------------------------------------------------------------------ #
    for step in range(96, 120):
        handles = forecaster.ingest_and_forecast(
            {name: values[step] for name, values in tenants.items()}
        )
        if step == 96 or step == 119:
            line = ", ".join(
                f"{name}={handle.result()[0, 0]:,.1f}"
                for name, handle in sorted(handles.items())
            )
            print(f"tick {step}: next-step forecasts in tenant units: {line}")
    print(f"service stats: {service.stats.as_dict()}")
    print(f"streaming stats: {forecaster.stats.forecasts} forecasts for "
          f"{forecaster.store.stats.tenants} tenants, "
          f"{forecaster.store.stats.evicted} rows aged out of ring buffers")

    # ------------------------------------------------------------------ #
    # 4. Correctness: replay an offline-scaled series through a fresh
    #    pass-through forecaster; bit-identical to backfill.
    # ------------------------------------------------------------------ #
    parity_forecaster = StreamingForecaster(service, normalization="none")
    streams = {
        f"shard-{i}": data.test.series.values[i * 150:(i + 1) * 150]
        for i in range(2)
    }
    result = replay(parity_forecaster, streams)
    report = compare_to_backfill(parity_forecaster, streams, result)
    print(f"replay parity over {report.windows_compared} windows: "
          f"bit_identical={report.bit_identical} "
          f"(mean batch size {result.mean_batch_size:.1f})")
    report.raise_on_mismatch()


if __name__ == "__main__":
    main()
