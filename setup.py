"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools predates PEP 660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LiPFormer reproduction: lightweight patch-wise Transformer "
        "forecasting with weak data enriching"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    extras_require={"dev": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"]},
)
