"""Benchmark S5 — compiled graph-free inference plans (``repro.nn.plan``).

Quantifies the two claims of the compiled fast path:

* **speedup**: replaying a traced plan beats eager ``no_grad`` inference on
  the LiPFormer serving path, because the replay runs pure NumPy kernels
  over a preallocated arena — no ``Tensor`` wrapping, no grad-mode checks,
  no per-op allocations.  The acceptance bar is >= 2x on the single-request
  univariate serving shape when BLAS is pinned single-threaded (the CI
  configuration, following ``test_parallel_scaling``'s host-adaptive
  pattern); hosts with a multithreaded BLAS only have to clear a relaxed
  bar, since eager forwards then parallelise their kernels too.
* **zero steady-state allocations**: once traced, ``plan.run`` writes every
  intermediate into the trace-time arena; a tracemalloc sweep over repeated
  runs must find no new large blocks, and the output buffer must be the
  same object on every call.

Outputs are also asserted bit-identical to eager along the way — the
speedup would be meaningless if the fast path drifted.
"""

import os
import time
import tracemalloc

import numpy as np

from repro.config import ModelConfig
from repro.core import LiPFormer

INPUT_LENGTH = 96
HORIZON = 24
N_RUNS = 200

# One serving geometry per batching regime: a single request (the flush
# shape of request-at-a-time traffic) and a full micro-batch.
SINGLE_BATCH = 1
FULL_BATCH = 32


def _model(n_channels=1, hidden=64):
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=n_channels,
        patch_length=24, hidden_dim=hidden, dropout=0.0,
    )
    return LiPFormer(config)


def _best_of(fn, repeats: int = 5, inner: int = N_RUNS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _single_threaded_blas() -> bool:
    return "1" in (
        os.environ.get("OMP_NUM_THREADS"),
        os.environ.get("OPENBLAS_NUM_THREADS"),
    )


def _measure(model, batch):
    rng = np.random.default_rng(17)
    x = rng.normal(size=(batch, INPUT_LENGTH, model.config.n_channels)).astype(np.float32)
    eager = model.predict(x)
    compiled = model.predict(x, compiled=True)           # traces
    assert np.array_equal(eager, compiled), "compiled trace diverged from eager"
    assert np.array_equal(model.predict(x, compiled=True), eager), (
        "compiled replay diverged from eager"
    )
    t_eager = _best_of(lambda: model.predict(x))
    t_compiled = _best_of(lambda: model.predict(x, compiled=True))
    return t_eager, t_compiled


def test_compiled_plan_speedup_over_eager():
    """Plan replay vs eager no-grad predict on the serving shapes."""
    model = _model()
    results = {}
    for batch in (SINGLE_BATCH, FULL_BATCH):
        t_eager, t_compiled = _measure(model, batch)
        results[batch] = (t_eager, t_compiled)
        print(
            f"\ncompiled plan (batch {batch}): eager {t_eager * 1e6:,.0f}us/call, "
            f"compiled {t_compiled * 1e6:,.0f}us/call, "
            f"speedup {t_eager / t_compiled:.2f}x"
        )

    # The bar the host can clear deterministically: with BLAS pinned to one
    # thread (CI) the eager/compiled gap is pure Python overhead and the
    # single-request serving shape must be >= 2x; with a multithreaded BLAS
    # the eager baseline borrows cores and only a relaxed bar is demanded.
    required_single = 2.0 if _single_threaded_blas() else 1.4
    speedup_single = results[SINGLE_BATCH][0] / results[SINGLE_BATCH][1]
    assert speedup_single >= required_single, (
        f"compiled plan gave {speedup_single:.2f}x over eager at batch "
        f"{SINGLE_BATCH}; expected at least {required_single:.2f}x"
    )
    # Larger batches are BLAS-bound; the plan must still never lose.
    speedup_full = results[FULL_BATCH][0] / results[FULL_BATCH][1]
    assert speedup_full >= 1.1, (
        f"compiled plan gave {speedup_full:.2f}x at batch {FULL_BATCH}; "
        "the fast path must not regress batched serving"
    )


def test_steady_state_replay_allocates_nothing_large():
    """After warmup, ``plan.run`` must reuse its arena: no new large blocks,
    same output buffer object, stable arena footprint."""
    model = _model(n_channels=8)
    rng = np.random.default_rng(3)
    x = rng.normal(size=(FULL_BATCH, INPUT_LENGTH, 8)).astype(np.float32)
    model.predict(x, compiled=True)
    plan = model.compiled_predictor().plan_for(x)
    assert plan is not None

    fresh = rng.normal(size=x.shape).astype(np.float32)
    out_first = plan.run(fresh, copy=False)
    arena_before = plan.arena_nbytes

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for _ in range(50):
        out = plan.run(fresh, copy=False)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()

    assert out is out_first, "output buffer was reallocated between runs"
    assert plan.arena_nbytes == arena_before, "arena grew during steady state"

    threshold = 64 * 1024
    large = [
        diff
        for diff in after.compare_to(before, "traceback")
        if diff.size_diff >= threshold
    ]
    for diff in large:  # pragma: no cover - diagnostic output on failure
        print(f"\nlarge allocation: {diff.size_diff:,} B at")
        for line in diff.traceback.format():
            print("   ", line)
    assert not large, (
        f"steady-state plan replay leaked {len(large)} block(s) >= {threshold} B"
    )
    print(
        f"\nsteady-state replay over {FULL_BATCH}x{INPUT_LENGTH}x8: "
        f"{plan.n_steps} steps, arena {plan.arena_nbytes / 1024:,.0f} KiB, "
        "no large allocations in 50 runs"
    )
