"""Benchmark S5 — compiled graph-free inference plans (``repro.nn.plan``).

Quantifies the three claims of the polymorphic compiled fast path:

* **speedup**: replaying a traced plan beats eager ``no_grad`` inference on
  the LiPFormer serving path, because the replay runs pure NumPy kernels
  over a preallocated arena — no ``Tensor`` wrapping, no grad-mode checks,
  no per-op allocations.  The gates are measured at **non-traced** batch
  sizes: the plan is traced once at ``max_batch`` and every smaller batch
  replays on leading-dim slices, so the speedup must survive the slicing
  path, not just the exact traced shape.  The acceptance bar is >= 2x on
  the single-request univariate serving shape when BLAS is pinned
  single-threaded (the CI configuration, following
  ``test_parallel_scaling``'s host-adaptive pattern); hosts with a
  multithreaded BLAS only have to clear a relaxed bar, since eager
  forwards then parallelise their kernels too.
* **bounded plan count**: a workload cycling batch sizes 1..max_batch must
  trace at most ``ceil(log2(max_batch)) + 1`` plans (the power-of-two
  bucket ladder) — and, because LiPFormer's trace is sliceable, settle on
  a single steady-state plan.
* **liveness compression**: the arena allocator (first/last-use liveness +
  offline greedy-by-size placement) must pack trace-time intermediates at
  least 3x tighter than keeping every recorded buffer alive.

Outputs are also asserted bit-identical to eager along the way — the
numbers would be meaningless if the fast path drifted.  Every test appends
its measurements to ``BENCH_inference.json`` so re-anchors can see the
perf trajectory.
"""

import math
import os
import time
import tracemalloc

import numpy as np

from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.nn.plan import InferencePlan

INPUT_LENGTH = 96
HORIZON = 24
N_RUNS = 200

# One serving geometry per batching regime: a single request (the flush
# shape of request-at-a-time traffic), an odd mid-bucket batch, and the
# full micro-batch the plan was traced at.
SINGLE_BATCH = 1
ODD_BATCH = 17
MAX_BATCH = 32


def _model(n_channels=1, hidden=64):
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=n_channels,
        patch_length=24, hidden_dim=hidden, dropout=0.0,
    )
    return LiPFormer(config)


def _best_of(fn, repeats: int = 5, inner: int = N_RUNS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def _single_threaded_blas() -> bool:
    return "1" in (
        os.environ.get("OMP_NUM_THREADS"),
        os.environ.get("OPENBLAS_NUM_THREADS"),
    )


def _measure(model, batch):
    rng = np.random.default_rng(17)
    x = rng.normal(size=(batch, INPUT_LENGTH, model.config.n_channels)).astype(np.float32)
    eager = model.predict(x)
    compiled = model.predict(x, compiled=True)
    assert np.array_equal(eager, compiled), "compiled replay diverged from eager"
    t_eager = _best_of(lambda: model.predict(x))
    t_compiled = _best_of(lambda: model.predict(x, compiled=True))
    return t_eager, t_compiled


def test_compiled_plan_speedup_over_eager(bench_record):
    """Plan replay vs eager no-grad predict on the serving shapes.

    The plan is traced once at ``MAX_BATCH``; every other measured batch
    replays a leading-dim slice of that one plan, so the speedup gates
    hold at non-traced batch sizes — the polymorphic steady state, not the
    trace-shape best case.
    """
    model = _model()
    predictor = model.compiled_predictor(max_batch=MAX_BATCH)
    warm = np.zeros((MAX_BATCH, INPUT_LENGTH, 1), dtype=np.float32)
    model.predict(warm, compiled=True)                   # the only trace
    assert predictor.traces == 1

    results = {}
    for batch in (SINGLE_BATCH, ODD_BATCH, MAX_BATCH):
        t_eager, t_compiled = _measure(model, batch)
        results[batch] = (t_eager, t_compiled)
        print(
            f"\ncompiled plan (batch {batch}): eager {t_eager * 1e6:,.0f}us/call, "
            f"compiled {t_compiled * 1e6:,.0f}us/call, "
            f"speedup {t_eager / t_compiled:.2f}x"
        )
    assert predictor.traces == 1, "measurement loop traced new plans"

    # The bar the host can clear deterministically: with BLAS pinned to one
    # thread (CI) the eager/compiled gap is pure Python overhead and the
    # single-request serving shape must be >= 2x; with a multithreaded BLAS
    # the eager baseline borrows cores and only a relaxed bar is demanded.
    required_single = 2.0 if _single_threaded_blas() else 1.4
    speedup_single = results[SINGLE_BATCH][0] / results[SINGLE_BATCH][1]
    assert speedup_single >= required_single, (
        f"compiled plan gave {speedup_single:.2f}x over eager at non-traced "
        f"batch {SINGLE_BATCH}; expected at least {required_single:.2f}x"
    )
    # Larger batches are BLAS-bound; the plan must still never lose.
    for batch in (ODD_BATCH, MAX_BATCH):
        speedup = results[batch][0] / results[batch][1]
        assert speedup >= 1.1, (
            f"compiled plan gave {speedup:.2f}x at batch {batch}; "
            "the fast path must not regress batched serving"
        )

    bench_record("compiled_plan_speedup", {
        "traced_at_batch": MAX_BATCH,
        "plans_traced": predictor.traces,
        "single_threaded_blas": _single_threaded_blas(),
        "per_batch": {
            str(batch): {
                "eager_us": round(t_eager * 1e6, 1),
                "compiled_us": round(t_compiled * 1e6, 1),
                "speedup": round(t_eager / t_compiled, 2),
                "traced": batch == MAX_BATCH,
            }
            for batch, (t_eager, t_compiled) in results.items()
        },
    })


def test_bucketed_workload_traces_logarithmic_plans(bench_record):
    """Cycling batch 1..max_batch must trace <= ceil(log2(max_batch)) + 1
    plans — the bucket ladder — and settle on one steady-state plan."""
    model = _model()
    predictor = model.compiled_predictor(max_batch=MAX_BATCH)
    rng = np.random.default_rng(5)
    x = rng.normal(size=(MAX_BATCH, INPUT_LENGTH, 1)).astype(np.float32)

    for batch in range(1, MAX_BATCH + 1):
        got = model.predict(x[:batch], compiled=True)
        assert np.array_equal(got, model.predict(x[:batch])), batch
    bound = math.ceil(math.log2(MAX_BATCH)) + 1
    assert predictor.traces <= bound, (
        f"cycling batches 1..{MAX_BATCH} traced {predictor.traces} plans; "
        f"the bucket ladder allows at most {bound}"
    )
    assert predictor.fallbacks == 0, "some batch fell back to eager"
    # A sliceable model collapses the ladder: the max_batch plan serves
    # every smaller bucket, so only one plan survives.
    assert len(predictor) == 1, f"steady state kept {len(predictor)} plans"

    traces_first_cycle = predictor.traces
    for batch in range(1, MAX_BATCH + 1):
        model.predict(x[:batch], compiled=True)
    assert predictor.traces == traces_first_cycle, "second cycle re-traced"

    print(
        f"\nworkload 2x(1..{MAX_BATCH}): {predictor.traces} plans traced "
        f"(bound {bound}), {len(predictor)} kept, {predictor.hits} replays"
    )
    bench_record("plans_per_workload", {
        "workload": f"two cycles of batch 1..{MAX_BATCH}",
        "max_batch": MAX_BATCH,
        "plans_traced": predictor.traces,
        "trace_bound": bound,
        "steady_state_plans": len(predictor),
        "replays": predictor.hits,
        "eager_fallbacks": predictor.fallbacks,
    })


def test_liveness_arena_reduces_plan_memory(bench_record):
    """The liveness pass must pack the arena >= 3x tighter than keeping
    every recorded intermediate alive (the pre-refactor allocator)."""
    model = _model().eval()
    rng = np.random.default_rng(11)
    x = rng.normal(size=(MAX_BATCH, INPUT_LENGTH, 1)).astype(np.float32)
    plan = InferencePlan.trace(model, x)
    assert plan.sliceable, f"LiPFormer trace demoted: {plan.demotions}"

    ratio = plan.naive_nbytes / plan.arena_nbytes
    print(
        f"\nliveness arena: naive {plan.naive_nbytes / 1024:,.0f} KiB -> "
        f"arena {plan.arena_nbytes / 1024:,.0f} KiB ({ratio:.2f}x) "
        f"over {plan.n_steps} steps"
    )
    assert ratio >= 3.0, (
        f"liveness allocation only packed the arena {ratio:.2f}x tighter "
        "than keeping every intermediate alive; expected >= 3x"
    )
    bench_record("plan_memory", {
        "model": "LiPFormer",
        "traced_at_batch": MAX_BATCH,
        "n_steps": plan.n_steps,
        "naive_bytes": plan.naive_nbytes,
        "arena_bytes": plan.arena_nbytes,
        "compression": round(ratio, 2),
    })


def test_steady_state_replay_allocates_nothing_large(bench_record):
    """After warmup, ``plan.run`` must reuse its arena — at a non-traced
    batch size: sliced replay binds leading-dim views of the trace-time
    buffers, so repeated runs may allocate view headers but no new large
    blocks, and the output must stay a window into the plan's buffer."""
    model = _model(n_channels=8)
    rng = np.random.default_rng(3)
    x = rng.normal(size=(MAX_BATCH, INPUT_LENGTH, 8)).astype(np.float32)
    model.predict(x, compiled=True)
    plan = model.compiled_predictor().plan_for(x)
    assert plan is not None

    fresh = rng.normal(size=(ODD_BATCH, INPUT_LENGTH, 8)).astype(np.float32)
    out_first = plan.run(fresh, copy=False)              # binds the slice set
    assert out_first.shape[0] == ODD_BATCH * (plan.output.shape[0] // MAX_BATCH)
    arena_before = plan.arena_nbytes

    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    for _ in range(50):
        out = plan.run(fresh, copy=False)
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()

    assert np.shares_memory(out, plan.output), "sliced output left the plan's buffer"
    assert (
        out.__array_interface__["data"][0]
        == out_first.__array_interface__["data"][0]
    ), "output storage was reallocated between runs"
    assert plan.arena_nbytes == arena_before, "arena grew during steady state"

    threshold = 64 * 1024
    large = [
        diff
        for diff in after.compare_to(before, "traceback")
        if diff.size_diff >= threshold
    ]
    for diff in large:  # pragma: no cover - diagnostic output on failure
        print(f"\nlarge allocation: {diff.size_diff:,} B at")
        for line in diff.traceback.format():
            print("   ", line)
    assert not large, (
        f"steady-state plan replay leaked {len(large)} block(s) >= {threshold} B"
    )
    print(
        f"\nsteady-state sliced replay at batch {ODD_BATCH} (traced at "
        f"{MAX_BATCH}) over {INPUT_LENGTH}x8: {plan.n_steps} steps, arena "
        f"{plan.arena_nbytes / 1024:,.0f} KiB, no large allocations in 50 runs"
    )
    bench_record("steady_state_allocation", {
        "traced_at_batch": MAX_BATCH,
        "replayed_at_batch": ODD_BATCH,
        "n_steps": plan.n_steps,
        "arena_bytes": plan.arena_nbytes,
        "large_block_threshold_bytes": threshold,
        "large_blocks_after_50_runs": len(large),
    })
