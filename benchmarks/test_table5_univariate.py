"""Benchmark E2 — regenerate Table V (univariate forecasting on ETT).

Paper claim (shape): LiPFormer is within the top two on most univariate ETT
cells, confirming the backbone works in the univariate setting as well.
"""

from repro.experiments import run_table5


def test_table5_univariate_forecasting(benchmark, profile, once):
    table = once(
        benchmark,
        run_table5,
        profile,
        datasets=("ETTh1", "ETTm2"),
        horizons=(profile.horizons[0],),
        models=("LiPFormer", "PatchTST", "DLinear"),
    )
    print()
    print(table.to_text())
    assert len(table) == 2 * 3

    for dataset in ("ETTh1", "ETTm2"):
        rows = {row["model"]: row["mse"] for row in table.rows if row["dataset"] == dataset}
        # All models operate on a single channel and should beat a naive
        # mean prediction (MSE ~1 on standardised data) ...
        assert all(value < 1.0 for value in rows.values())
        # ... and LiPFormer should stay within 2x of the best model
        # (the paper reports it as best-or-second on these cells).
        best = min(rows.values())
        assert rows["LiPFormer"] <= 2.0 * best
