"""Benchmark S1 — serving-layer throughput.

Quantifies the two serving fast paths introduced with ``repro.serving``:

* micro-batched :class:`ForecastService` vs. 32 sequential
  ``ForecastModel.predict`` calls (the paper's lightweight-inference story,
  Table VII, under request-at-a-time traffic);
* vectorised ``SlidingWindowDataset.as_arrays`` vs. the per-sample Python
  loop it replaced, on a 10k-step series — asserting the outputs stay
  bit-identical.
"""

import time

import numpy as np

from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.data import load_dataset
from repro.data.windows import SlidingWindowDataset
from repro.serving import ForecastService

BATCH_SIZE = 32


def _best_of(fn, repeats: int = 5) -> float:
    """Min-of-N wall-clock time; the minimum is the least noisy estimator."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_service_speedup(n_channels: int, hidden_dim: int):
    config = ModelConfig(
        input_length=96, horizon=24, n_channels=n_channels,
        patch_length=24, hidden_dim=hidden_dim, dropout=0.0,
    )
    model = LiPFormer(config)
    rng = np.random.default_rng(7)
    histories = rng.normal(size=(BATCH_SIZE, 96, n_channels)).astype(np.float32)

    def sequential():
        for history in histories:
            model.predict(history[None])

    service = ForecastService(model, max_batch_size=BATCH_SIZE)

    def batched():
        handles = [service.submit(history) for history in histories]
        for handle in handles:
            handle.result()

    sequential()
    batched()  # warmup both paths
    t_sequential = _best_of(sequential)
    t_batched = _best_of(batched)
    return t_sequential, t_batched


def test_microbatched_service_beats_sequential_predict(bench_record):
    """Micro-batching must give >= 3x throughput at batch size 32."""
    t_sequential, t_batched = _measure_service_speedup(n_channels=1, hidden_dim=64)
    speedup = t_sequential / t_batched
    print(
        f"\nunivariate serving: sequential {BATCH_SIZE / t_sequential:,.0f} req/s, "
        f"micro-batched {BATCH_SIZE / t_batched:,.0f} req/s, speedup {speedup:.1f}x"
    )
    bench_record("serving_throughput_univariate", {
        "batch_size": BATCH_SIZE,
        "sequential_req_per_s": round(BATCH_SIZE / t_sequential),
        "microbatched_req_per_s": round(BATCH_SIZE / t_batched),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 3.0, (
        f"micro-batched service only {speedup:.2f}x faster than sequential predict"
    )


def test_multivariate_service_speedup_recorded(bench_record):
    """Multivariate (7-channel) serving amortises less but must still win."""
    t_sequential, t_batched = _measure_service_speedup(n_channels=7, hidden_dim=64)
    speedup = t_sequential / t_batched
    print(
        f"\nmultivariate serving: sequential {BATCH_SIZE / t_sequential:,.0f} req/s, "
        f"micro-batched {BATCH_SIZE / t_batched:,.0f} req/s, speedup {speedup:.1f}x"
    )
    bench_record("serving_throughput_multivariate", {
        "batch_size": BATCH_SIZE,
        "n_channels": 7,
        "sequential_req_per_s": round(BATCH_SIZE / t_sequential),
        "microbatched_req_per_s": round(BATCH_SIZE / t_batched),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 1.5


def test_vectorised_as_arrays_beats_loop_on_10k_series():
    """The sliding_window_view fast path: >= 5x on 10k steps, bit-identical."""
    series = load_dataset("ETTh1", n_timestamps=10_000, include_covariates=True)
    dataset = SlidingWindowDataset(series, input_length=96, horizon=24)

    fast = dataset.as_arrays()
    slow = dataset._as_arrays_loop()
    for key in fast:
        if slow[key] is None:
            assert fast[key] is None
        else:
            np.testing.assert_array_equal(fast[key], slow[key])

    t_fast = _best_of(lambda: dataset.as_arrays(), repeats=3)
    t_slow = _best_of(lambda: dataset._as_arrays_loop(), repeats=3)
    speedup = t_slow / t_fast
    print(
        f"\nas_arrays over {len(dataset)} windows: loop {t_slow * 1000:.1f}ms, "
        f"vectorised {t_fast * 1000:.1f}ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, f"vectorised as_arrays only {speedup:.2f}x faster than the loop"
