"""Benchmark E11 — regenerate Figure 7 (contrastive logits matrices).

Paper claim (shape): after dual-encoder pre-training, the logits matrix has
a dominant diagonal on training batches (contrastive alignment) and remains
structured (diagonal margin > 0) on unshuffled validation batches.
"""

from repro.experiments import run_figure7


def test_figure7_logits_matrices(benchmark, profile, once):
    table, matrices = once(
        benchmark, run_figure7, profile, datasets=("ETTm1", "ElectricityPrice"), batch_size=48
    )
    print()
    print(table.to_text())
    assert len(table) == 4  # two datasets x (train, validation)

    for key, result in matrices.items():
        assert result.logits.shape[0] == result.logits.shape[1]
        if result.split == "train":
            # Bright diagonal on the data the encoder was trained on.
            assert result.diagonal_margin > 0, key
