"""Benchmark S4 — parallel shard execution and incremental checkpoint cost.

Quantifies the two claims of the ``repro.runtime`` layer:

* **parallel fan-out**: ``forecast_all`` over S shards through a
  :class:`~repro.runtime.PoolExecutor` overlaps the per-shard forward
  passes (NumPy releases the GIL inside BLAS), so throughput scales with
  cores.  The speedup bar adapts to the host: single-core CI boxes can
  only verify the pool doesn't *cost* anything, multi-core hosts must see
  a real speedup (>1.5× at 4 shards on ≥4 cores — the acceptance bar).
* **O(churn) checkpoints**: ``save_incremental`` at 10% churn must write
  well under half the bytes of a full ``save`` (acceptance: <50%), because
  a delta carries payloads only for dirtied tenants.
"""

import os
import time

import numpy as np

from repro.cluster import ShardedForecaster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.runtime import PoolExecutor, SerialExecutor
from repro.serving import ForecastService

N_SHARDS = 4
N_TENANTS = 128
N_CHANNELS = 8
INPUT_LENGTH = 96
HORIZON = 24
TICKS = 6


def _service_factory():
    # Wide enough that each shard's padded forward pass is BLAS-dominated
    # (~95% of wall-clock scales with batch size at this geometry) — the
    # GIL-releasing regime the thread-pool claim is about.
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=N_CHANNELS,
        patch_length=24, hidden_dim=128, dropout=0.0, n_heads=4, n_layers=2,
    )
    return ForecastService(LiPFormer(config), max_batch_size=N_TENANTS)


def _build_cluster(executor):
    rng = np.random.default_rng(11)
    cluster = ShardedForecaster(_service_factory, n_shards=N_SHARDS, executor=executor)
    for i in range(N_TENANTS):
        cluster.ingest(
            f"tenant-{i}", rng.normal(size=(INPUT_LENGTH, N_CHANNELS)).astype(np.float32)
        )
    return cluster


def _drive(cluster, ticks):
    for _ in range(ticks):
        for handle in cluster.forecast_all().values():
            handle.result()


def test_pool_executor_speedup_over_serial():
    """Parallel forecast_all throughput vs the serial fan-out baseline."""
    elapsed = {}
    for name, executor in (("serial", SerialExecutor()), ("pool", PoolExecutor(N_SHARDS))):
        with executor:
            cluster = _build_cluster(executor)
            _drive(cluster, 2)                     # warm caches and the pool
            cluster.reset_service_stats()
            start = time.perf_counter()
            _drive(cluster, TICKS)
            elapsed[name] = time.perf_counter() - start
            stats = cluster.service_stats()
            assert stats.requests == N_TENANTS * TICKS
            # Parallelism must not change batching: tenants still coalesce
            # per shard into one flush per fan-out.
            assert stats.mean_batch_size >= 0.8 * N_TENANTS / N_SHARDS

    speedup = elapsed["serial"] / elapsed["pool"]
    cores = os.cpu_count() or 1
    # The bar the host can actually clear: with one core a thread pool can
    # only tie (the assert guards against fan-out *overhead*), and real
    # parallel speedup is only demanded when the serial baseline is known
    # to run single-threaded — with a multithreaded BLAS (the pip default,
    # unless OMP/OPENBLAS_NUM_THREADS=1 as CI sets) the baseline already
    # occupies every core and the executor comparison measures scheduling,
    # not parallelism.
    single_threaded_blas = "1" in (
        os.environ.get("OMP_NUM_THREADS"),
        os.environ.get("OPENBLAS_NUM_THREADS"),
    )
    if cores >= 4 and single_threaded_blas:
        required = 1.5
    elif cores >= 2 and single_threaded_blas:
        required = 1.1
    else:
        required = 0.6
    print(
        f"\nparallel scaling ({cores} cores, {N_SHARDS} shards): serial "
        f"{N_TENANTS * TICKS / elapsed['serial']:,.0f} forecasts/s, pool "
        f"{N_TENANTS * TICKS / elapsed['pool']:,.0f} forecasts/s "
        f"(speedup {speedup:.2f}x, required {required:.2f}x)"
    )
    assert speedup >= required, (
        f"PoolExecutor gave {speedup:.2f}x over SerialExecutor on {cores} "
        f"cores; expected at least {required:.2f}x"
    )


def test_incremental_checkpoint_cost_at_ten_percent_churn(tmp_path):
    """Delta bytes and wall-clock vs a full snapshot of the same fleet."""
    rng = np.random.default_rng(12)
    cluster = _build_cluster(SerialExecutor())

    full_path = str(tmp_path / "full.npz")
    start = time.perf_counter()
    cluster.save(full_path)
    full_seconds = time.perf_counter() - start

    churned = [f"tenant-{i}" for i in range(max(1, N_TENANTS // 10))]
    for tenant in churned:
        cluster.ingest(tenant, rng.normal(size=(4, N_CHANNELS)).astype(np.float32))

    delta_path = str(tmp_path / "delta.npz")
    start = time.perf_counter()
    cluster.save_incremental(delta_path)
    delta_seconds = time.perf_counter() - start

    full_bytes = os.path.getsize(full_path)
    delta_bytes = os.path.getsize(delta_path)
    print(
        f"\ncheckpoint cost at {len(churned)}/{N_TENANTS} churn: full "
        f"{full_bytes:,} B in {full_seconds * 1e3:.1f} ms, incremental "
        f"{delta_bytes:,} B in {delta_seconds * 1e3:.1f} ms "
        f"({delta_bytes / full_bytes:.1%} of full)"
    )
    assert delta_bytes < 0.5 * full_bytes, (
        f"incremental checkpoint wrote {delta_bytes} bytes — "
        f">50% of the {full_bytes}-byte full snapshot"
    )
    # The restore path must accept the freshly benchmarked chain.
    revived = ShardedForecaster.load_chain(_service_factory, [full_path, delta_path])
    assert revived.tenants() == cluster.tenants()
