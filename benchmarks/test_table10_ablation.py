"""Benchmark E7 — regenerate Table X (LayerNorm / FFN ablation).

Paper claim (shape): adding FFNs and LayerNorm back increases the parameter
count substantially while *not* improving (and typically degrading) the
forecast accuracy, justifying their removal.
"""

from repro.experiments import run_table10


def test_table10_lightweight_ablation(benchmark, profile, once):
    table = once(benchmark, run_table10, profile, datasets=("ETTh1",))
    print()
    print(table.to_text())
    assert len(table) == 4

    rows = {row["variant"]: row for row in table.rows}
    base = rows["LiPFormer"]
    heavy = rows["LiPFormer+FFNs+LN"]
    # The heavy variant has clearly more parameters ...
    assert heavy["parameters"] > base["parameters"] * 1.5
    # ... and the lightweight LiPFormer is not worse by more than 15%
    # (the paper reports it being strictly better on average).
    assert base["mse"] <= heavy["mse"] * 1.15
    assert base["mse"] <= rows["LiPFormer+FFNs"]["mse"] * 1.15
    assert base["mse"] <= rows["LiPFormer+LN"]["mse"] * 1.15
