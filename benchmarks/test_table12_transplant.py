"""Benchmark E9 — regenerate Table XII (Covariate Encoder transplanted).

Paper claim (shape): attaching the pre-trained Covariate Encoder to other
Transformer-family models (Informer, Transformer, Autoformer) reduces their
error on the Electricity-Price dataset (paper reports ~4-5% average gains).
"""

from repro.experiments import run_table12


def test_table12_covariate_encoder_transplant(benchmark, profile, once):
    table = once(benchmark, run_table12, profile, models=("Informer", "Transformer"))
    print()
    print(table.to_text())
    assert len(table) == 2

    improvements = []
    for row in table.rows:
        improvements.append(row["mse_without_encoder"] - row["mse_with_encoder"])
        # The enriched variant must not be substantially worse.
        assert row["mse_with_encoder"] <= row["mse_without_encoder"] * 1.1
    # On average across the wrapped models the encoder should help.
    assert sum(improvements) >= -1e-3
