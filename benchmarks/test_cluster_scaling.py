"""Benchmark S3 — sharded cluster scaling, process backend, rebalance cost.

Quantifies the claims the cluster subsystem makes:

* the sharded façade is a routing layer, not a bottleneck: serving the
  same tenant fleet through 2 or 4 shards (ring lookup + per-shard
  micro-batches) stays within a small factor of the single-shard path in
  one process, while per-shard batch sizes shrink by exactly the shard
  count (the win materialises when shards get their own cores/processes);
* the process backend *is* that materialisation: ``forecast_all`` through
  :class:`~repro.cluster.ProcessCoordinator` workers escapes the GIL, so
  on a multi-core host with single-threaded BLAS it must outrun the
  thread backend outright (≥2× at 4 shards on ≥4 cores); single-core CI
  boxes can only verify the wire/codec overhead stays bounded;
* consistent hashing keeps rebalancing *cheap*: growing an N-shard ring
  by one moves ≈ ``1/(N+1)`` of the tenants — never a full reshuffle —
  and every moved tenant lands on the new shard;
* a ``kill -9`` crash drill (detect + failover from the checkpoint chain)
  completes in interactive time, not restart-the-world time.

Process/thread and crash-drill measurements are merged into
``BENCH_cluster.json`` so re-anchors can see the trajectory.
"""

import os
import signal
import time

import numpy as np

from repro.cluster import ProcessCoordinator, ServiceSpec, ShardedForecaster, build_cluster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService

N_TENANTS = 24
INPUT_LENGTH = 48
HORIZON = 12
TICKS = 10


def _service_factory():
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=1,
        patch_length=12, hidden_dim=32, dropout=0.0,
    )
    return ForecastService(LiPFormer(config), max_batch_size=N_TENANTS)


def _arrivals(rng, steps):
    return [
        {f"tenant-{i}": rng.normal(size=(1, 1)).astype(np.float32) for i in range(N_TENANTS)}
        for _ in range(steps)
    ]


def _drive(cluster, arrivals):
    for tick in arrivals:
        handles = cluster.ingest_and_forecast(tick)
        for handle in handles.values():
            handle.result()


def test_sharded_routing_overhead_is_bounded():
    """Throughput vs shard count: fan-out must not crater single-process serving."""
    rng = np.random.default_rng(3)
    warmup = _arrivals(rng, INPUT_LENGTH // 2)
    measured = _arrivals(rng, TICKS)

    elapsed = {}
    batch_sizes = {}
    for n_shards in (1, 2, 4):
        cluster = ShardedForecaster(_service_factory, n_shards=n_shards)
        _drive(cluster, warmup)
        cluster.reset_service_stats()
        start = time.perf_counter()
        _drive(cluster, measured)
        elapsed[n_shards] = time.perf_counter() - start
        stats = cluster.service_stats()
        batch_sizes[n_shards] = stats.mean_batch_size
        assert stats.requests == N_TENANTS * TICKS

    throughput = {n: N_TENANTS * TICKS / t for n, t in elapsed.items()}
    print(
        "\ncluster scaling: "
        + ", ".join(
            f"{n} shard(s) {throughput[n]:,.0f} forecasts/s "
            f"(mean batch {batch_sizes[n]:.1f})"
            for n in sorted(throughput)
        )
    )
    # Tenants still coalesce per shard: N tenants over S shards ≈ N/S.
    for n_shards, mean_batch in batch_sizes.items():
        assert mean_batch >= 0.8 * N_TENANTS / n_shards
    # One process runs shards sequentially, so 4 shards can't be faster —
    # but the routing/fan-out layer itself must stay cheap.
    assert throughput[4] >= 0.25 * throughput[1], (
        f"4-shard fan-out overhead too high: {throughput[4]:,.0f} vs "
        f"{throughput[1]:,.0f} forecasts/s unsharded"
    )


def _backend_spec():
    # Wide enough that each worker's padded forward pass is BLAS-dominated
    # — the regime where separate processes (separate GILs, separate BLAS
    # contexts) actually buy wall-clock over one process's threads.
    return ServiceSpec(
        config=ModelConfig(
            input_length=96, horizon=24, n_channels=4,
            patch_length=24, hidden_dim=96, dropout=0.0, n_heads=4, n_layers=2,
        ),
        max_batch_size=64,
    )


def _required_process_speedup():
    """The bar the host can actually clear (see test_parallel_scaling).

    With one core, worker processes can't run concurrently and the wire
    codec is pure overhead — the assert only bounds that overhead.  Real
    GIL-escape speedup is demanded only when cores exist *and* BLAS is
    pinned to one thread (multithreaded BLAS already eats every core in
    the thread baseline, turning the comparison into scheduler noise).
    """
    cores = os.cpu_count() or 1
    single_threaded_blas = "1" in (
        os.environ.get("OMP_NUM_THREADS"),
        os.environ.get("OPENBLAS_NUM_THREADS"),
    )
    if cores >= 4 and single_threaded_blas:
        return 2.0
    if cores >= 2 and single_threaded_blas:
        return 1.2
    return 0.3


def test_process_backend_escapes_the_gil(bench_record_cluster):
    """forecast_all throughput: 4 process workers vs 4 thread shards."""
    n_shards, n_tenants, ticks = 4, 32, 4
    spec = _backend_spec()
    rng = np.random.default_rng(21)
    fleet = {
        f"tenant-{i}": rng.normal(size=(96, 4)).astype(np.float32)
        for i in range(n_tenants)
    }

    def drive(cluster, n_ticks):
        for _ in range(n_ticks):
            for handle in cluster.forecast_all().values():
                handle.result()

    elapsed = {}
    for backend in ("thread", "process"):
        cluster = build_cluster(spec, n_shards=n_shards, backend=backend)
        try:
            for tenant, values in fleet.items():
                cluster.ingest(tenant, values)
            drive(cluster, 1)                      # warm plans on every shard
            start = time.perf_counter()
            drive(cluster, ticks)
            elapsed[backend] = time.perf_counter() - start
            stats = cluster.service_stats()
            assert stats.requests >= n_tenants * ticks
        finally:
            if backend == "process":
                cluster.close()

    speedup = elapsed["thread"] / elapsed["process"]
    required = _required_process_speedup()
    cores = os.cpu_count() or 1
    throughput = {b: n_tenants * ticks / t for b, t in elapsed.items()}
    print(
        f"\nprocess backend ({cores} cores, {n_shards} shards): thread "
        f"{throughput['thread']:,.0f} forecasts/s, process "
        f"{throughput['process']:,.0f} forecasts/s "
        f"(speedup {speedup:.2f}x, required {required:.2f}x)"
    )
    bench_record_cluster(
        "process_vs_thread",
        {
            "cores": cores,
            "n_shards": n_shards,
            "n_tenants": n_tenants,
            "thread_forecasts_per_s": round(throughput["thread"], 1),
            "process_forecasts_per_s": round(throughput["process"], 1),
            "speedup": round(speedup, 3),
            "required": required,
        },
    )
    assert speedup >= required, (
        f"process backend gave {speedup:.2f}x over threads on {cores} "
        f"cores; expected at least {required:.2f}x"
    )


def test_crash_drill_recovery_time(bench_record_cluster, tmp_path):
    """kill -9 → detect → failover wall-clock, from a real checkpoint."""
    spec = _backend_spec()
    rng = np.random.default_rng(23)
    with ProcessCoordinator(spec, n_shards=3) as cluster:
        for i in range(18):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(96, 4)).astype(np.float32))
        cluster.save(str(tmp_path / "ckpt"))
        victim = cluster.shard_for("tenant-0")
        os.kill(cluster.worker_pid(victim), signal.SIGKILL)

        start = time.perf_counter()
        dead = cluster.detect_failures(timeout=5.0)
        detect_seconds = time.perf_counter() - start
        assert dead == [victim]

        start = time.perf_counter()
        report = cluster.failover(victim)
        failover_seconds = time.perf_counter() - start
        assert report.complete and report.restored

        # Post-recovery the cluster still serves its whole fleet.
        assert len(cluster.forecast_all()) == 18

    recovery = detect_seconds + failover_seconds
    print(
        f"\ncrash drill: detect {detect_seconds * 1e3:.0f} ms + failover "
        f"{failover_seconds * 1e3:.0f} ms = {recovery * 1e3:.0f} ms for "
        f"{len(report.restored)} tenants restored"
    )
    bench_record_cluster(
        "crash_drill",
        {
            "detect_seconds": round(detect_seconds, 4),
            "failover_seconds": round(failover_seconds, 4),
            "recovery_seconds": round(recovery, 4),
            "tenants_restored": len(report.restored),
        },
    )
    assert recovery < 30.0, f"crash recovery took {recovery:.1f}s"


def test_rebalance_moves_at_most_one_over_n_plus_slack():
    """Rebalance cost: adding shard N+1 migrates ≈ 1/(N+1) of tenants."""
    rng = np.random.default_rng(9)
    n_tenants = 600
    for n_shards in (2, 4):
        cluster = ShardedForecaster(_service_factory, n_shards=n_shards, vnodes=128)
        for i in range(n_tenants):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(4, 1)).astype(np.float32))
        before = cluster.ring.assignments(cluster.tenants())
        start = time.perf_counter()
        moved = cluster.add_shard()
        rebalance_seconds = time.perf_counter() - start
        fraction = len(moved) / n_tenants
        expected = 1 / (n_shards + 1)
        print(
            f"\nrebalance {n_shards}→{n_shards + 1} shards: moved "
            f"{len(moved)}/{n_tenants} tenants ({fraction:.1%}, expected "
            f"≈{expected:.1%}) in {rebalance_seconds * 1e3:.1f} ms"
        )
        assert fraction <= expected + 0.10, (
            f"rebalance moved {fraction:.1%} of tenants; consistent hashing "
            f"should move ≈{expected:.1%}"
        )
        assert fraction > 0, "a new shard should take some load"
        # Only reassigned tenants moved, and state went with them.
        after = cluster.ring.assignments(list(before))
        assert set(moved) == {t for t in before if before[t] != after[t]}
        assert all(t in cluster.shard(after[t]).store for t in before)
