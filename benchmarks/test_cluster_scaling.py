"""Benchmark S3 — sharded cluster scaling and rebalance cost.

Quantifies the two claims the cluster subsystem makes:

* the sharded façade is a routing layer, not a bottleneck: serving the
  same tenant fleet through 2 or 4 shards (ring lookup + per-shard
  micro-batches) stays within a small factor of the single-shard path in
  one process, while per-shard batch sizes shrink by exactly the shard
  count (the win materialises when shards get their own cores/processes);
* consistent hashing keeps rebalancing *cheap*: growing an N-shard ring
  by one moves ≈ ``1/(N+1)`` of the tenants — never a full reshuffle —
  and every moved tenant lands on the new shard.
"""

import time

import numpy as np

from repro.cluster import ShardedForecaster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService

N_TENANTS = 24
INPUT_LENGTH = 48
HORIZON = 12
TICKS = 10


def _service_factory():
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=1,
        patch_length=12, hidden_dim=32, dropout=0.0,
    )
    return ForecastService(LiPFormer(config), max_batch_size=N_TENANTS)


def _arrivals(rng, steps):
    return [
        {f"tenant-{i}": rng.normal(size=(1, 1)).astype(np.float32) for i in range(N_TENANTS)}
        for _ in range(steps)
    ]


def _drive(cluster, arrivals):
    for tick in arrivals:
        handles = cluster.ingest_and_forecast(tick)
        for handle in handles.values():
            handle.result()


def test_sharded_routing_overhead_is_bounded():
    """Throughput vs shard count: fan-out must not crater single-process serving."""
    rng = np.random.default_rng(3)
    warmup = _arrivals(rng, INPUT_LENGTH // 2)
    measured = _arrivals(rng, TICKS)

    elapsed = {}
    batch_sizes = {}
    for n_shards in (1, 2, 4):
        cluster = ShardedForecaster(_service_factory, n_shards=n_shards)
        _drive(cluster, warmup)
        cluster.reset_service_stats()
        start = time.perf_counter()
        _drive(cluster, measured)
        elapsed[n_shards] = time.perf_counter() - start
        stats = cluster.service_stats()
        batch_sizes[n_shards] = stats.mean_batch_size
        assert stats.requests == N_TENANTS * TICKS

    throughput = {n: N_TENANTS * TICKS / t for n, t in elapsed.items()}
    print(
        "\ncluster scaling: "
        + ", ".join(
            f"{n} shard(s) {throughput[n]:,.0f} forecasts/s "
            f"(mean batch {batch_sizes[n]:.1f})"
            for n in sorted(throughput)
        )
    )
    # Tenants still coalesce per shard: N tenants over S shards ≈ N/S.
    for n_shards, mean_batch in batch_sizes.items():
        assert mean_batch >= 0.8 * N_TENANTS / n_shards
    # One process runs shards sequentially, so 4 shards can't be faster —
    # but the routing/fan-out layer itself must stay cheap.
    assert throughput[4] >= 0.25 * throughput[1], (
        f"4-shard fan-out overhead too high: {throughput[4]:,.0f} vs "
        f"{throughput[1]:,.0f} forecasts/s unsharded"
    )


def test_rebalance_moves_at_most_one_over_n_plus_slack():
    """Rebalance cost: adding shard N+1 migrates ≈ 1/(N+1) of tenants."""
    rng = np.random.default_rng(9)
    n_tenants = 600
    for n_shards in (2, 4):
        cluster = ShardedForecaster(_service_factory, n_shards=n_shards, vnodes=128)
        for i in range(n_tenants):
            cluster.ingest(f"tenant-{i}", rng.normal(size=(4, 1)).astype(np.float32))
        before = cluster.ring.assignments(cluster.tenants())
        start = time.perf_counter()
        moved = cluster.add_shard()
        rebalance_seconds = time.perf_counter() - start
        fraction = len(moved) / n_tenants
        expected = 1 / (n_shards + 1)
        print(
            f"\nrebalance {n_shards}→{n_shards + 1} shards: moved "
            f"{len(moved)}/{n_tenants} tenants ({fraction:.1%}, expected "
            f"≈{expected:.1%}) in {rebalance_seconds * 1e3:.1f} ms"
        )
        assert fraction <= expected + 0.10, (
            f"rebalance moved {fraction:.1%} of tenants; consistent hashing "
            f"should move ≈{expected:.1%}"
        )
        assert fraction > 0, "a new shard should take some load"
        # Only reassigned tenants moved, and state went with them.
        after = cluster.ring.assignments(list(before))
        assert set(moved) == {t for t in before if before[t] != after[t]}
        assert all(t in cluster.shard(after[t]).store for t in before)
