"""Benchmark E8 — regenerate Table XI (Cross-Patch / Inter-Patch ablation).

Paper claim (shape): using both patch-wise attentions together is at least
as good as removing either (or both), with the full model best on average.
"""

import numpy as np

from repro.experiments import run_table11


def test_table11_attention_ablation(benchmark, profile, once):
    table = once(benchmark, run_table11, profile, datasets=("ETTh1", "ETTm2"))
    print()
    print(table.to_text())
    assert len(table) == 8

    # The paper reports the full model best across the board with ~5% average
    # MSE gains; at the quick scale per-cell noise is larger than that, so the
    # claim is checked on the average across datasets with a 15% band.
    variants = sorted({row["variant"] for row in table.rows})
    averages = {
        variant: np.mean([row["mse"] for row in table.rows if row["variant"] == variant])
        for variant in variants
    }
    full = averages["LiPFormer"]
    for variant, mse in averages.items():
        if variant != "LiPFormer":
            assert full <= mse * 1.15, f"{variant} unexpectedly better on average ({mse:.4f} vs {full:.4f})"
