"""Benchmark E1 — regenerate Table III (multivariate accuracy + efficiency).

Paper claim (shape): LiPFormer is first or second on most dataset/horizon
cells while using far fewer parameters and MACs than PatchTST / iTransformer
/ TimeMixer, and trains faster than the Transformer-based baselines.
"""

from repro.experiments import run_table3, summarize_winners


def test_table3_multivariate_forecasting(benchmark, profile, once):
    table = once(
        benchmark,
        run_table3,
        profile,
        datasets=("ETTh1", "ETTh2"),
        horizons=(profile.horizons[0],),
        models=("LiPFormer", "PatchTST", "DLinear", "iTransformer", "TiDE", "TimeMixer", "FGNN"),
    )
    print()
    print(table.to_text())
    print()
    print(summarize_winners(table).to_text())

    assert len(table) == 2 * 7
    benchmark.extra_info["rows"] = len(table)

    # Efficiency shape: LiPFormer uses fewer parameters than PatchTST and iTransformer.
    by_model = {
        (row["model"], row["dataset"]): row for row in table.rows if row["horizon"] == profile.horizons[0]
    }
    for dataset in ("ETTh1", "ETTh2"):
        lip = by_model[("LiPFormer", dataset)]
        assert lip["parameters"] < by_model[("PatchTST", dataset)]["parameters"]
        assert lip["parameters"] < by_model[("iTransformer", dataset)]["parameters"]

    # Accuracy shape: LiPFormer lands in the top half of the model ranking.
    for dataset in ("ETTh1", "ETTh2"):
        ranking = sorted(
            (row for row in table.rows if row["dataset"] == dataset), key=lambda row: row["mse"]
        )
        position = [row["model"] for row in ranking].index("LiPFormer")
        assert position < len(ranking) / 2, f"LiPFormer ranked {position + 1} on {dataset}"


def test_table3_covariate_datasets(benchmark, profile, once):
    """The covariate-bearing datasets from Table III (Electricity-Price, Cycle)."""
    table = once(
        benchmark,
        run_table3,
        profile,
        datasets=("ElectricityPrice", "Cycle"),
        horizons=(profile.horizons[0],),
        models=("LiPFormer", "PatchTST", "DLinear", "TiDE"),
        with_efficiency=False,
    )
    print()
    print(table.to_text())
    assert len(table) == 2 * 4
    # Paper claim: on the two covariate datasets LiPFormer (which exploits
    # future covariates) beats the covariate-agnostic lightweight baselines
    # and stays close to the best model overall.  (At the quick profile the
    # much larger PatchTST can edge it out on Electricity-Price — see
    # EXPERIMENTS.md — so the check allows a 25% band against the best.)
    for dataset in ("ElectricityPrice", "Cycle"):
        rows = {row["model"]: row["mse"] for row in table.rows if row["dataset"] == dataset}
        assert rows["LiPFormer"] < rows["DLinear"]
        assert rows["LiPFormer"] < rows["TiDE"] * 1.05
        assert rows["LiPFormer"] <= min(rows.values()) * 1.25
