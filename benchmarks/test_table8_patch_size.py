"""Benchmark E5 — regenerate Table VIII (impact of patch size).

Paper claim (shape): accuracy is robust to the patch length — the spread of
MSE across patch lengths is small relative to the MSE itself, which the
paper attributes to the Cross-Patch mixing.
"""

import numpy as np

from repro.experiments import run_table8


def test_table8_patch_size_sweep(benchmark, profile, once):
    table = once(
        benchmark,
        run_table8,
        profile,
        datasets=("ETTh1",),
        patch_lengths=(6, 12, 24, 48),
    )
    print()
    print(table.to_text())
    assert len(table) == 4

    errors = {row["patch_length"]: row["mse"] for row in table.rows}
    values = np.array(list(errors.values()))
    # Every patch length must produce a usable model (well below the
    # variance of the standardised targets) ...
    assert np.all(values < 1.1)
    # ... the recommended larger patches (24, 48) must be solidly accurate ...
    assert min(errors[24], errors[48]) < 0.75
    # ... and the spread stays bounded.  The paper reports near-identical
    # accuracy across patch lengths at full scale; with the quick training
    # budget the very small patches (6, 12) train more slowly, so the band
    # is wider here (documented in EXPERIMENTS.md).
    assert values.max() <= values.min() * 2.2
