"""Benchmark E6 — regenerate Table IX (impact of input-sequence length).

Paper claim (shape): LiPFormer benefits from longer histories — its MSE does
not degrade as the input window grows, and it stays competitive with the
baselines at every length.
"""

from repro.experiments import run_table9


def test_table9_input_length_sweep(benchmark, profile, once):
    lengths = (48, 96, 192)
    table = once(
        benchmark,
        run_table9,
        profile,
        datasets=("ETTh1",),
        input_lengths=lengths,
        models=("LiPFormer", "DLinear", "PatchTST"),
    )
    print()
    print(table.to_text())
    assert len(table) == len(lengths)

    lipformer = {row["input_length"]: row["LiPFormer"] for row in table.rows}
    # The longest history should not be (much) worse than the shortest one.
    assert lipformer[lengths[-1]] <= lipformer[lengths[0]] * 1.2
    # And at the longest history LiPFormer remains competitive with DLinear.
    final_row = next(row for row in table.rows if row["input_length"] == lengths[-1])
    assert final_row["LiPFormer"] <= final_row["DLinear"] * 1.2
