"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table or figure at the ``QUICK``
profile (small synthetic datasets, narrow models) so the whole harness runs
on a laptop CPU in minutes.  Swap in ``PAPER`` (``repro.experiments.PAPER``)
to run the full-scale configuration.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round); the measured value is the wall-clock time of regenerating the
table, and the table itself is attached to ``benchmark.extra_info`` and
printed so the rows can be compared against the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments import QUICK


@pytest.fixture(scope="session")
def profile():
    """The experiment profile used by all benchmarks."""
    return QUICK


def _run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    """Fixture: run a callable exactly once under pytest-benchmark."""
    return _run_once
