"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table or figure at the ``QUICK``
profile (small synthetic datasets, narrow models) so the whole harness runs
on a laptop CPU in minutes.  Swap in ``PAPER`` (``repro.experiments.PAPER``)
to run the full-scale configuration.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round); the measured value is the wall-clock time of regenerating the
table, and the table itself is attached to ``benchmark.extra_info`` and
printed so the rows can be compared against the paper.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import QUICK

# Machine-readable perf trajectories, merged section-by-section and
# asserted present by the CI smoke run.  ``BENCH_inference.json`` tracks
# model/plan latency; ``BENCH_serving.json`` tracks end-to-end serving
# percentiles, throughput and queue depth under load.
_REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_RESULTS_PATH = _REPO_ROOT / "BENCH_inference.json"
BENCH_SERVING_PATH = _REPO_ROOT / "BENCH_serving.json"
BENCH_CLUSTER_PATH = _REPO_ROOT / "BENCH_cluster.json"


def _record(path: Path, section: str, payload: dict) -> None:
    """Read-merge-write one section of a benchmark results file.

    Each benchmark owns a named section so the files can run in any order
    (or alone) without clobbering each other's numbers; the write goes
    through a temp file + rename so a crashed run never leaves a torn JSON.
    """
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def record_bench(section: str, payload: dict) -> None:
    """Record one named section into ``BENCH_inference.json``."""
    _record(BENCH_RESULTS_PATH, section, payload)


def record_bench_serving(section: str, payload: dict) -> None:
    """Record one named section into ``BENCH_serving.json``."""
    _record(BENCH_SERVING_PATH, section, payload)


def record_bench_cluster(section: str, payload: dict) -> None:
    """Record one named section into ``BENCH_cluster.json``."""
    _record(BENCH_CLUSTER_PATH, section, payload)


@pytest.fixture
def bench_record():
    """Fixture: record one named section into ``BENCH_inference.json``."""
    return record_bench


@pytest.fixture
def bench_record_serving():
    """Fixture: record one named section into ``BENCH_serving.json``."""
    return record_bench_serving


@pytest.fixture
def bench_record_cluster():
    """Fixture: record one named section into ``BENCH_cluster.json``."""
    return record_bench_cluster


@pytest.fixture(scope="session")
def profile():
    """The experiment profile used by all benchmarks."""
    return QUICK


def _run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    """Fixture: run a callable exactly once under pytest-benchmark."""
    return _run_once
