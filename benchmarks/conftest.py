"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table or figure at the ``QUICK``
profile (small synthetic datasets, narrow models) so the whole harness runs
on a laptop CPU in minutes.  Swap in ``PAPER`` (``repro.experiments.PAPER``)
to run the full-scale configuration.

Each benchmark runs its experiment exactly once (``pedantic`` with one
round); the measured value is the wall-clock time of regenerating the
table, and the table itself is attached to ``benchmark.extra_info`` and
printed so the rows can be compared against the paper.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import QUICK

# Machine-readable perf trajectory, merged section-by-section by the
# inference/serving benchmarks and asserted present by the CI smoke run.
BENCH_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_inference.json"


def record_bench(section: str, payload: dict) -> None:
    """Read-merge-write one section of ``BENCH_inference.json``.

    Each benchmark owns a named section so the files can run in any order
    (or alone) without clobbering each other's numbers; the write goes
    through a temp file + rename so a crashed run never leaves a torn JSON.
    """
    data = {}
    if BENCH_RESULTS_PATH.exists():
        try:
            data = json.loads(BENCH_RESULTS_PATH.read_text())
        except ValueError:
            data = {}
    data[section] = payload
    tmp = BENCH_RESULTS_PATH.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    tmp.replace(BENCH_RESULTS_PATH)


@pytest.fixture
def bench_record():
    """Fixture: record one named section into ``BENCH_inference.json``."""
    return record_bench


@pytest.fixture(scope="session")
def profile():
    """The experiment profile used by all benchmarks."""
    return QUICK


def _run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    """Fixture: run a callable exactly once under pytest-benchmark."""
    return _run_once
