"""Benchmark E3 — regenerate Table VI (implicit temporal pre-training).

Paper claim (shape): enriching datasets that lack explicit covariates with
pre-trained calendar (implicit) features does not hurt, and usually improves
MSE/MAE slightly (paper reports 1-5% gains on the ETT datasets).
"""

from repro.experiments import run_table6


def test_table6_implicit_pretraining(benchmark, profile, once):
    table = once(benchmark, run_table6, profile, datasets=("ETTh1", "ETTm1"))
    print()
    print(table.to_text())
    assert len(table) == 2

    for row in table.rows:
        # Both configurations must be in a sane accuracy range ...
        assert row["mse_with_pretrain"] < 1.5
        assert row["mse_without_pretrain"] < 1.5
        # ... and pre-training must not catastrophically degrade accuracy
        # (the paper reports consistent small improvements).
        assert row["mse_with_pretrain"] < row["mse_without_pretrain"] * 1.15
