"""Benchmark S2 — serving latency percentiles under a bursty workload.

Drives a two-shard :class:`ShardedForecaster` with bursty multi-tenant
traffic (every tenant ingests, then one ``forecast_all`` fan-out per
burst) and reads the request-latency distribution straight from the
``repro.obs`` histograms the serving layer already maintains — the same
numbers the JSON/Prometheus exports publish.  Records p50/p95/p99,
throughput and peak queue depth into ``BENCH_serving.json``.
"""

import time

import numpy as np

from repro import obs
from repro.cluster import ShardedForecaster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService

N_TENANTS = 64
N_SHARDS = 2
N_BURSTS = 8
INPUT_LENGTH = 48
HORIZON = 12


def _make_cluster():
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=1, patch_length=12,
        hidden_dim=32, dropout=0.0,
    )
    return ShardedForecaster(
        lambda: ForecastService(LiPFormer(config), max_batch_size=16),
        n_shards=N_SHARDS,
    )


def test_bursty_multitenant_latency_recorded(bench_record_serving):
    cluster = _make_cluster()
    rng = np.random.default_rng(11)
    for i in range(N_TENANTS):
        cluster.ingest(
            f"tenant-{i}", rng.normal(size=(INPUT_LENGTH, 1)).astype(np.float32)
        )
    cluster.forecast_all()  # warm every shard's compiled plan

    # The serving layer's own instruments are the measurement: reset them
    # post-warmup so the recorded distribution covers only the burst phase.
    latency = obs.histogram("repro_serving_request_latency_seconds")
    queue_depth = obs.gauge("repro_serving_queue_depth")
    latency.reset()
    queue_depth.reset()

    started = time.perf_counter()
    for _ in range(N_BURSTS):
        burst = rng.normal(size=(N_TENANTS, 4, 1)).astype(np.float32)
        for i in range(N_TENANTS):
            cluster.ingest(f"tenant-{i}", burst[i])
        results = cluster.forecast_all()
        assert len(results) == N_TENANTS
    elapsed = time.perf_counter() - started

    total_requests = N_TENANTS * N_BURSTS
    assert latency.count == total_requests, "request-latency histogram missed requests"
    p50, p95, p99 = (latency.percentile(q) * 1e3 for q in (50, 95, 99))
    throughput = total_requests / elapsed
    peak_queue = queue_depth.max_value

    print(
        f"\nbursty serving ({N_TENANTS} tenants x {N_BURSTS} bursts, {N_SHARDS} shards): "
        f"p50 {p50:.2f}ms p95 {p95:.2f}ms p99 {p99:.2f}ms, "
        f"{throughput:,.0f} req/s, peak queue {peak_queue:.0f}"
    )
    bench_record_serving("latency", {
        "p50_ms": round(p50, 3), "p95_ms": round(p95, 3), "p99_ms": round(p99, 3),
    })
    bench_record_serving("throughput", {"req_per_s": round(throughput)})
    bench_record_serving("queue_depth", {"peak": peak_queue})
    bench_record_serving("workload", {
        "tenants": N_TENANTS, "shards": N_SHARDS, "bursts": N_BURSTS,
        "input_length": INPUT_LENGTH, "horizon": HORIZON,
        "max_batch_size": 16,
    })

    assert 0 < p50 <= p95 <= p99
    assert peak_queue > 0
    assert throughput > 0
