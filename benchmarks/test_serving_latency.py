"""Benchmark S2 — serving latency percentiles under a bursty workload.

Drives a two-shard :class:`ShardedForecaster` with bursty multi-tenant
traffic (every tenant ingests, then one ``forecast_all`` fan-out per
burst) and reads the request-latency distribution straight from the
``repro.obs`` histograms the serving layer already maintains — the same
numbers the JSON/Prometheus exports publish.  Records p50/p95/p99,
throughput and peak queue depth into ``BENCH_serving.json``.
"""

import time

import numpy as np

from repro import obs
from repro.cluster import ShardedForecaster
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import (
    AdmissionPolicy,
    DeadlineExceeded,
    ForecastService,
    Overloaded,
)

N_TENANTS = 64
N_SHARDS = 2
N_BURSTS = 8
INPUT_LENGTH = 48
HORIZON = 12


def _make_cluster():
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=1, patch_length=12,
        hidden_dim=32, dropout=0.0,
    )
    return ShardedForecaster(
        lambda: ForecastService(LiPFormer(config), max_batch_size=16),
        n_shards=N_SHARDS,
    )


def test_bursty_multitenant_latency_recorded(bench_record_serving):
    cluster = _make_cluster()
    rng = np.random.default_rng(11)
    for i in range(N_TENANTS):
        cluster.ingest(
            f"tenant-{i}", rng.normal(size=(INPUT_LENGTH, 1)).astype(np.float32)
        )
    cluster.forecast_all()  # warm every shard's compiled plan

    # The serving layer's own instruments are the measurement: reset them
    # post-warmup so the recorded distribution covers only the burst phase.
    latency = obs.histogram("repro_serving_request_latency_seconds")
    queue_depth = obs.gauge("repro_serving_queue_depth")
    latency.reset()
    queue_depth.reset()

    started = time.perf_counter()
    for _ in range(N_BURSTS):
        burst = rng.normal(size=(N_TENANTS, 4, 1)).astype(np.float32)
        for i in range(N_TENANTS):
            cluster.ingest(f"tenant-{i}", burst[i])
        results = cluster.forecast_all()
        assert len(results) == N_TENANTS
    elapsed = time.perf_counter() - started

    total_requests = N_TENANTS * N_BURSTS
    assert latency.count == total_requests, "request-latency histogram missed requests"
    p50, p95, p99 = (latency.percentile(q) * 1e3 for q in (50, 95, 99))
    throughput = total_requests / elapsed
    peak_queue = queue_depth.max_value

    print(
        f"\nbursty serving ({N_TENANTS} tenants x {N_BURSTS} bursts, {N_SHARDS} shards): "
        f"p50 {p50:.2f}ms p95 {p95:.2f}ms p99 {p99:.2f}ms, "
        f"{throughput:,.0f} req/s, peak queue {peak_queue:.0f}"
    )
    bench_record_serving("latency", {
        "p50_ms": round(p50, 3), "p95_ms": round(p95, 3), "p99_ms": round(p99, 3),
    })
    bench_record_serving("throughput", {"req_per_s": round(throughput)})
    bench_record_serving("queue_depth", {"peak": peak_queue})
    bench_record_serving("workload", {
        "tenants": N_TENANTS, "shards": N_SHARDS, "bursts": N_BURSTS,
        "input_length": INPUT_LENGTH, "horizon": HORIZON,
        "max_batch_size": 16,
    })

    assert 0 < p50 <= p95 <= p99
    assert peak_queue > 0
    assert throughput > 0


QUEUE_LIMIT = 16
BURST_SIZE = 48  # 3x the queue: two thirds of each burst must shed
DOOMED_PER_BURST = 4  # submitted with a deadline that lapses before flush


def test_overload_shedding_recorded(bench_record_serving):
    """Benchmark S3 — typed load-shedding under a 3-priority burst.

    Drives a queue-bounded service with bursts three times its capacity
    and records the shed rate, the deadline-miss rate and the p99 latency
    the *interactive* class still gets while lower classes pay.
    """
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=1, patch_length=12,
        hidden_dim=32, dropout=0.0,
    )
    service = ForecastService(
        LiPFormer(config),
        max_batch_size=64,  # above the queue bound: shedding, not auto-flush
        admission=AdmissionPolicy(
            queue_limit=QUEUE_LIMIT,
            default_timeout=30.0,
            # Fire the rescue timer at the deadline itself, so a lapsed
            # budget is a measured miss rather than an early rescue.
            flush_fraction=1.0,
        ),
    )
    rng = np.random.default_rng(13)
    history = rng.normal(size=(INPUT_LENGTH, 1)).astype(np.float32)
    service.submit(history).result()  # warm the compiled plan
    service.reset_stats()
    priority_latency = obs.histogram(
        "repro_serving_priority_latency_seconds", labels=("priority",)
    )
    interactive = priority_latency.labels(priority="interactive")
    interactive.reset()

    priorities = ("interactive", "batch", "best_effort")
    handles, refused = [], 0
    submitted = N_BURSTS * (BURST_SIZE + DOOMED_PER_BURST)
    started = time.perf_counter()
    for _ in range(N_BURSTS):
        for i in range(DOOMED_PER_BURST):
            # Deliberate deadline misses: queued first (into an empty
            # queue, at a priority nothing displaces) with a budget that
            # lapses while the burst queues behind them — the flush sheds
            # them instead of spending a forward pass.
            try:
                handles.append(
                    service.submit(
                        history - 0.01 * i, priority="interactive", timeout=0.004
                    )
                )
            except (Overloaded, DeadlineExceeded):
                refused += 1
        for i in range(BURST_SIZE):
            try:
                handles.append(
                    service.submit(history + 0.01 * i, priority=priorities[i % 3])
                )
            except (Overloaded, DeadlineExceeded):
                refused += 1
        time.sleep(0.01)
        service.flush()
    elapsed = time.perf_counter() - started
    service.close()

    outcomes = {"ok": 0, "Overloaded": 0, "DeadlineExceeded": 0}
    for handle in handles:
        try:
            handle.result()
            outcomes["ok"] += 1
        except (Overloaded, DeadlineExceeded) as error:
            outcomes[type(error).__name__] += 1

    stats = service.stats_snapshot()
    shed = stats.shed_overloaded + stats.shed_expired + stats.deadline_misses
    shed_rate = shed / submitted
    deadline_miss_rate = stats.deadline_misses / submitted
    p99_interactive = interactive.percentile(99) * 1e3

    print(
        f"\noverload ({N_BURSTS} bursts of {BURST_SIZE}+{DOOMED_PER_BURST} vs "
        f"queue {QUEUE_LIMIT}): shed {shed_rate:.1%} "
        f"(deadline misses {deadline_miss_rate:.1%}), "
        f"{outcomes['ok']} served, interactive p99 {p99_interactive:.2f}ms"
    )
    bench_record_serving("overload", {
        "submitted": submitted,
        "served": outcomes["ok"],
        "refused_at_admission": refused,
        "evicted": outcomes["Overloaded"],
        "deadline_misses": stats.deadline_misses,
        "shed_rate": round(shed_rate, 4),
        "deadline_miss_rate": round(deadline_miss_rate, 4),
        "p99_interactive_ms": round(p99_interactive, 3),
        "queue_limit": QUEUE_LIMIT,
        "burst_size": BURST_SIZE,
        "priorities": list(priorities),
        "wall_seconds": round(elapsed, 3),
    })

    assert outcomes["ok"] + refused + outcomes["Overloaded"] + outcomes[
        "DeadlineExceeded"
    ] == submitted, "every submission must resolve or shed typed"
    assert shed_rate > 0.5, "a 3x burst must shed most of its traffic"
    assert stats.deadline_misses > 0, "doomed submissions must miss typed"
    assert np.isfinite(p99_interactive) and p99_interactive > 0
