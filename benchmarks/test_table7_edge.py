"""Benchmark E4 — regenerate Table VII (CPU-only edge-device inference).

Paper claim (shape): LiPFormer's per-inference latency is a fraction of the
vanilla Transformer's and grows much more slowly with the input length
(the paper reports ~3-10x gaps, growing with T).
"""

from repro.experiments import run_table7


def test_table7_edge_inference(benchmark, profile, once):
    input_lengths = (96, 192, 336)
    table = once(
        benchmark,
        run_table7,
        profile,
        datasets=("ETTh1", "Weather"),
        input_lengths=input_lengths,
        models=("Transformer", "LiPFormer"),
    )
    print()
    print(table.to_text(float_format="{:.5f}"))
    assert len(table) == 4

    for dataset in ("ETTh1", "Weather"):
        rows = {row["model"]: row for row in table.rows if row["dataset"] == dataset}
        transformer = rows["Transformer"]
        lipformer = rows["LiPFormer"]
        # LiPFormer is faster at every input length.
        for length in input_lengths:
            assert lipformer[f"T={length}"] < transformer[f"T={length}"]
        # And the Transformer's cost grows faster with the input length.
        transformer_growth = transformer[f"T={input_lengths[-1]}"] / transformer[f"T={input_lengths[0]}"]
        lipformer_growth = lipformer[f"T={input_lengths[-1]}"] / lipformer[f"T={input_lengths[0]}"]
        assert transformer_growth > lipformer_growth * 0.9
