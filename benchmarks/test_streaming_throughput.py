"""Benchmark S2 — streaming multi-tenant serving throughput.

Quantifies the two claims the streaming subsystem makes:

* forecasting N live tenants through :class:`StreamingForecaster` (one
  coalesced micro-batch per tick) beats per-tenant sequential
  ``ForecastModel.predict`` — the acceptance bar is >= 2x with a mean batch
  size > 1;
* :class:`SeriesStore` ingestion is cheap enough to never be the
  bottleneck: row-at-a-time and chunked append throughput are reported, and
  the ring buffer never reallocates.
"""

import time

import numpy as np

from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService
from repro.streaming import SeriesStore, StreamingForecaster, replay

N_TENANTS = 12
INPUT_LENGTH = 48
HORIZON = 12
TICKS = 16          # forecast ticks after warmup


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _make_model():
    config = ModelConfig(
        input_length=INPUT_LENGTH, horizon=HORIZON, n_channels=1,
        patch_length=12, hidden_dim=32, dropout=0.0,
    )
    return LiPFormer(config)


def _make_streams():
    rng = np.random.default_rng(11)
    steps = INPUT_LENGTH + TICKS
    return {
        f"tenant-{i}": rng.normal(size=(steps, 1)).astype(np.float32)
        for i in range(N_TENANTS)
    }


def test_streaming_beats_per_tenant_sequential_predict():
    """Coalesced multi-tenant serving: >= 2x over sequential, batches > 1."""
    model = _make_model()
    streams = _make_streams()

    def sequential():
        # The obvious per-tenant loop: maintain a window per tenant, call
        # the model once per tenant per tick.
        for step in range(INPUT_LENGTH, INPUT_LENGTH + TICKS):
            for values in streams.values():
                model.predict(values[step - INPUT_LENGTH:step][None])

    def streaming():
        service = ForecastService(model, max_batch_size=N_TENANTS)
        forecaster = StreamingForecaster(service)
        return replay(forecaster, streams, warmup=INPUT_LENGTH)

    sequential()
    result = streaming()      # warmup both paths (and keep one result)
    t_sequential = _best_of(sequential)
    t_streaming = _best_of(streaming)

    requests = N_TENANTS * (TICKS + 1)     # replay also forecasts at warmup
    speedup = t_sequential / t_streaming * (requests / (N_TENANTS * TICKS))
    print(
        f"\nstreaming serving ({N_TENANTS} tenants): sequential "
        f"{N_TENANTS * TICKS / t_sequential:,.0f} forecasts/s, streaming "
        f"{requests / t_streaming:,.0f} forecasts/s, speedup {speedup:.1f}x, "
        f"mean batch size {result.mean_batch_size:.1f}"
    )
    assert result.mean_batch_size > 1.0, "tenants must coalesce into micro-batches"
    assert result.mean_batch_size >= N_TENANTS * 0.9
    assert speedup >= 2.0, (
        f"streaming only {speedup:.2f}x faster than per-tenant sequential predict"
    )


def test_ingest_throughput_and_no_reallocation():
    """Ring-buffer ingestion: amortised O(1), no backing-array reallocation."""
    store = SeriesStore(capacity=4 * INPUT_LENGTH, n_channels=1)
    rng = np.random.default_rng(5)
    rows = rng.normal(size=(20_000, 1)).astype(np.float32)

    start = time.perf_counter()
    for tenant in range(4):
        key = f"tenant-{tenant}"
        for row in rows[:5_000]:
            store.ingest(key, row)
    elapsed = time.perf_counter() - start
    row_rate = 20_000 / elapsed

    backing = store.buffer("tenant-0")._data
    for row in rows[:1_000]:
        store.ingest("tenant-0", row)
    assert store.buffer("tenant-0")._data is backing

    chunk_store = SeriesStore(capacity=4 * INPUT_LENGTH, n_channels=1)
    start = time.perf_counter()
    for chunk_start in range(0, len(rows), 64):
        chunk_store.ingest("bulk", rows[chunk_start:chunk_start + 64])
    chunk_rate = len(rows) / (time.perf_counter() - start)

    print(
        f"\ningest throughput: {row_rate:,.0f} rows/s row-at-a-time, "
        f"{chunk_rate:,.0f} rows/s in 64-row chunks "
        f"(evicted {store.stats.evicted + chunk_store.stats.evicted:,} rows)"
    )
    assert row_rate > 5_000, f"row-at-a-time ingest too slow: {row_rate:,.0f} rows/s"
    assert chunk_rate > row_rate, "chunked ingest must amortise better than rows"
