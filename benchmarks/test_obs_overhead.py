"""Benchmark O1 — observability must be near-free when disabled.

Two gates protect the compiled single-request serving path:

* **disabled budget**: with metrics and tracing off, every instrument
  mutator degrades to one attribute check and an early return.  The
  summed cost of all touchpoints a single request crosses (counters,
  histograms, gauges, spans) must stay under 3% of the measured
  per-request latency.
* **enabled ratio**: turning metrics on may not blow up the serving
  path either — best-of-N enabled/disabled latency ratio stays small.

The per-op cost is measured directly (million-iteration loops on the
real instruments) rather than by diffing two noisy end-to-end runs, so
the 3% gate is stable on shared CI runners.
"""

import time

import numpy as np

from repro import obs
from repro.config import ModelConfig
from repro.core import LiPFormer
from repro.serving import ForecastService

# Upper bound on instrument touchpoints one request crosses on the
# submit → flush → resolve path: submit clock read, queue-depth gauge,
# flush histogram, occupancy histogram, request-latency histogram,
# plan-cache counters, lock-wait fast paths, span no-op checks, and
# headroom for the stats counters folded into the same flush.
TOUCHPOINTS = 16
GATE = 0.03  # disabled obs cost must stay under 3% of request latency


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _per_op_seconds(fn, iterations: int = 200_000) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


def _single_request_latency(service, history) -> float:
    def one_request():
        service.submit(history).result()

    one_request()  # warm the compiled plan
    return _best_of(one_request, repeats=20)


def test_disabled_observability_is_near_free(bench_record_serving):
    config = ModelConfig(
        input_length=48, horizon=12, n_channels=1, patch_length=12,
        hidden_dim=32, dropout=0.0,
    )
    service = ForecastService(LiPFormer(config), max_batch_size=16)
    history = np.random.default_rng(7).normal(size=(48, 1)).astype(np.float32)

    request_latency = _single_request_latency(service, history)

    counter = obs.counter("bench_obs_counter")
    histogram = obs.histogram("bench_obs_histogram")
    gauge = obs.gauge("bench_obs_gauge")
    with obs.observability(metrics=False, tracing=False):
        per_op = max(
            _per_op_seconds(counter.inc),
            _per_op_seconds(lambda: histogram.observe(0.01)),
            _per_op_seconds(lambda: gauge.set(3.0)),
            _per_op_seconds(lambda: obs.span("bench").__enter__()),
        )
        disabled_latency = _best_of(lambda: service.submit(history).result(), repeats=20)
    enabled_latency = _best_of(lambda: service.submit(history).result(), repeats=20)

    budget = per_op * TOUCHPOINTS
    share = budget / request_latency
    ratio = enabled_latency / disabled_latency
    print(
        f"\nobs overhead: per-op {per_op * 1e9:.0f}ns, {TOUCHPOINTS} touchpoints = "
        f"{budget * 1e6:.2f}µs vs request {request_latency * 1e6:.0f}µs "
        f"({share * 100:.2f}%); enabled/disabled ratio {ratio:.3f}"
    )
    bench_record_serving("obs_overhead", {
        "per_op_ns": round(per_op * 1e9, 1),
        "touchpoints": TOUCHPOINTS,
        "disabled_share_of_request": round(share, 5),
        "gate": GATE,
        "enabled_over_disabled_ratio": round(ratio, 3),
        "request_latency_us": round(request_latency * 1e6, 1),
    })
    assert share <= GATE, (
        f"disabled observability costs {share * 100:.2f}% of a compiled "
        f"single-request pass (gate {GATE * 100:.0f}%)"
    )
    # Generous bound: absorbs CI noise while still catching an instrument
    # accidentally doing real work (locking, formatting) per request.
    assert ratio <= 1.25, f"enabling metrics slowed serving {ratio:.2f}x"
