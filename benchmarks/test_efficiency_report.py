"""Benchmark E12 — the efficiency columns of Table III (params / MACs / time).

Paper claim (shape): LiPFormer's parameter count and MACs are one to two
orders of magnitude below the Transformer-family baselines (PatchTST,
iTransformer, TimeMixer) and its training / inference steps are faster;
only DLinear is lighter, at a clear accuracy cost (checked in E1).
"""

from repro.experiments import run_efficiency_report


def test_efficiency_columns(benchmark, profile, once):
    table = once(
        benchmark,
        run_efficiency_report,
        profile,
        dataset="ETTh1",
        models=("LiPFormer", "PatchTST", "DLinear", "iTransformer", "TimeMixer", "Transformer"),
    )
    print()
    print(table.to_text(float_format="{:.5f}"))
    assert len(table) == 6

    rows = {row["model"]: row for row in table.rows}
    lip = rows["LiPFormer"]
    # Parameter ordering: DLinear < LiPFormer < PatchTST <= Transformer-family.
    assert rows["DLinear"]["parameters"] < lip["parameters"]
    assert lip["parameters"] < rows["PatchTST"]["parameters"]
    assert lip["parameters"] < rows["iTransformer"]["parameters"]
    # MACs ordering: LiPFormer below PatchTST and the vanilla Transformer.
    assert lip["macs"] < rows["PatchTST"]["macs"]
    assert lip["macs"] < rows["Transformer"]["macs"]
    # Wall-clock: a LiPFormer training step is faster than a PatchTST step.
    assert lip["train_step_s"] < rows["PatchTST"]["train_step_s"]
