"""Benchmark E10 — regenerate Figure 6 (covariate encoder on/off).

Paper claim (shape): on the Electricity-Price dataset, removing the future
Covariate Encoder increases LiPFormer's MSE substantially (the paper reports
~34% higher MSE without it).
"""

from repro.experiments import run_figure6


def test_figure6_covariate_encoder_ablation(benchmark, profile, once):
    table = once(benchmark, run_figure6, profile, horizons=(profile.horizons[0],))
    print()
    print(table.to_text())
    assert len(table) == 1

    row = table.rows[0]
    # Using the covariate encoder should reduce the error on this dataset,
    # whose target is driven by the forecast covariates.
    assert row["mse_with_encoder"] < row["mse_without_encoder"]
    assert row["mae_with_encoder"] < row["mae_without_encoder"] * 1.05
