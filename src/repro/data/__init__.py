"""``repro.data`` — synthetic benchmark datasets and the forecasting pipeline."""

from .containers import FutureCovariates, MultivariateTimeSeries
from .covariates import (
    CYCLE_SCHEMA,
    ELECTRICITY_PRICE_SCHEMA,
    CovariateField,
    CovariateSchema,
    implicit_temporal_covariates,
)
from .csvio import load_csv, save_csv
from .incremental import RollingScaler
from .datasets import DATASET_SPECS, DatasetSpec, available_datasets, dataset_statistics, load_dataset
from .loader import DataLoader
from .pipeline import ForecastingData, prepare_forecasting_data
from .scalers import MinMaxScaler, StandardScaler
from .splits import chronological_split
from .timefeatures import (
    TIME_FEATURE_CARDINALITIES,
    TIME_FEATURE_NAMES,
    categorical_time_features,
    is_weekend,
    make_timestamps,
    normalized_time_features,
)
from .windows import SlidingWindowDataset, WindowSample

__all__ = [
    "FutureCovariates",
    "MultivariateTimeSeries",
    "CovariateField",
    "CovariateSchema",
    "CYCLE_SCHEMA",
    "ELECTRICITY_PRICE_SCHEMA",
    "implicit_temporal_covariates",
    "load_csv",
    "save_csv",
    "DatasetSpec",
    "DATASET_SPECS",
    "available_datasets",
    "dataset_statistics",
    "load_dataset",
    "DataLoader",
    "ForecastingData",
    "prepare_forecasting_data",
    "StandardScaler",
    "MinMaxScaler",
    "RollingScaler",
    "chronological_split",
    "TIME_FEATURE_NAMES",
    "TIME_FEATURE_CARDINALITIES",
    "make_timestamps",
    "normalized_time_features",
    "categorical_time_features",
    "is_weekend",
    "SlidingWindowDataset",
    "WindowSample",
]
