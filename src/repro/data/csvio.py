"""CSV round-trip for generated datasets.

The original benchmarks are distributed as CSV files with a ``date`` column
followed by one column per channel.  These helpers write and read the same
layout so downstream users can inspect the synthetic data with any CSV tool
or swap in the real files when they have them.
"""

from __future__ import annotations

import csv
import os
from typing import List, Optional

import numpy as np

from .containers import MultivariateTimeSeries

__all__ = ["save_csv", "load_csv"]

_DATE_FORMAT_LENGTH = 16  # "YYYY-MM-DDTHH:MM"


def save_csv(series: MultivariateTimeSeries, path: str) -> None:
    """Write ``series`` to ``path`` as ``date,channel...`` rows."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["date"] + list(series.channel_names))
        timestamps = series.timestamps.astype("datetime64[m]").astype(str)
        for stamp, row in zip(timestamps, series.values):
            writer.writerow([stamp[:_DATE_FORMAT_LENGTH]] + [f"{value:.6f}" for value in row])


def load_csv(path: str, name: Optional[str] = None) -> MultivariateTimeSeries:
    """Read a CSV written by :func:`save_csv` (or a real benchmark CSV)."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if not header or header[0].lower() != "date":
            raise ValueError(f"{path}: expected a 'date' first column, got {header[:1]}")
        channel_names: List[str] = header[1:]
        timestamps: List[np.datetime64] = []
        rows: List[List[float]] = []
        for row in reader:
            if not row:
                continue
            timestamps.append(np.datetime64(row[0].replace(" ", "T"), "m"))
            rows.append([float(value) for value in row[1:]])
    if not rows:
        raise ValueError(f"{path}: no data rows found")
    return MultivariateTimeSeries(
        values=np.asarray(rows, dtype=np.float32),
        timestamps=np.asarray(timestamps),
        channel_names=channel_names,
        name=name or os.path.splitext(os.path.basename(path))[0],
    )
