"""Synthetic replicas of the paper's nine benchmark datasets.

Table II of the paper lists the dataset statistics reproduced below.  Since
the original CSVs cannot be downloaded in this offline environment, each
dataset is synthesised with the same channel count, sampling frequency,
length and split ratio, and with component structure (daily/weekly/yearly
periodicity, trend, noise, covariate dependence) chosen to match the
qualitative character of the real data.  ``n_timestamps`` and ``n_channels``
can be overridden to produce smaller "quick profile" instances for CPU-only
experimentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import synthetic
from .containers import FutureCovariates, MultivariateTimeSeries
from .covariates import (
    CYCLE_SCHEMA,
    ELECTRICITY_PRICE_SCHEMA,
    implicit_temporal_covariates,
)
from .timefeatures import is_weekend, make_timestamps

__all__ = ["DatasetSpec", "DATASET_SPECS", "available_datasets", "load_dataset", "dataset_statistics"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one benchmark dataset (paper Table II)."""

    name: str
    n_channels: int
    n_timestamps: int
    freq_minutes: int
    split_ratio: Tuple[float, float, float]
    has_explicit_covariates: bool
    description: str


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "ETTh1": DatasetSpec("ETTh1", 7, 17420, 60, (0.6, 0.2, 0.2), False, "Electricity transformer temperature, hourly, site 1"),
    "ETTh2": DatasetSpec("ETTh2", 7, 17420, 60, (0.6, 0.2, 0.2), False, "Electricity transformer temperature, hourly, site 2"),
    "ETTm1": DatasetSpec("ETTm1", 7, 69680, 15, (0.6, 0.2, 0.2), False, "Electricity transformer temperature, 15-minute, site 1"),
    "ETTm2": DatasetSpec("ETTm2", 7, 69680, 15, (0.6, 0.2, 0.2), False, "Electricity transformer temperature, 15-minute, site 2"),
    "Weather": DatasetSpec("Weather", 21, 52696, 10, (0.7, 0.1, 0.2), False, "Max-Planck Jena weather station, 10-minute"),
    "Electricity": DatasetSpec("Electricity", 321, 26304, 60, (0.7, 0.1, 0.2), False, "Household electricity load diagrams, hourly"),
    "Traffic": DatasetSpec("Traffic", 862, 17544, 60, (0.7, 0.1, 0.2), False, "PeMS road occupancy rates, hourly"),
    "ElectricityPrice": DatasetSpec("ElectricityPrice", 40, 35808, 15, (0.7, 0.1, 0.2), True, "Provincial spot electricity market price, 15-minute, with grid-forecast covariates"),
    "Cycle": DatasetSpec("Cycle", 22, 21864, 60, (0.7, 0.1, 0.2), True, "Seattle Fremont bridge bicycle counts, hourly, with weather-forecast covariates"),
}


def available_datasets() -> List[str]:
    """Names of all registered datasets."""
    return list(DATASET_SPECS)


def dataset_statistics() -> List[Dict[str, object]]:
    """Rows of paper Table II (dataset statistics)."""
    return [
        {
            "dataset": spec.name,
            "variables": spec.n_channels,
            "timestamps": spec.n_timestamps,
            "split_ratio": spec.split_ratio,
            "explicit_future_covariates": spec.has_explicit_covariates,
        }
        for spec in DATASET_SPECS.values()
    ]


def load_dataset(
    name: str,
    n_timestamps: Optional[int] = None,
    n_channels: Optional[int] = None,
    seed: int = 2021,
    include_covariates: bool = True,
) -> MultivariateTimeSeries:
    """Generate a synthetic replica of dataset ``name``.

    Parameters
    ----------
    name:
        one of :func:`available_datasets` (case insensitive).
    n_timestamps, n_channels:
        optional overrides producing a smaller instance (quick profile);
        defaults are the paper's Table II statistics.
    seed:
        RNG seed; the same seed always yields the same dataset.
    include_covariates:
        attach future covariates — the explicit schema for
        Electricity-Price / Cycle, implicit temporal features otherwise.
    """
    key = _resolve_name(name)
    spec = DATASET_SPECS[key]
    length = spec.n_timestamps if n_timestamps is None else int(n_timestamps)
    channels = spec.n_channels if n_channels is None else int(n_channels)
    if length < 64:
        raise ValueError(f"n_timestamps must be >= 64, got {length}")
    if channels < 1:
        raise ValueError(f"n_channels must be >= 1, got {channels}")
    rng = np.random.default_rng(seed + _stable_hash(key))
    timestamps = make_timestamps(length, spec.freq_minutes)
    generator = _GENERATORS[key]
    values, covariates = generator(spec, length, channels, timestamps, rng)
    if not include_covariates:
        covariates = None
    elif covariates is None:
        covariates = implicit_temporal_covariates(timestamps)
    return MultivariateTimeSeries(
        values=values.astype(np.float32),
        timestamps=timestamps,
        channel_names=[f"{spec.name.lower()}_{i}" for i in range(channels)],
        covariates=covariates,
        name=spec.name,
    )


def _resolve_name(name: str) -> str:
    lookup = {key.lower(): key for key in DATASET_SPECS}
    normalised = name.lower().replace("-", "").replace("_", "").replace(" ", "")
    aliases = {
        "electriprice": "electricityprice",
        "electricityprice": "electricityprice",
        "weather": "weather",
    }
    normalised = aliases.get(normalised, normalised)
    for key_lower, key in lookup.items():
        if key_lower.replace("-", "") == normalised:
            return key
    raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}")


def _stable_hash(text: str) -> int:
    return sum(ord(ch) * (index + 1) for index, ch in enumerate(text)) % 10_000


def _samples_per_day(freq_minutes: int) -> int:
    return max(1, (24 * 60) // freq_minutes)


# --------------------------------------------------------------------------- #
# Per-dataset generators
# --------------------------------------------------------------------------- #
def _generate_ett(
    spec: DatasetSpec,
    length: int,
    channels: int,
    timestamps: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, Optional[FutureCovariates]]:
    """Transformer load/temperature style data.

    Six load channels share a latent daily demand factor; the oil
    temperature (last channel) follows a smoothed function of the loads,
    which gives the cross-channel structure the ETT datasets are known for.
    The minute-level variants (ETTm*) are smoother than the hourly ones.
    """
    per_day = _samples_per_day(spec.freq_minutes)
    smooth = spec.freq_minutes < 60
    demand = synthetic.mixture_series(
        length,
        per_day,
        rng,
        daily_amplitude=1.2,
        weekly_amplitude=0.5,
        trend_scale=0.004 if not smooth else 0.002,
        noise_sigma=0.25 if not smooth else 0.12,
        noise_phi=0.8,
        n_regime_shifts=4,
        regime_magnitude=0.8,
    )
    columns = []
    for channel in range(channels):
        loading = 0.4 + 0.6 * rng.random()
        idiosyncratic = synthetic.mixture_series(
            length,
            per_day,
            rng,
            daily_amplitude=0.5,
            weekly_amplitude=0.2,
            trend_scale=0.002,
            noise_sigma=0.3 if not smooth else 0.15,
            noise_phi=0.6,
        )
        columns.append(loading * demand + idiosyncratic)
    values = np.stack(columns, axis=1)
    if channels >= 2:
        # Oil temperature: low-pass filtered response to the aggregate load.
        aggregate = values[:, :-1].mean(axis=1)
        kernel = np.ones(per_day // 2 or 1) / (per_day // 2 or 1)
        lagged = np.convolve(aggregate, kernel, mode="full")[: length]
        values[:, -1] = 0.7 * lagged + 0.3 * synthetic.ar1_noise(length, 0.9, 0.2, rng)
    return values, None


def _generate_weather(
    spec: DatasetSpec,
    length: int,
    channels: int,
    timestamps: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, Optional[FutureCovariates]]:
    """Meteorological channels: strong daily and yearly cycles, smooth noise."""
    per_day = _samples_per_day(spec.freq_minutes)
    per_year = per_day * 365
    yearly_phase = rng.uniform(0, 2 * np.pi)
    columns = []
    for channel in range(channels):
        daily_amp = rng.uniform(0.4, 1.4)
        yearly_amp = rng.uniform(0.5, 2.0)
        base = synthetic.seasonal_component(length, per_year, yearly_amp, yearly_phase + rng.normal(0, 0.3))
        base += synthetic.multi_harmonic(length, per_day, np.array([daily_amp, daily_amp * 0.3]), rng)
        base += synthetic.ar1_noise(length, 0.9, 0.15, rng)
        base += synthetic.random_walk_trend(length, 0.001, rng)
        columns.append(base)
    return np.stack(columns, axis=1), None


def _generate_electricity(
    spec: DatasetSpec,
    length: int,
    channels: int,
    timestamps: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, Optional[FutureCovariates]]:
    """Per-client electricity consumption: positive, strong daily/weekly cycles."""
    per_day = _samples_per_day(spec.freq_minutes)
    weekend = is_weekend(timestamps)
    columns = []
    for channel in range(channels):
        base_load = rng.uniform(0.5, 3.0)
        daily = synthetic.multi_harmonic(length, per_day, np.array([1.0, 0.5, 0.2]) * rng.uniform(0.6, 1.2), rng)
        weekly = np.where(weekend, -rng.uniform(0.2, 0.6), 0.0)
        noise = synthetic.ar1_noise(length, 0.7, 0.25, rng)
        trend = synthetic.random_walk_trend(length, 0.002, rng)
        consumption = np.maximum(base_load + daily + weekly + noise + trend, 0.05)
        columns.append(consumption)
    return np.stack(columns, axis=1), None


def _generate_traffic(
    spec: DatasetSpec,
    length: int,
    channels: int,
    timestamps: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, Optional[FutureCovariates]]:
    """Road occupancy rates in [0, 1] with commute peaks."""
    per_day = _samples_per_day(spec.freq_minutes)
    weekend = is_weekend(timestamps)
    profile = synthetic.rush_hour_profile(length, per_day, weekend)
    columns = []
    for channel in range(channels):
        sensitivity = rng.uniform(0.4, 1.0)
        noise = synthetic.ar1_noise(length, 0.6, 0.05, rng)
        base = rng.uniform(0.02, 0.08)
        occupancy = np.clip(base + sensitivity * 0.25 * profile + noise * 0.3, 0.0, 1.0)
        columns.append(occupancy)
    return np.stack(columns, axis=1), None


def _generate_cycle(
    spec: DatasetSpec,
    length: int,
    channels: int,
    timestamps: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, Optional[FutureCovariates]]:
    """Bicycle counts whose level depends on weather-forecast covariates.

    The covariates are generated first; the bicycle counts then respond to
    temperature, precipitation and the weekend flag, so models that exploit
    the explicit future covariates (LiPFormer's Covariate Encoder, TiDE)
    have genuine signal to pick up — the property Table III's last rows and
    Figure 6 rely on.
    """
    per_day = _samples_per_day(spec.freq_minutes)
    per_year = per_day * 365
    weekend = is_weekend(timestamps)
    schema = CYCLE_SCHEMA

    temperature_base = 12.0 + 10.0 * synthetic.seasonal_component(length, per_year, 1.0, -np.pi / 2)
    temperature_daily = 4.0 * synthetic.seasonal_component(length, per_day, 1.0, -np.pi / 2)
    temperature = temperature_base + temperature_daily + synthetic.ar1_noise(length, 0.95, 0.5, rng)
    precipitation = np.maximum(synthetic.ar1_noise(length, 0.9, 0.4, rng) - 0.6, 0.0)
    cloud_cover = np.clip(0.5 + synthetic.ar1_noise(length, 0.92, 0.12, rng), 0.0, 1.0)
    humidity = np.clip(0.65 + 0.2 * cloud_cover - 0.01 * (temperature - 12) + synthetic.ar1_noise(length, 0.9, 0.04, rng), 0.1, 1.0)
    wind = np.abs(synthetic.ar1_noise(length, 0.85, 1.2, rng)) + 3.0

    numerical_parts = [
        np.stack([temperature + 3, temperature - 3, temperature], axis=1),        # max/min/mean temperature
        np.stack([temperature - 2, temperature - 8, temperature - 5], axis=1),    # dew point
        np.stack([humidity + 0.1, humidity - 0.1, humidity], axis=1),             # humidity
        np.stack(
            [
                30.2 + 0.01 * temperature,
                np.full(length, 29.8),
                30.0 + synthetic.ar1_noise(length, 0.9, 0.02, rng),
            ],
            axis=1,
        ),
        np.stack([10.0 - 4 * cloud_cover, 4.0 - 2 * cloud_cover, 8.0 - 3 * cloud_cover], axis=1),
        np.stack([wind + 2, wind, rng.uniform(0, 360, size=length)], axis=1),
        (wind + 5 + np.abs(synthetic.ar1_noise(length, 0.7, 1.0, rng)))[:, None],
        precipitation[:, None],
        cloud_cover[:, None],
    ]
    numerical = np.concatenate(numerical_parts, axis=1).astype(np.float32)
    categorical = weekend.astype(np.int64)[:, None]
    covariates = FutureCovariates(
        numerical=numerical,
        categorical=categorical,
        numerical_names=schema.numerical_names(),
        categorical_names=schema.categorical_names(),
        cardinalities=schema.cardinalities(),
    )

    hours = (np.arange(length) % per_day) / per_day * 24.0
    commute = np.exp(-0.5 * ((hours - 8.0) / 1.2) ** 2) + np.exp(-0.5 * ((hours - 17.5) / 1.5) ** 2)
    recreational = np.exp(-0.5 * ((hours - 14.0) / 3.0) ** 2)
    weather_factor = np.clip(1.0 + 0.03 * (temperature - 12.0) - 0.8 * precipitation, 0.05, None)
    columns = []
    for channel in range(channels):
        mix = rng.uniform(0.3, 0.9)
        profile = np.where(weekend, 0.5 * recreational, mix * commute + (1 - mix) * recreational)
        counts = 120.0 * profile * weather_factor * rng.uniform(0.5, 1.5)
        counts = np.maximum(counts + synthetic.ar1_noise(length, 0.5, 6.0, rng), 0.0)
        columns.append(counts)
    return np.stack(columns, axis=1), covariates


def _generate_electricity_price(
    spec: DatasetSpec,
    length: int,
    channels: int,
    timestamps: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, Optional[FutureCovariates]]:
    """Spot electricity prices driven by forecast load and renewables.

    Prices respond to the *residual* load (forecast demand minus forecast
    renewable generation) with occasional scarcity spikes; the covariates
    therefore carry strong predictive signal, mirroring the paper's
    proprietary Shanxi market dataset.
    """
    per_day = _samples_per_day(spec.freq_minutes)
    per_year = per_day * 365
    weekend = is_weekend(timestamps)
    schema = ELECTRICITY_PRICE_SCHEMA

    load_forecast = (
        30_000
        + 5_000 * synthetic.multi_harmonic(length, per_day, np.array([1.0, 0.4]), rng)
        + 2_000 * synthetic.seasonal_component(length, per_year, 1.0, rng.uniform(0, 2 * np.pi))
        - 1_500 * weekend.astype(np.float64)
        + synthetic.ar1_noise(length, 0.9, 500, rng)
    )
    outgoing_forecast = 3_000 + synthetic.ar1_noise(length, 0.85, 300, rng)
    wind_forecast = np.maximum(4_000 + 2_500 * synthetic.ar1_noise(length, 0.95, 0.3, rng), 0.0)
    hours = (np.arange(length) % per_day) / per_day * 24.0
    solar_shape = np.clip(np.sin(np.pi * (hours - 6.0) / 12.0), 0.0, None)
    pv_forecast = 6_000 * solar_shape * np.clip(1 + 0.3 * synthetic.ar1_noise(length, 0.9, 0.3, rng), 0.1, 2.0)
    renewables = wind_forecast + pv_forecast

    temperature = 15 + 12 * synthetic.seasonal_component(length, per_year, 1.0, -np.pi / 2) + synthetic.ar1_noise(length, 0.95, 0.8, rng)
    location_temps = np.stack(
        [temperature + rng.normal(0, 2) + (3 if i % 2 == 0 else -3) for i in range(22)], axis=1
    )
    wind_rating = np.clip(2.5 + np.stack([synthetic.ar1_noise(length, 0.8, 0.6, rng) for _ in range(11)], axis=1), 0, 8)
    wind_direction = rng.uniform(0, 360, size=(length, 11))
    weather_condition = rng.integers(0, 6, size=(length, 11))
    holiday = (rng.random(length) < 0.03).astype(np.int64) | weekend.astype(np.int64)

    numerical = np.concatenate(
        [
            load_forecast[:, None],
            outgoing_forecast[:, None],
            (wind_forecast + pv_forecast)[:, None],
            wind_forecast[:, None],
            pv_forecast[:, None],
            location_temps,
            wind_rating,
            wind_direction,
        ],
        axis=1,
    ).astype(np.float32)
    categorical = np.concatenate([weather_condition, holiday[:, None]], axis=1).astype(np.int64)
    covariates = FutureCovariates(
        numerical=numerical,
        categorical=categorical,
        numerical_names=schema.numerical_names(),
        categorical_names=schema.categorical_names(),
        cardinalities=schema.cardinalities(),
    )

    residual_load = load_forecast + outgoing_forecast - renewables
    residual_norm = (residual_load - residual_load.mean()) / (residual_load.std() + 1e-8)
    spike = np.maximum(residual_norm - 1.5, 0.0) ** 2
    columns = []
    for channel in range(channels):
        sensitivity = rng.uniform(0.6, 1.3)
        price = (
            300
            + 120 * sensitivity * residual_norm
            + 80 * spike
            + 15 * synthetic.ar1_noise(length, 0.7, 1.0, rng)
            + 10 * synthetic.seasonal_component(length, per_day, 1.0, rng.uniform(0, 2 * np.pi))
        )
        columns.append(np.maximum(price, 0.0))
    return np.stack(columns, axis=1), covariates


_GENERATORS: Dict[str, Callable] = {
    "ETTh1": _generate_ett,
    "ETTh2": _generate_ett,
    "ETTm1": _generate_ett,
    "ETTm2": _generate_ett,
    "Weather": _generate_weather,
    "Electricity": _generate_electricity,
    "Traffic": _generate_traffic,
    "Cycle": _generate_cycle,
    "ElectricityPrice": _generate_electricity_price,
}
