"""Data containers shared across the data pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["FutureCovariates", "MultivariateTimeSeries"]


@dataclass
class FutureCovariates:
    """Time-aligned covariates known ahead of time (weak labels).

    Attributes
    ----------
    numerical:
        ``[T, cn]`` float array of numerical covariates (e.g. temperature,
        load forecast, normalised time features).
    categorical:
        ``[T, ct]`` integer array of categorical covariates (e.g. weather
        condition, holiday flag, hour of day).
    numerical_names / categorical_names:
        column names, in order.
    cardinalities:
        vocabulary size for each categorical column (same order as
        ``categorical_names``).
    """

    numerical: np.ndarray
    categorical: np.ndarray
    numerical_names: List[str] = field(default_factory=list)
    categorical_names: List[str] = field(default_factory=list)
    cardinalities: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.numerical = np.asarray(self.numerical, dtype=np.float32)
        self.categorical = np.asarray(self.categorical, dtype=np.int64)
        if self.numerical.ndim != 2 or self.categorical.ndim != 2:
            raise ValueError("covariate arrays must be 2-D [T, channels]")
        if len(self.numerical) != len(self.categorical):
            raise ValueError("numerical and categorical covariates must share the time axis")
        if self.categorical.shape[1] != len(self.cardinalities):
            raise ValueError("one cardinality per categorical column is required")
        for column in range(self.categorical.shape[1]):
            max_code = self.categorical[:, column].max(initial=0)
            if max_code >= self.cardinalities[column]:
                raise ValueError(
                    f"categorical column {column} contains code {max_code} "
                    f">= cardinality {self.cardinalities[column]}"
                )

    @property
    def n_numerical(self) -> int:
        return self.numerical.shape[1]

    @property
    def n_categorical(self) -> int:
        return self.categorical.shape[1]

    @property
    def n_total(self) -> int:
        return self.n_numerical + self.n_categorical

    def __len__(self) -> int:
        return len(self.numerical)

    def slice(self, start: int, stop: int) -> "FutureCovariates":
        """Return the covariates restricted to ``[start, stop)``."""
        return FutureCovariates(
            numerical=self.numerical[start:stop],
            categorical=self.categorical[start:stop],
            numerical_names=list(self.numerical_names),
            categorical_names=list(self.categorical_names),
            cardinalities=list(self.cardinalities),
        )


@dataclass
class MultivariateTimeSeries:
    """A multivariate series plus optional future covariates.

    Attributes
    ----------
    values:
        ``[T, C]`` float array of observed channels (forecast targets).
    timestamps:
        ``[T]`` array of ``datetime64`` timestamps.
    channel_names:
        names of the ``C`` channels.
    covariates:
        optional :class:`FutureCovariates` aligned with ``values``.
    name:
        dataset name, for reporting.
    """

    values: np.ndarray
    timestamps: np.ndarray
    channel_names: List[str] = field(default_factory=list)
    covariates: Optional[FutureCovariates] = None
    name: str = "series"

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float32)
        if self.values.ndim != 2:
            raise ValueError(f"values must be [T, C], got shape {self.values.shape}")
        if len(self.timestamps) != len(self.values):
            raise ValueError("timestamps and values must have the same length")
        if not self.channel_names:
            self.channel_names = [f"ch{i}" for i in range(self.values.shape[1])]
        if len(self.channel_names) != self.values.shape[1]:
            raise ValueError("one channel name per column is required")
        if self.covariates is not None and len(self.covariates) != len(self.values):
            raise ValueError("covariates must be aligned with values")

    @property
    def n_timestamps(self) -> int:
        return self.values.shape[0]

    @property
    def n_channels(self) -> int:
        return self.values.shape[1]

    @property
    def has_covariates(self) -> bool:
        return self.covariates is not None

    def __len__(self) -> int:
        return self.n_timestamps

    def slice(self, start: int, stop: int) -> "MultivariateTimeSeries":
        """Return the series restricted to ``[start, stop)``."""
        return MultivariateTimeSeries(
            values=self.values[start:stop],
            timestamps=self.timestamps[start:stop],
            channel_names=list(self.channel_names),
            covariates=self.covariates.slice(start, stop) if self.covariates else None,
            name=self.name,
        )

    def select_channels(self, indices: List[int]) -> "MultivariateTimeSeries":
        """Return a copy keeping only the given channel indices."""
        return MultivariateTimeSeries(
            values=self.values[:, indices],
            timestamps=self.timestamps,
            channel_names=[self.channel_names[i] for i in indices],
            covariates=self.covariates,
            name=self.name,
        )

    def summary(self) -> Dict[str, object]:
        """Small dictionary of dataset statistics (mirrors paper Table II)."""
        return {
            "name": self.name,
            "variables": self.n_channels,
            "timestamps": self.n_timestamps,
            "has_future_covariates": self.has_covariates,
        }
