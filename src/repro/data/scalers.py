"""Feature scaling fitted on the training split only."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Per-channel standardisation ``(x - mean) / std``."""

    def __init__(self, eps: float = 1e-8) -> None:
        self.eps = eps
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"expected a [T, C] array, got shape {values.shape}")
        self.mean_ = values.mean(axis=0)
        self.std_ = values.std(axis=0)
        self.std_ = np.where(self.std_ < self.eps, 1.0, self.std_)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return ((np.asarray(values, dtype=np.float64) - self.mean_) / self.std_).astype(np.float32)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original scale, in float64.

        Unlike :meth:`transform` (which feeds float32 model inputs), the
        inverse is kept at float64: original-scale metrics on
        large-magnitude channels (e.g. ~1e8 traffic counts) would lose
        whole units to a float32 downcast.
        """
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * self.std_ + self.mean_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def _check_fitted(self) -> None:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before use")


class MinMaxScaler:
    """Per-channel scaling into ``[0, 1]``."""

    def __init__(self, eps: float = 1e-8) -> None:
        self.eps = eps
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"expected a [T, C] array, got shape {values.shape}")
        self.min_ = values.min(axis=0)
        spread = values.max(axis=0) - self.min_
        self.range_ = np.where(spread < self.eps, 1.0, spread)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return ((np.asarray(values, dtype=np.float64) - self.min_) / self.range_).astype(np.float32)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original range, in float64 (see
        :meth:`StandardScaler.inverse_transform`)."""
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * self.range_ + self.min_

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def _check_fitted(self) -> None:
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("scaler must be fitted before use")
