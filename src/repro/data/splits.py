"""Chronological train / validation / test splits."""

from __future__ import annotations

from typing import Tuple

from .containers import MultivariateTimeSeries

__all__ = ["chronological_split"]


def chronological_split(
    series: MultivariateTimeSeries,
    ratios: Tuple[float, float, float],
    context_length: int = 0,
) -> Tuple[MultivariateTimeSeries, MultivariateTimeSeries, MultivariateTimeSeries]:
    """Split a series chronologically into train / validation / test.

    Parameters
    ----------
    series:
        the full series.
    ratios:
        fractions for (train, validation, test); must sum to 1 (paper uses
        6:2:2 for ETT and 7:1:2 for the remaining datasets).
    context_length:
        number of timestamps of overlap prepended to the validation and test
        portions so the first forecast windows have full history (standard
        practice in the long-term-forecasting literature).
    """
    total = sum(ratios)
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"split ratios must sum to 1, got {ratios} (sum {total})")
    if any(r <= 0 for r in ratios):
        raise ValueError(f"all split ratios must be positive, got {ratios}")
    length = len(series)
    train_end = int(length * ratios[0])
    val_end = int(length * (ratios[0] + ratios[1]))
    if train_end <= context_length or val_end <= train_end:
        raise ValueError(
            f"series of length {length} is too short for ratios {ratios} "
            f"with context_length {context_length}"
        )
    train = series.slice(0, train_end)
    validation = series.slice(max(train_end - context_length, 0), val_end)
    test = series.slice(max(val_end - context_length, 0), length)
    return train, validation, test
