"""Incremental (streaming) feature scaling.

:class:`RollingScaler` is the online counterpart of
:class:`~repro.data.scalers.StandardScaler`: it maintains per-channel mean
and (population) standard deviation with Welford's algorithm, so statistics
can be grown one observation — or one chunk — at a time without keeping the
history around.  The streaming serving layer uses one instance per tenant,
which means a brand-new tenant never needs an offline ``fit`` pass before
its first forecast.

After ingesting the same data, ``mean_`` / ``std_`` agree with
``StandardScaler.fit`` to float64 round-off (the batch formula and the
incremental recurrence accumulate in different orders), and the
``transform`` / ``inverse_transform`` dtype contract is identical: float32
out of ``transform`` (model input), float64 out of ``inverse_transform``
(original-scale metrics).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .scalers import StandardScaler

__all__ = ["RollingScaler"]


class RollingScaler:
    """Per-channel standardisation with incrementally maintained statistics.

    Chunks are folded in with the parallel variant of Welford's update
    (Chan et al.), which is numerically stable and costs one vectorised
    pass per chunk — no stored history, no re-fit.

    Statistics follow :class:`StandardScaler` exactly: population standard
    deviation (``ddof=0``) with near-zero channels floored to 1.0 via
    ``eps`` so constant channels never divide by zero.
    """

    def __init__(self, eps: float = 1e-8) -> None:
        self.eps = eps
        self._count: int = 0
        self._mean: Optional[np.ndarray] = None    # [C] float64 running mean
        self._m2: Optional[np.ndarray] = None      # [C] float64 sum of squared deviations

    # ------------------------------------------------------------------ #
    @property
    def n_seen(self) -> int:
        """Number of time steps folded into the statistics so far."""
        return self._count

    @property
    def n_channels(self) -> Optional[int]:
        return None if self._mean is None else int(self._mean.shape[0])

    @property
    def mean_(self) -> np.ndarray:
        self._check_fitted()
        return self._mean.copy()

    @property
    def std_(self) -> np.ndarray:
        """Population std with the same ``eps`` flooring as ``StandardScaler``."""
        self._check_fitted()
        std = np.sqrt(self._m2 / self._count)
        return np.where(std < self.eps, 1.0, std)

    # ------------------------------------------------------------------ #
    def update(self, values: np.ndarray) -> "RollingScaler":
        """Fold a ``[T, C]`` chunk (or a single ``[C]`` row) into the stats."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values[None, :]
        if values.ndim != 2:
            raise ValueError(f"expected a [T, C] array, got shape {values.shape}")
        if len(values) == 0:
            return self
        if self._mean is None:
            self._mean = np.zeros(values.shape[1], dtype=np.float64)
            self._m2 = np.zeros(values.shape[1], dtype=np.float64)
        elif values.shape[1] != self._mean.shape[0]:
            raise ValueError(
                f"expected {self._mean.shape[0]} channels, got {values.shape[1]}"
            )
        chunk_count = len(values)
        chunk_mean = values.mean(axis=0)
        chunk_m2 = ((values - chunk_mean) ** 2).sum(axis=0)
        total = self._count + chunk_count
        delta = chunk_mean - self._mean
        self._mean = self._mean + delta * (chunk_count / total)
        self._m2 = self._m2 + chunk_m2 + delta**2 * (self._count * chunk_count / total)
        self._count = total
        return self

    # ------------------------------------------------------------------ #
    def transform(self, values: np.ndarray) -> np.ndarray:
        self._check_fitted()
        return ((np.asarray(values, dtype=np.float64) - self._mean) / self.std_).astype(
            np.float32
        )

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Original-scale values in float64 (matching ``StandardScaler``)."""
        self._check_fitted()
        return np.asarray(values, dtype=np.float64) * self.std_ + self._mean

    def to_state(self) -> dict:
        """Serialisable snapshot of the exact Welford accumulators.

        Captures ``count`` / ``mean`` / ``M2`` (not the derived ``std_``),
        so a restored scaler continues folding in chunks from precisely
        where this one stopped — statistics after restore+update are
        bit-identical to never having snapshotted at all.
        """
        return {
            "eps": float(self.eps),
            "count": int(self._count),
            "mean": None if self._mean is None else self._mean.copy(),
            "m2": None if self._m2 is None else self._m2.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RollingScaler":
        """Rebuild a scaler from :meth:`to_state` output."""
        scaler = cls(eps=state["eps"])
        scaler._count = int(state["count"])
        if state["mean"] is not None:
            scaler._mean = np.asarray(state["mean"], dtype=np.float64).copy()
            scaler._m2 = np.asarray(state["m2"], dtype=np.float64).copy()
        return scaler

    def to_standard_scaler(self) -> StandardScaler:
        """Freeze the current statistics into an offline ``StandardScaler``."""
        self._check_fitted()
        frozen = StandardScaler(eps=self.eps)
        frozen.mean_ = self.mean_
        frozen.std_ = self.std_
        return frozen

    def _check_fitted(self) -> None:
        if self._count == 0:
            raise RuntimeError("RollingScaler has seen no data yet")
