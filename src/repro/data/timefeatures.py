"""Temporal feature encodings (the paper's *implicit* weak labels).

The paper augments datasets that lack explicit future covariates with
date-derived features — hour of day, day of week, day of month, month of
year — "in a similar way to the time encoding in Informer" (Section IV-B1).
Two encodings are provided:

* :func:`normalized_time_features` — continuous values scaled to
  ``[-0.5, 0.5]`` (Informer style), used as numerical covariates;
* :func:`categorical_time_features` — raw integer codes, used by the
  Covariate Encoder's embedding path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "TIME_FEATURE_NAMES",
    "TIME_FEATURE_CARDINALITIES",
    "make_timestamps",
    "normalized_time_features",
    "categorical_time_features",
    "is_weekend",
]

TIME_FEATURE_NAMES: List[str] = ["hour_of_day", "day_of_week", "day_of_month", "month_of_year"]

TIME_FEATURE_CARDINALITIES: Dict[str, int] = {
    "hour_of_day": 24,
    "day_of_week": 7,
    "day_of_month": 31,
    "month_of_year": 12,
}


def make_timestamps(length: int, freq_minutes: int, start: str = "2016-07-01T00:00") -> np.ndarray:
    """Return ``length`` equally spaced ``datetime64[m]`` timestamps."""
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if freq_minutes <= 0:
        raise ValueError(f"freq_minutes must be positive, got {freq_minutes}")
    origin = np.datetime64(start, "m")
    offsets = np.arange(length, dtype=np.int64) * freq_minutes
    return origin + offsets.astype("timedelta64[m]")


def _calendar_fields(timestamps: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    ts = timestamps.astype("datetime64[m]")
    minutes = ts.astype("int64")
    hour = (minutes // 60) % 24
    days = ts.astype("datetime64[D]")
    # 1970-01-01 is a Thursday; shift so Monday == 0 like pandas.
    day_of_week = (days.astype("int64") + 3) % 7
    months = ts.astype("datetime64[M]")
    day_of_month = (days - months.astype("datetime64[D]")).astype("int64")
    month_of_year = months.astype("int64") % 12
    return hour, day_of_week, day_of_month, month_of_year


def categorical_time_features(timestamps: np.ndarray) -> np.ndarray:
    """Integer codes ``[T, 4]``: hour, weekday, day-of-month (0-based), month (0-based)."""
    hour, dow, dom, month = _calendar_fields(timestamps)
    return np.stack([hour, dow, dom, month], axis=-1).astype(np.int64)


def normalized_time_features(timestamps: np.ndarray) -> np.ndarray:
    """Continuous encodings in ``[-0.5, 0.5]`` of shape ``[T, 4]``."""
    hour, dow, dom, month = _calendar_fields(timestamps)
    features = np.stack(
        [
            hour / 23.0 - 0.5,
            dow / 6.0 - 0.5,
            dom / 30.0 - 0.5,
            month / 11.0 - 0.5,
        ],
        axis=-1,
    )
    return features.astype(np.float32)


def is_weekend(timestamps: np.ndarray) -> np.ndarray:
    """Boolean array marking Saturdays and Sundays."""
    _, dow, _, _ = _calendar_fields(timestamps)
    return dow >= 5
