"""Sliding-window forecasting samples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .containers import MultivariateTimeSeries

__all__ = ["WindowSample", "SlidingWindowDataset"]


def _gather_windows(array: np.ndarray, starts: np.ndarray, length: int) -> np.ndarray:
    """Gather ``[len(starts), length, channels]`` windows from ``[T, channels]``.

    Built on :func:`numpy.lib.stride_tricks.sliding_window_view`: the view is
    zero-copy, and the fancy index over window starts materialises only the
    requested windows in one vectorised gather (no per-sample Python loop).
    """
    view = sliding_window_view(array, length, axis=0)      # [T-length+1, C, length]
    # Transpose the (zero-copy) view before the fancy index: advanced
    # indexing then writes the [n, length, C] result C-contiguously in a
    # single gather, instead of copying [n, C, length] and copying again to
    # make the transpose contiguous.
    return view.transpose(0, 2, 1)[starts]


@dataclass
class WindowSample:
    """One (history, future) pair with aligned future covariates."""

    x: np.ndarray                       # [input_length, C]
    y: np.ndarray                       # [horizon, C]
    future_numerical: Optional[np.ndarray]    # [horizon, cn]
    future_categorical: Optional[np.ndarray]  # [horizon, ct]


class SlidingWindowDataset:
    """Index a :class:`MultivariateTimeSeries` into forecasting windows.

    Window ``i`` covers history ``[i, i + input_length)`` and forecast target
    ``[i + input_length, i + input_length + horizon)``.  Future covariates,
    when present on the series, are sliced over the *forecast* range — they
    represent information known ahead of time (weather forecasts, calendar).
    """

    def __init__(
        self,
        series: MultivariateTimeSeries,
        input_length: int,
        horizon: int,
        stride: int = 1,
    ) -> None:
        if input_length < 1 or horizon < 1:
            raise ValueError("input_length and horizon must be positive")
        if stride < 1:
            raise ValueError("stride must be positive")
        available = len(series) - input_length - horizon + 1
        if available < 1:
            raise ValueError(
                f"series of length {len(series)} is too short for "
                f"input_length={input_length} and horizon={horizon}"
            )
        self.series = series
        self.input_length = input_length
        self.horizon = horizon
        self.stride = stride
        self._n_windows = 1 + (available - 1) // stride

    def __len__(self) -> int:
        return self._n_windows

    @property
    def n_channels(self) -> int:
        return self.series.n_channels

    def __getitem__(self, index: int) -> WindowSample:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"window index {index} out of range [0, {len(self)})")
        start = index * self.stride
        split = start + self.input_length
        end = split + self.horizon
        values = self.series.values
        future_numerical = None
        future_categorical = None
        if self.series.covariates is not None:
            future_numerical = self.series.covariates.numerical[split:end]
            future_categorical = self.series.covariates.categorical[split:end]
        return WindowSample(
            x=values[start:split],
            y=values[split:end],
            future_numerical=future_numerical,
            future_categorical=future_categorical,
        )

    def _window_starts(self, indices: Optional[np.ndarray]) -> np.ndarray:
        """Validate window indices and map them to series start offsets."""
        n = len(self)
        if indices is None:
            return np.arange(n, dtype=np.int64) * self.stride
        idx = np.asarray(indices, dtype=np.int64).reshape(-1)
        idx = np.where(idx < 0, idx + n, idx)
        out_of_range = (idx < 0) | (idx >= n)
        if out_of_range.any():
            bad = int(np.asarray(indices).reshape(-1)[int(np.argmax(out_of_range))])
            raise IndexError(f"window index {bad} out of range [0, {n})")
        return idx * self.stride

    def as_arrays(self, indices: Optional[np.ndarray] = None) -> Dict[str, Optional[np.ndarray]]:
        """Materialise windows (all, or the given indices) as stacked arrays.

        This is the data hot path — every ``DataLoader`` batch and the
        serving backfill mode go through it — so windows are gathered with a
        vectorised ``sliding_window_view`` fast path rather than a per-sample
        Python loop.  The output is bit-identical to indexing each
        :class:`WindowSample` and stacking (see ``_as_arrays_loop``).
        """
        starts = self._window_starts(indices)
        splits = starts + self.input_length
        values = self.series.values
        batch: Dict[str, Optional[np.ndarray]] = {
            "x": _gather_windows(values, starts, self.input_length),
            "y": _gather_windows(values, splits, self.horizon),
            "future_numerical": None,
            "future_categorical": None,
        }
        covariates = self.series.covariates
        if covariates is not None:
            batch["future_numerical"] = _gather_windows(covariates.numerical, splits, self.horizon)
            batch["future_categorical"] = _gather_windows(covariates.categorical, splits, self.horizon)
        return batch

    def _as_arrays_loop(self, indices: Optional[np.ndarray] = None) -> Dict[str, Optional[np.ndarray]]:
        """Reference per-sample implementation of :meth:`as_arrays`.

        Kept for regression tests and the serving-throughput benchmark,
        which assert the vectorised fast path matches it exactly.
        """
        if indices is None:
            indices = np.arange(len(self))
        samples = [self[int(i)] for i in indices]
        batch: Dict[str, Optional[np.ndarray]] = {
            "x": np.stack([s.x for s in samples]),
            "y": np.stack([s.y for s in samples]),
            "future_numerical": None,
            "future_categorical": None,
        }
        if samples and samples[0].future_numerical is not None:
            batch["future_numerical"] = np.stack([s.future_numerical for s in samples])
            batch["future_categorical"] = np.stack([s.future_categorical for s in samples])
        return batch
