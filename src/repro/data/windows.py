"""Sliding-window forecasting samples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .containers import MultivariateTimeSeries

__all__ = ["WindowSample", "SlidingWindowDataset"]


@dataclass
class WindowSample:
    """One (history, future) pair with aligned future covariates."""

    x: np.ndarray                       # [input_length, C]
    y: np.ndarray                       # [horizon, C]
    future_numerical: Optional[np.ndarray]    # [horizon, cn]
    future_categorical: Optional[np.ndarray]  # [horizon, ct]


class SlidingWindowDataset:
    """Index a :class:`MultivariateTimeSeries` into forecasting windows.

    Window ``i`` covers history ``[i, i + input_length)`` and forecast target
    ``[i + input_length, i + input_length + horizon)``.  Future covariates,
    when present on the series, are sliced over the *forecast* range — they
    represent information known ahead of time (weather forecasts, calendar).
    """

    def __init__(
        self,
        series: MultivariateTimeSeries,
        input_length: int,
        horizon: int,
        stride: int = 1,
    ) -> None:
        if input_length < 1 or horizon < 1:
            raise ValueError("input_length and horizon must be positive")
        if stride < 1:
            raise ValueError("stride must be positive")
        available = len(series) - input_length - horizon + 1
        if available < 1:
            raise ValueError(
                f"series of length {len(series)} is too short for "
                f"input_length={input_length} and horizon={horizon}"
            )
        self.series = series
        self.input_length = input_length
        self.horizon = horizon
        self.stride = stride
        self._n_windows = 1 + (available - 1) // stride

    def __len__(self) -> int:
        return self._n_windows

    @property
    def n_channels(self) -> int:
        return self.series.n_channels

    def __getitem__(self, index: int) -> WindowSample:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"window index {index} out of range [0, {len(self)})")
        start = index * self.stride
        split = start + self.input_length
        end = split + self.horizon
        values = self.series.values
        future_numerical = None
        future_categorical = None
        if self.series.covariates is not None:
            future_numerical = self.series.covariates.numerical[split:end]
            future_categorical = self.series.covariates.categorical[split:end]
        return WindowSample(
            x=values[start:split],
            y=values[split:end],
            future_numerical=future_numerical,
            future_categorical=future_categorical,
        )

    def as_arrays(self, indices: Optional[np.ndarray] = None) -> Dict[str, Optional[np.ndarray]]:
        """Materialise windows (all, or the given indices) as stacked arrays."""
        if indices is None:
            indices = np.arange(len(self))
        samples = [self[int(i)] for i in indices]
        batch: Dict[str, Optional[np.ndarray]] = {
            "x": np.stack([s.x for s in samples]),
            "y": np.stack([s.y for s in samples]),
            "future_numerical": None,
            "future_categorical": None,
        }
        if samples and samples[0].future_numerical is not None:
            batch["future_numerical"] = np.stack([s.future_numerical for s in samples])
            batch["future_categorical"] = np.stack([s.future_categorical for s in samples])
        return batch
