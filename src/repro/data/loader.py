"""Mini-batch iteration over a sliding-window dataset."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from .windows import SlidingWindowDataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over mini-batches of forecasting windows.

    Each batch is a dictionary with keys ``x`` (``[b, T, C]``), ``y``
    (``[b, L, C]``) and, when the underlying series carries future
    covariates, ``future_numerical`` (``[b, L, cn]``) and
    ``future_categorical`` (``[b, L, ct]``).
    """

    def __init__(
        self,
        dataset: SlidingWindowDataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Dict[str, Optional[np.ndarray]]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            chunk = indices[start : start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            yield self.dataset.as_arrays(chunk)
