"""End-to-end data preparation pipeline for forecasting experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .containers import FutureCovariates, MultivariateTimeSeries
from .datasets import DATASET_SPECS, load_dataset
from .loader import DataLoader
from .scalers import StandardScaler
from .splits import chronological_split
from .windows import SlidingWindowDataset

__all__ = ["ForecastingData", "prepare_forecasting_data"]


@dataclass
class ForecastingData:
    """Everything a trainer needs for one dataset / horizon configuration."""

    name: str
    input_length: int
    horizon: int
    train: SlidingWindowDataset
    validation: SlidingWindowDataset
    test: SlidingWindowDataset
    scaler: StandardScaler
    covariate_numerical_dim: int
    covariate_categorical_cardinalities: Tuple[int, ...]
    n_channels: int

    def loaders(
        self,
        batch_size: int,
        shuffle_train: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[DataLoader, DataLoader, DataLoader]:
        """Build train / validation / test loaders."""
        generator = rng if rng is not None else np.random.default_rng(0)
        return (
            DataLoader(self.train, batch_size, shuffle=shuffle_train, rng=generator),
            DataLoader(self.validation, batch_size, shuffle=False),
            DataLoader(self.test, batch_size, shuffle=False),
        )


def _scale_series(series: MultivariateTimeSeries, scaler: StandardScaler) -> MultivariateTimeSeries:
    return MultivariateTimeSeries(
        values=scaler.transform(series.values),
        timestamps=series.timestamps,
        channel_names=list(series.channel_names),
        covariates=series.covariates,
        name=series.name,
    )


def _scale_covariates(series: MultivariateTimeSeries) -> MultivariateTimeSeries:
    """Return a series with standardised numerical covariates (fit on the full range).

    Covariates are forecasts/calendar features known ahead of time, so using
    their global statistics does not leak target information.  The caller's
    series is left untouched: scaling a copy keeps
    ``prepare_forecasting_data(series=...)`` idempotent, where mutating
    ``series.covariates.numerical`` in place would re-scale already-scaled
    covariates on a second call over the same series object.
    """
    if series.covariates is None or series.covariates.numerical.shape[1] == 0:
        return series
    covariates = series.covariates
    scaled = FutureCovariates(
        numerical=StandardScaler().fit_transform(covariates.numerical),
        categorical=covariates.categorical,
        numerical_names=list(covariates.numerical_names),
        categorical_names=list(covariates.categorical_names),
        cardinalities=list(covariates.cardinalities),
    )
    return MultivariateTimeSeries(
        values=series.values,
        timestamps=series.timestamps,
        channel_names=list(series.channel_names),
        covariates=scaled,
        name=series.name,
    )


def prepare_forecasting_data(
    dataset: str,
    input_length: int,
    horizon: int,
    n_timestamps: Optional[int] = None,
    n_channels: Optional[int] = None,
    stride: int = 1,
    seed: int = 2021,
    include_covariates: bool = True,
    series: Optional[MultivariateTimeSeries] = None,
) -> ForecastingData:
    """Load (or accept) a series and produce scaled, windowed splits.

    The scaler is fitted on the training split only, as in the paper's data
    loading protocol inherited from DLinear.
    """
    if series is None:
        series = load_dataset(
            dataset,
            n_timestamps=n_timestamps,
            n_channels=n_channels,
            seed=seed,
            include_covariates=include_covariates,
        )
    spec = DATASET_SPECS.get(series.name)
    ratios = spec.split_ratio if spec is not None else (0.7, 0.1, 0.2)
    series = _scale_covariates(series)
    context = input_length
    train_raw, val_raw, test_raw = chronological_split(series, ratios, context_length=context)
    scaler = StandardScaler().fit(train_raw.values)
    train = _scale_series(train_raw, scaler)
    validation = _scale_series(val_raw, scaler)
    test = _scale_series(test_raw, scaler)

    covariate_dim = 0
    cardinalities: Tuple[int, ...] = ()
    if series.covariates is not None:
        covariate_dim = series.covariates.n_numerical
        cardinalities = tuple(series.covariates.cardinalities)

    return ForecastingData(
        name=series.name,
        input_length=input_length,
        horizon=horizon,
        train=SlidingWindowDataset(train, input_length, horizon, stride=stride),
        validation=SlidingWindowDataset(validation, input_length, horizon, stride=stride),
        test=SlidingWindowDataset(test, input_length, horizon, stride=stride),
        scaler=scaler,
        covariate_numerical_dim=covariate_dim,
        covariate_categorical_cardinalities=cardinalities,
        n_channels=series.n_channels,
    )
