"""Building blocks for synthetic multivariate time series.

The real benchmark CSVs cannot be downloaded in this offline environment, so
each dataset is synthesised from interpretable components — trend, daily /
weekly / yearly seasonality, autoregressive noise, regime shifts — calibrated
to the qualitative character of the original data (see
:mod:`repro.data.datasets`).  Every generator is deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "linear_trend",
    "random_walk_trend",
    "seasonal_component",
    "multi_harmonic",
    "ar1_noise",
    "regime_shifts",
    "rush_hour_profile",
    "mixture_series",
]


def linear_trend(length: int, slope: float, intercept: float = 0.0) -> np.ndarray:
    """Straight-line trend."""
    return intercept + slope * np.arange(length, dtype=np.float64)


def random_walk_trend(length: int, scale: float, rng: np.random.Generator) -> np.ndarray:
    """Smooth stochastic trend (integrated Gaussian noise)."""
    return np.cumsum(rng.normal(0.0, scale, size=length))


def seasonal_component(
    length: int,
    period: float,
    amplitude: float = 1.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Single sinusoid with the given period (in samples)."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    t = np.arange(length, dtype=np.float64)
    return amplitude * np.sin(2.0 * np.pi * t / period + phase)


def multi_harmonic(
    length: int,
    period: float,
    amplitudes: np.ndarray,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Sum of harmonics of a base period with random phases.

    Produces sharper, more realistic daily profiles than a single sinusoid.
    """
    generator = rng if rng is not None else np.random.default_rng()
    t = np.arange(length, dtype=np.float64)
    series = np.zeros(length, dtype=np.float64)
    for order, amplitude in enumerate(np.atleast_1d(amplitudes), start=1):
        phase = generator.uniform(0, 2 * np.pi)
        series += amplitude * np.sin(2.0 * np.pi * order * t / period + phase)
    return series


def ar1_noise(length: int, phi: float, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """AR(1) noise ``x_t = phi * x_{t-1} + eps_t``."""
    if not -1.0 < phi < 1.0:
        raise ValueError(f"phi must be in (-1, 1) for stationarity, got {phi}")
    eps = rng.normal(0.0, sigma, size=length)
    noise = np.empty(length, dtype=np.float64)
    noise[0] = eps[0]
    for t in range(1, length):
        noise[t] = phi * noise[t - 1] + eps[t]
    return noise


def regime_shifts(
    length: int,
    n_shifts: int,
    magnitude: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Piecewise-constant level shifts at random change points."""
    series = np.zeros(length, dtype=np.float64)
    if n_shifts <= 0:
        return series
    points = np.sort(rng.integers(1, length, size=n_shifts))
    level = 0.0
    previous = 0
    for point in points:
        series[previous:point] = level
        level += rng.normal(0.0, magnitude)
        previous = point
    series[previous:] = level
    return series


def rush_hour_profile(length: int, samples_per_day: int, weekend_mask: np.ndarray) -> np.ndarray:
    """Traffic-style double-peak daily profile, damped on weekends.

    The profile has morning (~8h) and evening (~18h) peaks; weekends keep a
    single flatter midday bump, matching loop-detector occupancy data.
    """
    hours = (np.arange(length) % samples_per_day) / samples_per_day * 24.0
    morning = np.exp(-0.5 * ((hours - 8.0) / 1.5) ** 2)
    evening = np.exp(-0.5 * ((hours - 18.0) / 2.0) ** 2)
    midday = np.exp(-0.5 * ((hours - 13.0) / 3.5) ** 2)
    weekday_profile = morning + evening
    weekend_profile = 0.6 * midday
    weekend = np.asarray(weekend_mask, dtype=bool)
    return np.where(weekend, weekend_profile, weekday_profile)


def mixture_series(
    length: int,
    samples_per_day: int,
    rng: np.random.Generator,
    daily_amplitude: float = 1.0,
    weekly_amplitude: float = 0.3,
    trend_scale: float = 0.002,
    noise_sigma: float = 0.3,
    noise_phi: float = 0.7,
    n_regime_shifts: int = 0,
    regime_magnitude: float = 0.5,
) -> np.ndarray:
    """General-purpose channel generator combining all components."""
    series = random_walk_trend(length, trend_scale, rng)
    series += multi_harmonic(length, samples_per_day, np.array([daily_amplitude, daily_amplitude * 0.4]), rng)
    series += seasonal_component(length, samples_per_day * 7, weekly_amplitude, rng.uniform(0, 2 * np.pi))
    series += ar1_noise(length, noise_phi, noise_sigma, rng)
    if n_regime_shifts:
        series += regime_shifts(length, n_regime_shifts, regime_magnitude, rng)
    return series
