"""Future-covariate schemas and builders (paper Table IV + Section IV-B1).

Two datasets in the paper ship *explicit* future covariates:

* **Electricity-Price** — grid-dispatch forecasts (load, wind, photovoltaic),
  per-location weather forecasts and a holiday flag (61 fields);
* **Cycle** — Seattle Fremont-bridge bicycle counts with weather-forecast
  covariates and a weekend flag (22 fields).

Datasets without explicit covariates are enriched with *implicit* temporal
features (hour of day, day of week, day of month, month of year), following
the paper's weak-data-enriching recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .containers import FutureCovariates
from .timefeatures import (
    TIME_FEATURE_CARDINALITIES,
    TIME_FEATURE_NAMES,
    categorical_time_features,
    is_weekend,
    normalized_time_features,
)

__all__ = [
    "CovariateField",
    "CovariateSchema",
    "ELECTRICITY_PRICE_SCHEMA",
    "CYCLE_SCHEMA",
    "implicit_temporal_covariates",
]


@dataclass(frozen=True)
class CovariateField:
    """One future-covariate field: a name, a width and a type."""

    name: str
    width: int
    kind: str  # "numerical" or "categorical"
    cardinality: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("numerical", "categorical"):
            raise ValueError(f"unknown covariate kind {self.kind!r}")
        if self.kind == "categorical" and self.cardinality < 2:
            raise ValueError(f"categorical field {self.name!r} needs a cardinality >= 2")
        if self.width < 1:
            raise ValueError(f"field {self.name!r} must have positive width")


@dataclass(frozen=True)
class CovariateSchema:
    """Ordered collection of covariate fields for one dataset."""

    dataset: str
    fields: List[CovariateField] = field(default_factory=list)

    @property
    def n_numerical(self) -> int:
        return sum(f.width for f in self.fields if f.kind == "numerical")

    @property
    def n_categorical(self) -> int:
        return sum(f.width for f in self.fields if f.kind == "categorical")

    @property
    def n_total(self) -> int:
        return self.n_numerical + self.n_categorical

    def numerical_names(self) -> List[str]:
        names: List[str] = []
        for f in self.fields:
            if f.kind != "numerical":
                continue
            if f.width == 1:
                names.append(f.name)
            else:
                names.extend(f"{f.name}_{i}" for i in range(f.width))
        return names

    def categorical_names(self) -> List[str]:
        names: List[str] = []
        for f in self.fields:
            if f.kind != "categorical":
                continue
            if f.width == 1:
                names.append(f.name)
            else:
                names.extend(f"{f.name}_{i}" for i in range(f.width))
        return names

    def cardinalities(self) -> List[int]:
        out: List[int] = []
        for f in self.fields:
            if f.kind == "categorical":
                out.extend([f.cardinality] * f.width)
        return out


# Paper Table IV, Electricity-Price rows (61 future covariate fields).
ELECTRICITY_PRICE_SCHEMA = CovariateSchema(
    dataset="electricity_price",
    fields=[
        CovariateField("unified_load_forecast_mw", 1, "numerical"),
        CovariateField("outgoing_forecast_mw", 1, "numerical"),
        CovariateField("wind_plus_solar_projection", 1, "numerical"),
        CovariateField("wind_power_projection", 1, "numerical"),
        CovariateField("photovoltaic_forecast", 1, "numerical"),
        CovariateField("location_temperature_extremes", 22, "numerical"),
        CovariateField("location_wind_rating", 11, "numerical"),
        CovariateField("location_wind_direction", 11, "numerical"),
        CovariateField("location_weather_condition", 11, "categorical", cardinality=6),
        CovariateField("holiday", 1, "categorical", cardinality=2),
    ],
)

# Paper Table IV, Cycle rows (22 future covariate fields).
CYCLE_SCHEMA = CovariateSchema(
    dataset="cycle",
    fields=[
        CovariateField("temperature", 3, "numerical"),
        CovariateField("dew_point", 3, "numerical"),
        CovariateField("humidity", 3, "numerical"),
        CovariateField("sea_level_pressure", 3, "numerical"),
        CovariateField("visibility_miles", 3, "numerical"),
        CovariateField("wind_speed_and_direction", 3, "numerical"),
        CovariateField("max_gust_speed", 1, "numerical"),
        CovariateField("precipitation", 1, "numerical"),
        CovariateField("cloud_cover", 1, "numerical"),
        CovariateField("weekend", 1, "categorical", cardinality=2),
    ],
)


def implicit_temporal_covariates(timestamps: np.ndarray) -> FutureCovariates:
    """Build the implicit weak labels used when no explicit covariates exist.

    The numerical part holds Informer-style normalised encodings; the
    categorical part holds the raw integer codes so that the Covariate
    Encoder's embedding path is exercised as in the paper.
    """
    numerical = normalized_time_features(timestamps)
    categorical = categorical_time_features(timestamps)
    weekend = is_weekend(timestamps).astype(np.int64)[:, None]
    categorical = np.concatenate([categorical, weekend], axis=1)
    cardinalities = [TIME_FEATURE_CARDINALITIES[name] for name in TIME_FEATURE_NAMES] + [2]
    return FutureCovariates(
        numerical=numerical,
        categorical=categorical,
        numerical_names=[f"{name}_norm" for name in TIME_FEATURE_NAMES],
        categorical_names=list(TIME_FEATURE_NAMES) + ["weekend"],
        cardinalities=cardinalities,
    )
