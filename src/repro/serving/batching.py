"""Request handles and micro-batch coalescing for the serving layer.

The service accepts one request at a time (:meth:`ForecastService.submit`)
but the model runs most efficiently over batches, so pending requests are
queued and coalesced into a single padded forward pass.  This module holds
the pieces that are independent of any model:

* :class:`Forecast` — the future-like handle returned by ``submit``;
* :func:`pad_history` — left-pads (or truncates) a single ``[T, C]``
  history to the model's ``input_length``;
* :func:`coalesce` — stacks compatible pending requests into rectangular
  arrays, grouping requests with and without covariates separately so each
  group maps onto exactly one forward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.plan import bucket_for

__all__ = [
    "Forecast",
    "ForecastRequest",
    "pad_history",
    "group_requests",
    "BatchAssembler",
    "coalesce",
]


class Forecast:
    """Deferred result of a submitted forecast request.

    The value materialises when the owning service flushes the micro-batch
    containing the request; :meth:`result` triggers that flush on demand, so
    callers can treat the handle as blocking without managing the queue.
    If the request's forward pass failed, :meth:`result` re-raises that
    error on the submitting caller rather than on whichever caller happened
    to trigger the flush.
    """

    __slots__ = ("_service", "_value", "_error")

    def __init__(self, service) -> None:
        self._service = service
        self._value: Optional[np.ndarray] = None
        self._error: Optional[Exception] = None

    def done(self) -> bool:
        """Whether the forecast has been computed (or failed)."""
        return self._value is not None or self._error is not None

    def result(self) -> np.ndarray:
        """The ``[horizon, channels]`` forecast; flushes the queue if needed."""
        if not self.done():
            self._service.flush()
        if self._error is not None:
            raise self._error
        if self._value is None:  # pragma: no cover - defensive
            raise RuntimeError("forecast not resolved by service flush")
        return self._value

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value

    def _fail(self, error: Exception) -> None:
        self._error = error


@dataclass
class ForecastRequest:
    """One queued request: a padded history plus optional future covariates."""

    history: np.ndarray                        # [input_length, C], already padded
    observed_length: int                       # un-padded history length
    future_numerical: Optional[np.ndarray]     # [horizon, cn] or None
    future_categorical: Optional[np.ndarray]   # [horizon, ct] or None
    forecast: Forecast
    submitted_at: float = 0.0                  # obs clock at submit (always stamped)
    priority: str = "batch"                    # admission class; see serving.admission
    deadline: Optional[float] = None           # absolute obs-clock deadline, or None

    @property
    def has_covariates(self) -> bool:
        return self.future_numerical is not None or self.future_categorical is not None


def pad_history(
    history: np.ndarray,
    input_length: int,
    n_channels: int,
    pad_mode: str = "edge",
) -> Tuple[np.ndarray, int]:
    """Normalise a single request history to ``[input_length, n_channels]``.

    Histories longer than ``input_length`` keep their most recent steps;
    shorter ones are left-padded so every queued request shares one
    rectangular shape and the whole micro-batch runs as one forward pass.
    Returns the padded history and the number of observed (un-padded) steps.
    """
    history = np.asarray(history, dtype=np.float32)
    if history.ndim == 1:
        history = history[:, None]
    if history.ndim != 2:
        raise ValueError(f"history must be [time, channels], got shape {history.shape}")
    if history.shape[1] != n_channels:
        raise ValueError(f"expected {n_channels} channels, got {history.shape[1]}")
    observed = history.shape[0]
    if observed == 0:
        raise ValueError("history must contain at least one time step")
    if observed >= input_length:
        return history[-input_length:], input_length
    if pad_mode == "edge":
        pad = np.repeat(history[:1], input_length - observed, axis=0)
    elif pad_mode == "zeros":
        pad = np.zeros((input_length - observed, n_channels), dtype=np.float32)
    else:
        raise ValueError(f"unknown pad_mode {pad_mode!r}; use 'edge' or 'zeros'")
    return np.concatenate([pad, history], axis=0), observed


def _signature(request: ForecastRequest) -> Tuple:
    """Covariate signature; only identically-shaped requests can share a pass."""
    return (
        None if request.future_numerical is None else request.future_numerical.shape,
        None if request.future_categorical is None else request.future_categorical.shape,
    )


def group_requests(requests: Sequence[ForecastRequest]) -> List[List[ForecastRequest]]:
    """Split pending requests into per-forward-pass groups.

    Requests can only share a forward pass when their covariate signatures
    match (the covariate encoder needs full rectangular ``[b, L, c]``
    blocks) — typically one group with covariates and one without.
    Submission order is preserved within a group.
    """
    by_signature: Dict[Tuple, List[ForecastRequest]] = {}
    for request in requests:
        by_signature.setdefault(_signature(request), []).append(request)
    return list(by_signature.values())


class BatchAssembler:
    """Assemble request groups into padded batches over reusable scratch.

    ``np.stack`` per flush allocated a fresh batch block (plus per-row
    copies) every time; the assembler instead keeps one scratch buffer per
    input kind — history, numerical covariates, categorical covariates —
    already in the model's dtype, and copies each request's rows straight
    in.  Steady-state flushing therefore performs no batch-sized
    allocations and no dtype casts (``pad_history`` / submit-time
    validation normalised dtypes already).

    The returned batch views alias the scratch buffers: they are valid
    until the next :meth:`assemble` call, which is exactly the flush loop's
    assemble → forward → resolve cadence.
    """

    __slots__ = ("_x", "_fn", "_fc")

    def __init__(self) -> None:
        self._x: Optional[np.ndarray] = None
        self._fn: Optional[np.ndarray] = None
        self._fc: Optional[np.ndarray] = None

    @staticmethod
    def _fill(
        buffer: Optional[np.ndarray],
        rows: List[np.ndarray],
        dtype: np.dtype,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Copy ``rows`` into (a large-enough) ``buffer``; returns (buffer, view)."""
        n = len(rows)
        row_shape = rows[0].shape
        if buffer is None or buffer.shape[0] < n or buffer.shape[1:] != row_shape:
            # Clamp scratch capacity to the active power-of-two bucket —
            # the same bucketing the compiled-plan cache uses — so
            # fluctuating group sizes reallocate O(log max_batch) times
            # and then stabilise, instead of growing row by row.
            buffer = np.empty((bucket_for(n),) + row_shape, dtype=dtype)
        view = buffer[:n]
        for index, row in enumerate(rows):
            view[index] = row
        return buffer, view

    def assemble(self, members: Sequence[ForecastRequest]) -> Dict[str, Optional[np.ndarray]]:
        """One batch dictionary (keys ``x`` / ``future_numerical`` /
        ``future_categorical``) for a signature-homogeneous group."""
        batch: Dict[str, Optional[np.ndarray]] = {
            "x": None,
            "future_numerical": None,
            "future_categorical": None,
        }
        self._x, batch["x"] = self._fill(
            self._x, [r.history for r in members], np.float32
        )
        first = members[0]
        if first.future_numerical is not None:
            self._fn, batch["future_numerical"] = self._fill(
                self._fn, [r.future_numerical for r in members], np.float32
            )
        if first.future_categorical is not None:
            self._fc, batch["future_categorical"] = self._fill(
                self._fc, [r.future_categorical for r in members], np.int64
            )
        return batch


def coalesce(
    requests: Sequence[ForecastRequest],
) -> List[Tuple[Dict[str, Optional[np.ndarray]], List[ForecastRequest]]]:
    """Stack pending requests into per-forward-pass ``(batch, members)`` pairs.

    Standalone convenience built on :func:`group_requests`; each group is
    stacked into freshly allocated arrays.  The service's flush loop uses
    :class:`BatchAssembler` instead so the batch blocks are reused.
    """
    groups: List[Tuple[Dict[str, Optional[np.ndarray]], List[ForecastRequest]]] = []
    for members in group_requests(requests):
        batch: Dict[str, Optional[np.ndarray]] = {
            "x": np.stack([r.history for r in members]),
            "future_numerical": None,
            "future_categorical": None,
        }
        if members[0].future_numerical is not None:
            batch["future_numerical"] = np.stack([r.future_numerical for r in members])
        if members[0].future_categorical is not None:
            batch["future_categorical"] = np.stack([r.future_categorical for r in members])
        groups.append((batch, members))
    return groups
