"""LRU model registry backing the serving layer.

One serving process typically hosts several scenarios — the same
architecture at different horizons, or different datasets entirely.  The
registry keeps the ``capacity`` most recently used models live in memory,
keyed on ``(model_name, config_hash)``.  When a model is evicted its state
dict is spilled to disk through the existing :mod:`repro.nn.serialization`
machinery, so a later ``get`` for the same key rebuilds the architecture
from the factory and restores bit-identical weights instead of losing
trained state.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..baselines.registry import create_model
from ..config import ModelConfig
from ..core.base import ForecastModel
from ..nn.serialization import load_state, save_state
from ..runtime.annotations import guarded_by, requires_lock
from ..stats import CounterStats

__all__ = ["config_hash", "RegistryStats", "ModelRegistry"]


def config_hash(config: ModelConfig, extra: Optional[Dict] = None) -> str:
    """Deterministic short hash of a model configuration (plus factory kwargs).

    Two configurations hash equal iff every field (and every extra factory
    keyword, e.g. ablation flags) matches, so the hash is a stable cache key
    across processes — unlike ``id()`` or Python's salted ``hash()``.
    """
    payload = {"config": asdict(config), "extra": extra or {}}
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class RegistryStats(CounterStats):
    """Cache-effectiveness counters.

    ``reset``/``merge``/``as_dict`` come from
    :class:`repro.stats.CounterStats` (all fields sum on merge).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    reloads: int = 0


@dataclass
class _ModelSpec:
    """Everything needed to rebuild an evicted model."""

    name: str
    config: ModelConfig
    kwargs: Dict = field(default_factory=dict)


@guarded_by("_models", "_specs", "stats", "_cache_dir", lock="_lock")
class ModelRegistry:
    """LRU cache of live :class:`ForecastModel` instances.

    Parameters
    ----------
    capacity:
        maximum number of models kept in memory; the least recently used is
        evicted (weights spilled to ``cache_dir``) when exceeded.
    factory:
        ``(name, config, rng=..., **kwargs) -> ForecastModel``; defaults to
        :func:`repro.baselines.registry.create_model`, so every registered
        model name works out of the box.
    cache_dir:
        where evicted state dicts are written; a temporary directory is
        created lazily when omitted.
    """

    def __init__(
        self,
        capacity: int = 4,
        factory=create_model,
        cache_dir: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.factory = factory
        self._cache_dir = cache_dir
        self._models: "OrderedDict[Tuple[str, str], ForecastModel]" = OrderedDict()
        self._specs: Dict[Tuple[str, str], _ModelSpec] = {}
        self.stats = RegistryStats()
        # Serialises LRU mutation: services support concurrent submitters,
        # so two threads may resolve different scenarios simultaneously.
        self._lock = threading.RLock()
        # Weakly bound metrics-registry view over the cache counters.
        obs.register_stats("repro_registry", self.stats_snapshot)

    # ------------------------------------------------------------------ #
    def key(self, name: str, config: ModelConfig, **kwargs) -> Tuple[str, str]:
        """The ``(model_name, config_hash)`` cache key for a scenario."""
        return (name, config_hash(config, extra=kwargs))

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        with self._lock:
            return key in self._models

    def keys(self) -> List[Tuple[str, str]]:
        """Live keys, least recently used first."""
        with self._lock:
            return list(self._models)

    def stats_snapshot(self) -> RegistryStats:
        """A consistent copy of the cache counters, taken under the lock."""
        with self._lock:
            return RegistryStats(**self.stats.as_dict())

    @property
    def cache_dir(self) -> str:
        # Lazily created under the lock: two concurrent cold spills racing
        # here would otherwise each mkdtemp and spill to different dirs.
        with self._lock:
            if self._cache_dir is None:
                self._cache_dir = tempfile.mkdtemp(prefix="repro-model-registry-")
            return self._cache_dir

    def _spill_path(self, key: Tuple[str, str]) -> str:
        name, digest = key
        return os.path.join(self.cache_dir, f"{name}-{digest}.npz")

    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        config: ModelConfig,
        model: Optional[ForecastModel] = None,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> ForecastModel:
        """Insert (or replace) a model for a scenario and return it.

        Pass an already-built ``model`` (e.g. freshly trained) to serve it
        as-is; omit it to build one through the factory.
        """
        key = self.key(name, config, **kwargs)
        if model is None:
            model = self.factory(name, config, rng=rng, **kwargs)
        with self._lock:
            self._specs[key] = _ModelSpec(name=name, config=config, kwargs=dict(kwargs))
            self._models[key] = model
            self._models.move_to_end(key)
            self._evict_over_capacity()
        return model

    def get(
        self,
        name: str,
        config: ModelConfig,
        rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> ForecastModel:
        """Return the model for a scenario, loading or building on miss.

        Hit: the live instance, promoted to most recently used.  Miss with a
        spilled state dict: the architecture is rebuilt and the saved
        weights restored (bit-identical).  Cold miss: a fresh model from the
        factory.
        """
        key = self.key(name, config, **kwargs)
        with self._lock:
            model = self._models.get(key)
            if model is not None:
                self.stats.hits += 1
                self._models.move_to_end(key)
                return model
            self.stats.misses += 1
            model = self.factory(name, config, rng=rng, **kwargs)
            spill = self._spill_path(key)
            if os.path.exists(spill):
                model.load_state_dict(load_state(spill))
                self.stats.reloads += 1
            self._specs[key] = _ModelSpec(name=name, config=config, kwargs=dict(kwargs))
            self._models[key] = model
            self._models.move_to_end(key)
            self._evict_over_capacity()
            return model

    # ------------------------------------------------------------------ #
    @requires_lock("_lock")
    def _evict_over_capacity(self) -> None:
        while len(self._models) > self.capacity:
            self.evict_lru()

    def evict_lru(self) -> Optional[Tuple[str, str]]:
        """Spill the least recently used model to disk and drop it."""
        with self._lock:
            if not self._models:
                return None
            key, model = self._models.popitem(last=False)
            save_state(model.state_dict(), self._spill_path(key))
            self.stats.evictions += 1
            return key
