"""``repro.serving`` — batched inference serving.

The serving subsystem turns the repo's train-time models into a
request-level inference stack:

* :class:`ForecastService` — ``submit(history, covariates) -> Forecast``
  with a micro-batching queue that coalesces pending requests into single
  padded forward passes under ``no_grad``;
* :class:`ModelRegistry` — an LRU cache of live models keyed on
  ``(model_name, config_hash)``, spilling evicted weights through
  :mod:`repro.nn.serialization` so multiple scenarios share one process;
* batching helpers (:func:`pad_history`, :func:`coalesce`) and stats
  objects for observing cache and batching behaviour;
* :mod:`repro.serving.admission` — overload protection: priority classes
  (:data:`PRIORITIES`), per-request deadlines, and an
  :class:`AdmissionPolicy` that sheds over-capacity or expired work with
  typed :class:`Overloaded` / :class:`DeadlineExceeded` errors instead of
  queueing unboundedly.

See ``examples/serving_quickstart.py`` for an end-to-end tour and
``benchmarks/test_serving_throughput.py`` for the measured batched-vs-
sequential speedup.  The streaming subsystem (:mod:`repro.streaming`)
layers multi-tenant online ingestion on top of this request API — its
per-tenant forecasts are ordinary ``submit`` traffic, so they coalesce
with each other (and with any direct callers) in the same queue.
"""

from .admission import (
    DEFAULT_PRIORITY,
    PRIORITIES,
    AdmissionPolicy,
    DeadlineExceeded,
    Overloaded,
)
from .batching import Forecast, ForecastRequest, coalesce, pad_history
from .registry import ModelRegistry, RegistryStats, config_hash
from .service import ForecastService, ServiceStats

__all__ = [
    "Forecast",
    "ForecastRequest",
    "pad_history",
    "coalesce",
    "ModelRegistry",
    "RegistryStats",
    "config_hash",
    "ForecastService",
    "ServiceStats",
    "PRIORITIES",
    "DEFAULT_PRIORITY",
    "AdmissionPolicy",
    "Overloaded",
    "DeadlineExceeded",
]
