"""Admission control for the serving queue: priorities, deadlines, shedding.

The paper's pitch is a *lightweight* forecaster that holds up under heavy
multi-tenant traffic — which means the serving layer must decide what to
do when traffic exceeds capacity, rather than queue without bound and
let every caller's latency grow together.  This module is the decision
vocabulary; :class:`~repro.serving.service.ForecastService` applies it:

* **Priority classes** — :data:`PRIORITIES` is a strict ladder,
  ``"interactive"`` > ``"batch"`` > ``"best_effort"``.  Under pressure
  the queue sheds strictly-lower-priority work first, and flushes run
  higher classes in earlier forward passes.
* **Deadlines** — per-request, resolved once at submit on the
  :func:`repro.obs.now` clock (monotonic; wall-clock steps can neither
  expire nor resurrect a request).  Already-expired work is refused at
  the door; work that expires while queued is shed at flush instead of
  wasting a forward pass on an answer nobody is waiting for.
* **Typed load shedding** — every shed path fails with
  :class:`Overloaded` or :class:`DeadlineExceeded` (re-exported here
  from :mod:`repro.errors`, and whitelisted in the wire protocol so a
  worker-side shed crosses the process boundary typed).  A caller can
  distinguish "the system refused" from "the system broke".

The default :class:`AdmissionPolicy` is deliberately inert — no queue
limit, no default timeout — so existing deployments keep their exact
behaviour (and bit-parity oracles) until a limit is configured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import DeadlineExceeded, Overloaded

__all__ = [
    "PRIORITIES",
    "DEFAULT_PRIORITY",
    "AdmissionPolicy",
    "Overloaded",
    "DeadlineExceeded",
    "priority_rank",
    "resolve_deadline",
]

#: the priority ladder, best first.  Rank = index: lower rank wins.
PRIORITIES = ("interactive", "batch", "best_effort")

DEFAULT_PRIORITY = "batch"

_RANK = {priority: rank for rank, priority in enumerate(PRIORITIES)}


def priority_rank(priority: str) -> int:
    """The ladder rank of a priority class (0 is best); validates the name."""
    rank = _RANK.get(priority)
    if rank is None:
        raise ValueError(
            f"unknown priority {priority!r}; use one of {PRIORITIES}"
        )
    return rank


@dataclass(frozen=True)
class AdmissionPolicy:
    """How a service admits, queues and sheds requests.

    Parameters
    ----------
    queue_limit:
        maximum pending requests; ``None`` (default) keeps the queue
        unbounded — the pre-admission behaviour.  When full, an arrival
        either displaces the worst strictly-lower-priority queued
        request (which fails :class:`Overloaded`) or is itself refused.
    default_timeout:
        deadline budget (seconds) applied to requests that supply
        neither ``timeout`` nor ``deadline``; ``None`` leaves them
        deadline-free.
    flush_fraction:
        when a deadline-bearing request is pending, a background flush
        timer fires once this fraction of the *oldest* such request's
        budget is spent (default: half) — late enough to let a batch
        coalesce, early enough that the forward pass lands before the
        deadline.
    """

    queue_limit: Optional[int] = None
    default_timeout: Optional[float] = None
    flush_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ValueError(
                f"default_timeout must be > 0, got {self.default_timeout}"
            )
        if not 0.0 < self.flush_fraction <= 1.0:
            raise ValueError(
                f"flush_fraction must be in (0, 1], got {self.flush_fraction}"
            )

    @property
    def bounded(self) -> bool:
        return self.queue_limit is not None


def resolve_deadline(
    now: float,
    timeout: Optional[float] = None,
    deadline: Optional[float] = None,
    policy: Optional[AdmissionPolicy] = None,
) -> Optional[float]:
    """Collapse a request's timing arguments into one absolute deadline.

    Precedence: an explicit absolute ``deadline`` wins; otherwise a
    relative ``timeout`` is anchored at ``now``; otherwise the policy's
    ``default_timeout`` applies; otherwise the request is deadline-free.
    Supplying both ``timeout`` and ``deadline`` is a caller bug and
    raises.
    """
    if timeout is not None and deadline is not None:
        raise ValueError("pass either timeout (relative) or deadline (absolute), not both")
    if deadline is not None:
        return float(deadline)
    if timeout is not None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        return now + float(timeout)
    if policy is not None and policy.default_timeout is not None:
        return now + policy.default_timeout
    return None
