"""Micro-batched forecast serving.

:class:`ForecastService` is the request-level inference entry point the
scaling roadmap builds on.  Callers submit one history at a time
(:meth:`ForecastService.submit`) and get back a :class:`Forecast` handle;
the service queues pending requests and coalesces them into a single padded
forward pass under ``no_grad`` once the micro-batch fills (or on an
explicit / handle-triggered :meth:`flush`).  Amortising the per-call Python
and dispatch overhead across the batch is what makes the paper's
lightweight-inference story (Table VII) hold up under request-at-a-time
traffic rather than pre-shaped arrays.

The service also exposes:

* :meth:`predict_many` — synchronous convenience over submit+flush;
* :meth:`backfill` — batched inference over every window of a historical
  series, using the vectorised ``SlidingWindowDataset.as_arrays`` fast path.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import ClassVar, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..config import ModelConfig
from ..stats import CounterStats, counters_dict
from ..core.base import ForecastModel
from ..data.windows import SlidingWindowDataset
from ..runtime.annotations import guarded_by, requires_lock
from .admission import (
    DEFAULT_PRIORITY,
    AdmissionPolicy,
    DeadlineExceeded,
    Overloaded,
    priority_rank,
    resolve_deadline,
)
from .batching import BatchAssembler, Forecast, ForecastRequest, group_requests, pad_history
from .registry import ModelRegistry

__all__ = ["ServiceStats", "ForecastService"]

# Module-level instruments, shared by every service instance in the process
# (per-instance counters live in ServiceStats and export as registry views).
_FLUSH_SECONDS = obs.histogram(
    "repro_serving_flush_seconds", "wall time of one ForecastService flush"
)
_REQUEST_LATENCY_SECONDS = obs.histogram(
    "repro_serving_request_latency_seconds", "submit-to-resolve latency per request"
)
_QUEUE_DEPTH = obs.gauge(
    "repro_serving_queue_depth", "pending requests at the moment a flush started"
)
_FLUSH_OCCUPANCY = obs.histogram(
    "repro_serving_flush_occupancy",
    "fraction of max_batch_size filled per forward pass",
    buckets=tuple((i + 1) / 16 for i in range(16)),
)
_PRIORITY_LATENCY_SECONDS = obs.histogram(
    "repro_serving_priority_latency_seconds",
    "submit-to-resolve latency per request, split by priority class",
    labels=("priority",),
)
_SHED_TOTAL = obs.counter(
    "repro_serving_shed_total",
    "requests refused or failed by admission control, by reason",
    labels=("reason",),
)


@dataclass
class ServiceStats(CounterStats):
    """Counters for observing batching behaviour.

    Submit-path and backfill counters are kept separate so that
    ``mean_batch_size`` — the micro-batching efficiency of the request API —
    is not diluted by bulk backfill passes.  ``reset``/``merge`` come from
    :class:`repro.stats.CounterStats`; ``largest_batch`` aggregates by max
    cluster-wide, so the fleet-level ``mean_batch_size`` stays meaningful.
    """

    MAXED: ClassVar[Tuple[str, ...]] = ("largest_batch",)

    requests: int = 0
    forward_passes: int = 0          # submit-path passes only
    flushes: int = 0
    padded_requests: int = 0
    largest_batch: int = 0
    backfill_batches: int = 0
    backfill_windows: int = 0
    shed_overloaded: int = 0         # refused/displaced at a full queue
    shed_expired: int = 0            # refused at submit: deadline already past
    deadline_misses: int = 0         # expired while queued, shed at flush
    timer_flushes: int = 0           # flushes fired by the deadline timer

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.forward_passes if self.forward_passes else 0.0

    def as_dict(self) -> dict:
        """Counters plus derived ratios, for reports and benchmarks."""
        return {**counters_dict(self), "mean_batch_size": self.mean_batch_size}


@guarded_by("_pending", "stats", "_assembler", "_timer", "_timer_at", lock="_lock")
class ForecastService:
    """Serve a forecasting model behind a micro-batching request API.

    Construct either around a live model::

        service = ForecastService(model)

    or around a registry scenario, letting the :class:`ModelRegistry`
    resolve / cache the weights::

        service = ForecastService.from_registry(registry, "LiPFormer", config)

    ``submit`` never runs the model immediately: requests accumulate until
    ``max_batch_size`` of them are pending, then one padded batch is pushed
    through ``ForecastModel.predict`` (eval mode + ``no_grad``, training
    flag restored).  ``Forecast.result()`` flushes on demand, so a
    single-request caller still gets an answer synchronously.
    """

    def __init__(
        self,
        model: ForecastModel,
        max_batch_size: int = 32,
        pad_mode: str = "edge",
        compiled: bool = True,
        admission: Optional[AdmissionPolicy] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        self.model = model
        self.config: ModelConfig = model.config
        self.max_batch_size = max_batch_size
        self.pad_mode = pad_mode
        #: route batch forwards through the model's compiled inference plan
        #: (bit-identical to eager; models that never opted into
        #: ``supports_compiled_plan`` silently stay eager).
        self.compiled = bool(compiled)
        if self.compiled and getattr(model, "supports_compiled_plan", False):
            # Plans are batch-polymorphic: the cache key tracks covariate
            # *signatures* only (with / without covariates), not batch
            # sizes, so a handful of entries covers the flush loop's whole
            # shape population — tail batches of any size replay the same
            # bucket plan.  Align the predictor's polymorphic trace width
            # with the service's micro-batch ceiling.
            model.compiled_predictor(max_batch=max_batch_size).reserve(4)
        #: admission policy; the default is inert (unbounded queue, no
        #: deadlines) so un-configured services behave exactly as before.
        self.admission = admission if admission is not None else AdmissionPolicy()
        self.stats = ServiceStats()
        self._pending: List[ForecastRequest] = []
        self._assembler = BatchAssembler()
        self._timer: Optional[threading.Timer] = None
        self._timer_at = 0.0
        self._lock = threading.RLock()
        # Export the per-instance counters through the metrics registry;
        # the view holds the service weakly and dies with it.
        obs.register_stats("repro_serving", self.stats_snapshot, maxed=ServiceStats.MAXED)

    @classmethod
    def from_registry(
        cls,
        registry: ModelRegistry,
        model_name: str,
        config: ModelConfig,
        max_batch_size: int = 32,
        pad_mode: str = "edge",
        compiled: bool = True,
        admission: Optional[AdmissionPolicy] = None,
        **factory_kwargs,
    ) -> "ForecastService":
        """Build a service for a registry scenario (loading on cache miss)."""
        model = registry.get(model_name, config, **factory_kwargs)
        return cls(
            model,
            max_batch_size=max_batch_size,
            pad_mode=pad_mode,
            compiled=compiled,
            admission=admission,
        )

    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Number of queued, not-yet-resolved requests."""
        with self._lock:
            return len(self._pending)

    def submit(
        self,
        history: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
        priority: str = DEFAULT_PRIORITY,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> Forecast:
        """Queue one request; returns a handle that resolves on flush.

        ``history`` is a single ``[time, channels]`` series tail.  Shorter
        histories than the model's ``input_length`` are left-padded
        (``pad_mode``), longer ones keep their most recent steps.  Future
        covariates, when given, must cover the model horizon.

        ``priority`` is one of :data:`~repro.serving.admission.PRIORITIES`;
        ``timeout`` (relative seconds) or ``deadline`` (absolute, on the
        :func:`repro.obs.now` clock) bound how long the caller will wait.
        Under the service's :class:`AdmissionPolicy` an over-capacity or
        already-expired request raises :class:`Overloaded` /
        :class:`DeadlineExceeded` here instead of queueing unboundedly; a
        queued request whose deadline lapses before its flush fails its
        handle with :class:`DeadlineExceeded`.
        """
        rank = priority_rank(priority)
        padded, observed = pad_history(
            history, self.config.input_length, self.config.n_channels, pad_mode=self.pad_mode
        )
        future_numerical, future_categorical = self._validate_covariates(
            future_numerical, future_categorical
        )
        # The scheduling clock is unconditional: deadlines and the flush
        # timer need real timestamps whether or not metrics are recording.
        now = obs.now()
        request = ForecastRequest(
            history=padded,
            observed_length=observed,
            future_numerical=future_numerical,
            future_categorical=future_categorical,
            forecast=Forecast(self),
            submitted_at=now,
            priority=priority,
            deadline=resolve_deadline(now, timeout, deadline, self.admission),
        )
        with self._lock:
            self._admit_locked(request, rank, now)
            if len(self._pending) >= self.max_batch_size:
                self._flush_locked()
            elif request.deadline is not None:
                self._arm_timer_locked(request)
        return request.forecast

    @requires_lock("_lock")
    def _admit_locked(self, request: ForecastRequest, rank: int, now: float) -> None:
        """Admit one request into the pending queue, or shed typed.

        Expired work is refused outright.  At a full queue the arrival
        displaces the worst strictly-lower-priority queued request (whose
        handle fails :class:`Overloaded`); with nothing lower-priority to
        displace, the arrival itself is refused.
        """
        if request.deadline is not None and request.deadline <= now:
            self.stats.shed_expired += 1
            _SHED_TOTAL.labels(reason="expired").inc()
            raise DeadlineExceeded(
                f"deadline passed {now - request.deadline:.3f}s before admission"
            )
        limit = self.admission.queue_limit
        if limit is not None and len(self._pending) >= limit:
            victim = self._evict_locked(rank)
            self.stats.shed_overloaded += 1
            _SHED_TOTAL.labels(reason="overloaded").inc()
            if victim is None:
                raise Overloaded(
                    f"pending queue full ({limit}) with no lower-priority "
                    f"work to displace for a {request.priority!r} arrival"
                )
            victim.forecast._fail(
                Overloaded(
                    f"{victim.priority!r} request displaced from a full queue "
                    f"({limit}) by a {request.priority!r} arrival"
                )
            )
        self._pending.append(request)
        self.stats.requests += 1
        if request.observed_length < self.config.input_length:
            self.stats.padded_requests += 1

    @requires_lock("_lock")
    def _evict_locked(self, incoming_rank: int) -> Optional[ForecastRequest]:
        """Pop the eviction victim: worst priority class, newest within it.

        Returns ``None`` when nothing queued ranks strictly below the
        arrival — equal-priority work is never displaced (FIFO fairness
        within a class).
        """
        victim_index = -1
        victim_rank = incoming_rank
        for index in range(len(self._pending) - 1, -1, -1):
            rank = priority_rank(self._pending[index].priority)
            if rank > victim_rank:
                victim_index = index
                victim_rank = rank
        if victim_index < 0:
            return None
        return self._pending.pop(victim_index)

    @requires_lock("_lock")
    def _arm_timer_locked(self, request: ForecastRequest) -> None:
        """Schedule a background flush at ``flush_fraction`` of the budget.

        A single timer tracks the earliest required firing; a new
        deadline only re-arms it when it needs the flush sooner than the
        timer already in flight.
        """
        budget = request.deadline - request.submitted_at
        fire_at = request.submitted_at + budget * self.admission.flush_fraction
        if self._timer is not None:
            if self._timer_at <= fire_at:
                return
            self._timer.cancel()
        timer = threading.Timer(max(fire_at - obs.now(), 0.0), self._deadline_flush)
        timer.daemon = True
        self._timer = timer
        self._timer_at = fire_at
        timer.start()

    @requires_lock("_lock")
    def _cancel_timer_locked(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
            self._timer_at = 0.0

    def _deadline_flush(self) -> None:
        """Timer callback: flush whatever is pending before deadlines lapse."""
        with self._lock:
            self._timer = None
            self._timer_at = 0.0
            if self._pending:
                self.stats.timer_flushes += 1
                self._flush_locked()

    def close(self) -> None:
        """Flush remaining work and stop the background flush timer."""
        with self._lock:
            self._flush_locked()
            self._cancel_timer_locked()

    def flush(self) -> int:
        """Run every pending request through the model; returns the count."""
        with self._lock:
            return self._flush_locked()

    def stats_snapshot(self) -> ServiceStats:
        """A consistent copy of the counters, taken under the service lock.

        ``self.stats`` is mutated field-by-field inside submit/flush;
        merging live objects across a cluster while shards keep serving
        could tear a ``requests``/``forward_passes`` pair mid-update.  The
        copy pins each service at one self-consistent point.
        """
        with self._lock:
            return ServiceStats(**asdict(self.stats))

    def reset_stats(self) -> None:
        """Zero the counters under the service lock (between benchmark
        phases), so an in-flight submit/flush can't interleave its
        field-by-field increments with the reset."""
        with self._lock:
            self.stats.reset()

    def predict_many(
        self,
        histories: Sequence[np.ndarray],
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Submit a batch of histories and block for the stacked forecasts.

        ``future_numerical`` / ``future_categorical`` are per-request arrays
        aligned with ``histories`` (``[n, horizon, c]``) or ``None``.
        """
        handles = [
            self.submit(
                history,
                future_numerical=None if future_numerical is None else future_numerical[i],
                future_categorical=None if future_categorical is None else future_categorical[i],
            )
            for i, history in enumerate(histories)
        ]
        self.flush()
        return np.stack([handle.result() for handle in handles])

    def backfill(
        self,
        dataset: SlidingWindowDataset,
        batch_size: Optional[int] = None,
    ) -> np.ndarray:
        """Forecast every window of a historical dataset, in batches.

        Uses the vectorised ``as_arrays`` fast path to materialise window
        batches without a per-sample Python loop, then runs them through the
        model under ``no_grad``.  Returns ``[n_windows, horizon, channels]``
        predictions aligned with the dataset's window indexing.
        """
        for field in ("input_length", "horizon", "n_channels"):
            expected = getattr(self.config, field)
            actual = getattr(dataset, field)
            if actual != expected:
                raise ValueError(
                    f"dataset {field} {actual} does not match model {field} {expected}"
                )
        step = batch_size or self.max_batch_size
        outputs: List[np.ndarray] = []
        indices = np.arange(len(dataset))
        for start in range(0, len(indices), step):
            batch = dataset.as_arrays(indices[start : start + step])
            # The lock keeps stats updates and the model's train/eval flag
            # flips race-free against concurrent submit()/flush() callers.
            with self._lock:
                outputs.append(self._run_batch(batch))
                self.stats.backfill_batches += 1
                self.stats.backfill_windows += len(batch["x"])
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------ #
    def _validate_covariates(
        self,
        future_numerical: Optional[np.ndarray],
        future_categorical: Optional[np.ndarray],
    ):
        """Normalise per-request covariates to ``[horizon, c]`` or drop them.

        Covariates supplied to a model (or config) that does not consume
        them are silently dropped, mirroring the trainer's behaviour for
        covariate-agnostic baselines.  For models that *do* consume them,
        validation is strict at submit time: a combination the covariate
        encoder would reject mid-forward (missing half of a required pair,
        wrong channel width) raises here, on the submitting caller, instead
        of blowing up an entire micro-batch at flush time.
        """
        if not self.model.supports_covariates or not self.config.has_covariates:
            return None, None
        if future_numerical is None and future_categorical is None:
            return None, None  # model falls back to its base forecast
        horizon = self.config.horizon
        expected = {
            "future_numerical": self.config.covariate_numerical_dim,
            "future_categorical": len(self.config.covariate_categorical_cardinalities),
        }
        normalised = []
        for name, value, dtype in (
            ("future_numerical", future_numerical, np.float32),
            ("future_categorical", future_categorical, np.int64),
        ):
            width = expected[name]
            if width == 0:
                normalised.append(None)
                continue
            if value is None:
                raise ValueError(
                    f"model requires {name} ([horizon={horizon}, {width}]) when "
                    "any covariates are supplied"
                )
            value = np.asarray(value, dtype=dtype)
            if value.ndim != 2 or value.shape[0] != horizon or value.shape[1] != width:
                raise ValueError(
                    f"{name} must be [horizon={horizon}, {width}], got shape {value.shape}"
                )
            normalised.append(value)
        return tuple(normalised)

    def warmup(self, batch_sizes: Optional[Sequence[int]] = None) -> int:
        """Pre-trace the polymorphic compiled plan off the request path.

        First-request latency on a fresh service (cold start, failover
        replacement, restored snapshot) includes the plan trace; ``warmup``
        moves that cost up front.  Plans are batch-polymorphic, so one
        trace at ``max_batch_size`` (the default) serves *every* smaller
        batch — warming is one trace, not a shape sweep.  Explicit
        ``batch_sizes`` are probed largest-first: for a sliceable plan the
        smaller sizes are cache hits; a model demoted to exact-shape plans
        warms each size individually.  Returns the number of plans
        actually traced (0 when the model or the service runs eager).
        """
        if not self.compiled or not getattr(self.model, "supports_compiled_plan", False):
            return 0
        sizes = sorted({int(n) for n in (batch_sizes or (self.max_batch_size,))})
        if any(n < 1 for n in sizes):
            raise ValueError(f"batch sizes must be positive, got {sizes}")
        predictor = self.model.compiled_predictor()
        template = np.zeros(
            (sizes[-1], self.config.input_length, self.config.n_channels), dtype=np.float32
        )
        with self._lock:
            before = predictor.traces
            for n in reversed(sizes):
                self.model.predict(template[:n], compiled=True)
            return predictor.traces - before

    def _run_batch(self, batch) -> np.ndarray:
        """One padded forward pass (eval + ``no_grad`` via ``predict``).

        With ``compiled`` enabled the pass replays the model's traced
        inference plan for this batch shape — bit-identical output, no
        autograd bookkeeping, no per-op allocations.
        """
        kwargs = {}
        if self.model.supports_covariates:
            kwargs = {
                "future_numerical": batch.get("future_numerical"),
                "future_categorical": batch.get("future_categorical"),
            }
        return self.model.predict(batch["x"], compiled=self.compiled, **kwargs)

    @requires_lock("_lock")
    def _shed_expired_locked(self, pending: List[ForecastRequest]) -> List[ForecastRequest]:
        """Fail queued requests whose deadline lapsed; return the live rest.

        Running an expired request would spend forward-pass capacity on an
        answer nobody is waiting for — under overload exactly the spend
        that pushes the *next* request past its deadline too.
        """
        live: List[ForecastRequest] = []
        now = 0.0
        for request in pending:
            if request.deadline is not None:
                if not now:
                    now = obs.now()
                if request.deadline <= now:
                    self.stats.deadline_misses += 1
                    _SHED_TOTAL.labels(reason="deadline").inc()
                    request.forecast._fail(
                        DeadlineExceeded(
                            f"{request.priority!r} request expired in queue "
                            f"({now - request.deadline:.3f}s past deadline)"
                        )
                    )
                    continue
            live.append(request)
        return live

    @requires_lock("_lock")
    def _flush_locked(self) -> int:
        if not self._pending:
            return 0
        self._cancel_timer_locked()
        started = obs.now() if obs.metrics_enabled() else 0.0
        pending, self._pending = self._pending, []
        if started:
            _QUEUE_DEPTH.set(len(pending))
        self.stats.flushes += 1
        live = self._shed_expired_locked(pending)
        if not live:
            return len(pending)
        if len(live) > 1:
            # Stable priority order: higher classes land in earlier forward
            # passes, FIFO preserved within a class.  Rows of a batch are
            # independent, so reordering across rows never changes any
            # row's bits — admitted traffic stays parity-clean.
            live.sort(key=lambda request: priority_rank(request.priority))
        with obs.span("service.flush", requests=len(live)):
            for start in range(0, len(live), self.max_batch_size):
                chunk = live[start : start + self.max_batch_size]
                for members in group_requests(chunk):
                    # A failing forward must not take unrelated requests down
                    # with it: the error is attached to the failing group's
                    # handles (raised from their result()), and the remaining
                    # groups still run.
                    self.stats.forward_passes += 1
                    self.stats.largest_batch = max(self.stats.largest_batch, len(members))
                    if started:
                        _FLUSH_OCCUPANCY.observe(len(members) / self.max_batch_size)
                    try:
                        with obs.span("batch.assemble", requests=len(members)):
                            # The assembled batch aliases the service's
                            # scratch buffers — consumed by the forward pass
                            # below before the next group is assembled.
                            batch = self._assembler.assemble(members)
                        output = self._run_batch(batch)
                    except Exception as error:  # noqa: BLE001 - routed to handles
                        for request in members:
                            request.forecast._fail(error)
                        continue
                    resolved_at = obs.now() if started else 0.0
                    for row, request in zip(output, members):
                        request.forecast._resolve(row)
                        if resolved_at and request.submitted_at:
                            latency = resolved_at - request.submitted_at
                            _REQUEST_LATENCY_SECONDS.observe(latency)
                            _PRIORITY_LATENCY_SECONDS.labels(
                                priority=request.priority
                            ).observe(latency)
        if started:
            _FLUSH_SECONDS.observe(obs.now() - started)
        return len(pending)
