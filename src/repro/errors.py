"""Typed failure vocabulary shared across layers.

Overload protection only works end to end if every layer sheds with the
*same* typed errors: the serving admission gate, the streaming facade,
the cluster coordinator and the wire protocol all need to agree on what
"too busy" and "too late" look like, and the wire's re-raise whitelist
(:func:`repro.wire.raise_remote`) must be able to rematerialise them on
the coordinator side without importing the serving stack.  This module
is that shared vocabulary — stdlib-only, importable from anywhere
without cycles.

Base classes are chosen so existing narrow handlers keep working:

* :class:`DeadlineExceeded` *is a* ``TimeoutError`` — code that treats
  timeouts generically still catches it, but the type records that the
  budget was the *caller's*, not a transport default;
* :class:`Overloaded` *is a* ``RuntimeError`` — a capacity decision, not
  a transport failure;
* :class:`CircuitOpen` and :class:`TransientWireError` are
  ``ConnectionError`` subclasses — both describe the health of a
  connection to a worker, one synthesised locally (fail-fast), one a
  retryable transport hiccup.
"""

from __future__ import annotations

__all__ = [
    "Overloaded",
    "DeadlineExceeded",
    "CircuitOpen",
    "TransientWireError",
]


class Overloaded(RuntimeError):
    """Request rejected (or evicted) by admission control: queue at capacity.

    Raised on the *submitting* caller when the pending queue is full and
    the request cannot displace lower-priority work, or from a shed
    victim's ``result()`` when a higher-priority arrival evicted it.
    Typed load-shedding: the caller knows the system chose to refuse
    work, rather than hitting an opaque timeout on an unbounded queue.
    """


class DeadlineExceeded(TimeoutError):
    """The request's deadline budget expired before a forward pass ran.

    Raised at submit time for work that arrives already expired, from a
    handle's ``result()`` when the deadline lapsed while queued (the
    flush sheds dead work instead of computing it), or from an RPC whose
    retry/receive budget was capped by the caller's deadline.
    """


class CircuitOpen(ConnectionError):
    """A circuit breaker is open: the call failed fast without any I/O.

    Raised instead of talking to a worker whose breaker tripped after
    consecutive failures; carries no transport state because no transport
    was touched.  Half-open probes re-test the worker after the breaker's
    reset timeout.
    """

    def __init__(self, name: str, retry_after: float) -> None:
        super().__init__(
            f"circuit {name!r} is open (probe allowed in {retry_after:.3f}s)"
        )
        self.name = name
        self.retry_after = retry_after


class TransientWireError(ConnectionError):
    """A retryable transport hiccup: the stream itself is still usable.

    Distinct from :class:`repro.wire.EndOfStream` (peer gone for good):
    a transient error is raised *before* any frame bytes were consumed,
    so a retry over the same socket is sound.  The fault-injection
    harness raises it to exercise retry paths deterministically.
    """
