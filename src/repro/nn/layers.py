"""Common neural-network layers built on the autograd engine."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, _trace_state

__all__ = [
    "Linear",
    "Dropout",
    "LayerNorm",
    "Embedding",
    "GELU",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
]


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng=rng))
        self.bias = Parameter(init.zeros_((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Dropout(Module):
    """Inverted dropout layer.

    Without an explicit ``rng`` the layer defers to the seedable module-level
    generator in :mod:`repro.nn.functional` (see ``manual_seed``) instead of
    owning a private unseeded generator, so seeded runs stay reproducible.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, rng=self._rng)


class LayerNorm(Module):
    """Layer normalisation over the last dimension.

    Kept in the substrate because the paper's *ablation* variants and several
    baselines (PatchTST, iTransformer, vanilla Transformer) use it, even
    though LiPFormer itself removes it.
    """

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones((normalized_shape,), dtype=np.float32))
        self.bias = Parameter(np.zeros((normalized_shape,), dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.xavier_normal((num_embeddings, embedding_dim), rng=rng))

    @staticmethod
    def _validate_indices(indices: np.ndarray, num_embeddings: int) -> None:
        if indices.min() < 0 or indices.max() >= num_embeddings:
            raise IndexError(
                f"embedding index out of range [0, {num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        self._validate_indices(indices, self.num_embeddings)
        rec = _trace_state.recorder
        if rec is not None:
            # Replayed plans re-read the index buffer live; without this
            # step a compiled forecast would silently gather wrapped rows
            # for indices the eager path rejects (e.g. -1 sentinels).
            rec.add(
                lambda idx, n=self.num_embeddings: Embedding._validate_indices(idx, n),
                (indices,),
            )
        return self.weight[indices]


class GELU(Module):
    """GELU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class ReLU(Module):
    """ReLU activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    """Tanh activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    """Sigmoid activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Identity(Module):
    """Pass-through layer used when an optional block is disabled."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten all dimensions after the first (batch) dimension."""

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        return x.reshape(batch, int(np.prod(x.shape[1:])))
