"""Learning-rate schedulers."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "ReduceLROnPlateau"]


class LRScheduler:
    """Base class: adjusts ``optimizer.lr`` as training progresses."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def step(self, metric: float | None = None) -> None:
        self.last_epoch += 1
        self.optimizer.lr = self.get_lr(metric)

    def get_lr(self, metric: float | None = None) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 1, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, metric: float | None = None) -> float:
        exponent = self.last_epoch // self.step_size
        return self.base_lr * (self.gamma**exponent)


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, metric: float | None = None) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * progress))


class ReduceLROnPlateau(LRScheduler):
    """Halve the learning rate when a monitored metric stops improving."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 2,
        min_lr: float = 1e-6,
    ) -> None:
        super().__init__(optimizer)
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self._best = math.inf
        self._bad_epochs = 0
        self._current = optimizer.lr

    def get_lr(self, metric: float | None = None) -> float:
        if metric is None:
            return self._current
        if metric < self._best - 1e-12:
            self._best = metric
            self._bad_epochs = 0
        else:
            self._bad_epochs += 1
            if self._bad_epochs > self.patience:
                self._current = max(self._current * self.factor, self.min_lr)
                self._bad_epochs = 0
        return self._current
