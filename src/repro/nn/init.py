"""Weight initialisation utilities."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "kaiming_uniform", "zeros_", "uniform_"]


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 2:
        fan = int(shape[0]) if shape else 1
        return fan, fan
    fan_out, fan_in = shape[0], shape[1]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return fan_in * receptive, fan_out * receptive


def xavier_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return (generator.standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(shape: Tuple[int, ...], rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming uniform initialisation (fan-in mode)."""
    generator = rng if rng is not None else np.random.default_rng()
    fan_in, _ = _fan_in_fan_out(shape)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return generator.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros_(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float32)


def uniform_(shape: Tuple[int, ...], low: float, high: float, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    generator = rng if rng is not None else np.random.default_rng()
    return generator.uniform(low, high, size=shape).astype(np.float32)
