"""Loss functions for forecasting training and contrastive pre-training."""

from __future__ import annotations

import numpy as np

from . import functional as F
from .module import Module
from .tensor import Tensor, as_tensor

__all__ = [
    "MSELoss",
    "MAELoss",
    "SmoothL1Loss",
    "CrossEntropyLoss",
    "SymmetricContrastiveLoss",
]


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        diff = prediction - as_tensor(target)
        return (diff * diff).mean()


class MAELoss(Module):
    """Mean absolute error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        return (prediction - as_tensor(target)).abs().mean()


class SmoothL1Loss(Module):
    """Smooth L1 loss with threshold ``beta`` (paper Section III-B).

    Quadratic for absolute errors below ``beta`` (L2 behaviour, smooth
    gradients near the optimum) and linear above (L1 behaviour, robust to
    outliers).
    """

    def __init__(self, beta: float = 1.0) -> None:
        super().__init__()
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = beta

    def forward(self, prediction: Tensor, target) -> Tensor:
        return F.smooth_l1(prediction, as_tensor(target), beta=self.beta)


class CrossEntropyLoss(Module):
    """Cross entropy over raw logits with integer class targets."""

    def forward(self, logits: Tensor, target: np.ndarray) -> Tensor:
        target = np.asarray(target, dtype=np.int64)
        log_probs = F.log_softmax(logits, axis=-1)
        batch = logits.shape[0]
        picked = log_probs[np.arange(batch), target]
        return -picked.mean()


class SymmetricContrastiveLoss(Module):
    """CLIP-style symmetric cross-entropy over a similarity matrix.

    Given target-sequence embeddings ``V_T`` and covariate embeddings ``V_C``
    of a batch, the loss maximises the similarity of the ``b`` diagonal
    (matching) pairs while minimising the remaining ``b^2 - b`` pairs, taking
    the mean of a row-wise and a column-wise cross-entropy (paper Eq. for
    ``L_sce``).
    """

    def __init__(self, temperature: float = 0.07) -> None:
        super().__init__()
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.temperature = temperature
        self._cross_entropy = CrossEntropyLoss()

    def logits(self, target_embeddings: Tensor, covariate_embeddings: Tensor) -> Tensor:
        """Return the ``b x b`` scaled cosine-similarity matrix."""
        target_norm = _l2_normalise(target_embeddings)
        covariate_norm = _l2_normalise(covariate_embeddings)
        return (target_norm @ covariate_norm.swapaxes(-1, -2)) / self.temperature

    def forward(self, target_embeddings: Tensor, covariate_embeddings: Tensor) -> Tensor:
        logits = self.logits(target_embeddings, covariate_embeddings)
        batch = logits.shape[0]
        labels = np.arange(batch)
        loss_rows = self._cross_entropy(logits, labels)
        loss_cols = self._cross_entropy(logits.swapaxes(-1, -2), labels)
        return (loss_rows + loss_cols) * 0.5


def _l2_normalise(x: Tensor, eps: float = 1e-8) -> Tensor:
    norm = ((x * x).sum(axis=-1, keepdims=True) + eps).sqrt()
    return x / norm
