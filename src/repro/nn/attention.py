"""Attention modules shared by LiPFormer and the Transformer baselines."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor, concatenate

__all__ = ["SelfAttention", "MultiHeadSelfAttention", "ResidualSelfAttention"]


class SelfAttention(Module):
    """Single-head self-attention with separate Q/K/V projections.

    This is the ``Attn`` block of LiPFormer's Inter-Patch / Cross-Patch
    attention (Figure 4 of the paper): three linear projections followed by
    scaled dot-product attention, with no output projection, no LayerNorm and
    no feed-forward network.
    """

    def __init__(
        self,
        embed_dim: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.embed_dim = embed_dim
        self.query = Linear(embed_dim, embed_dim, rng=rng)
        self.key = Linear(embed_dim, embed_dim, rng=rng)
        self.value = Linear(embed_dim, embed_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        q = self.query(x)
        k = self.key(x)
        v = self.value(x)
        out = F.scaled_dot_product_attention(q, k, v)
        return self.dropout(out)


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention used by the Transformer baselines."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(f"embed_dim ({embed_dim}) must be divisible by num_heads ({num_heads})")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.qkv = Linear(embed_dim, 3 * embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        qkv = self.qkv(x)
        q = self._split_heads(qkv[:, :, : self.embed_dim], batch, length)
        k = self._split_heads(qkv[:, :, self.embed_dim : 2 * self.embed_dim], batch, length)
        v = self._split_heads(qkv[:, :, 2 * self.embed_dim :], batch, length)
        attended = F.scaled_dot_product_attention(q, k, v)
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, length, self.embed_dim)
        return self.dropout(self.out_proj(merged))


class ResidualSelfAttention(Module):
    """Self-attention with a residual connection (Covariate Encoder block)."""

    def __init__(
        self,
        embed_dim: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attention = SelfAttention(embed_dim, dropout=dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.attention(x) + x
