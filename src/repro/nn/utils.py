"""Miscellaneous utilities for the neural-network substrate."""

from __future__ import annotations

import random
from typing import Optional

import numpy as np

from .functional import manual_seed
from .module import Module

__all__ = ["seed_everything", "count_parameters", "clip_grad_norm"]


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python, NumPy and the shared stochastic-op RNGs; return a fresh ``Generator``."""
    random.seed(seed)
    np.random.seed(seed % (2**32))
    manual_seed(seed)
    return np.random.default_rng(seed)


def count_parameters(module: Module, trainable_only: bool = True) -> int:
    """Number of scalar parameters in ``module``."""
    return module.num_parameters()


def clip_grad_norm(module: Module, max_norm: float) -> float:
    """Clip the global gradient norm in place; return the pre-clip norm."""
    grads = [p.grad for p in module.parameters() if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g**2).sum()) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in module.parameters():
            if param.grad is not None:
                param.grad = param.grad * scale
    return total
