"""Numerical gradient checking used to validate the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor, get_default_dtype, set_default_dtype

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference estimate of d fn / d inputs[index]."""
    base = [np.array(arr, dtype=np.float64) for arr in inputs]
    grad = np.zeros_like(base[index])
    flat = base[index].reshape(-1)
    grad_flat = grad.reshape(-1)
    for position in range(flat.size):
        original = flat[position]
        flat[position] = original + eps
        plus = float(fn([Tensor(arr) for arr in base]).item())
        flat[position] = original - eps
        minus = float(fn([Tensor(arr) for arr in base]).item())
        flat[position] = original
        grad_flat[position] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-4,
) -> bool:
    """Compare analytic and numerical gradients of a scalar-valued ``fn``.

    Runs in float64 regardless of the library default so the finite
    difference estimate is meaningful.
    """
    previous_dtype = get_default_dtype()
    set_default_dtype(np.float64)
    try:
        tensors = [Tensor(np.array(arr, dtype=np.float64), requires_grad=True) for arr in inputs]
        output = fn(tensors)
        output.backward()
        for index, tensor in enumerate(tensors):
            numeric = numerical_gradient(fn, inputs, index, eps=eps)
            analytic = tensor.grad if tensor.grad is not None else np.zeros_like(numeric)
            if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
                max_err = float(np.max(np.abs(analytic - numeric)))
                raise AssertionError(
                    f"gradient mismatch for input {index}: max abs err {max_err:.3e}"
                )
        return True
    finally:
        set_default_dtype(previous_dtype)
