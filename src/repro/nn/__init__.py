"""``repro.nn`` — a compact NumPy deep-learning substrate.

The paper's artifact is implemented in PyTorch; this package provides the
equivalent primitives (autograd tensors, layers, attention, losses,
optimizers) so that LiPFormer and every baseline can be trained end to end
without external deep-learning dependencies.
"""

from . import functional
from .attention import MultiHeadSelfAttention, ResidualSelfAttention, SelfAttention
from .functional import default_generator, manual_seed
from .gradcheck import check_gradients, numerical_gradient
from .layers import (
    GELU,
    Dropout,
    Embedding,
    Flatten,
    Identity,
    LayerNorm,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from .losses import (
    CrossEntropyLoss,
    MAELoss,
    MSELoss,
    SmoothL1Loss,
    SymmetricContrastiveLoss,
)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, AdamW, Optimizer
from .plan import CompiledPredictor, InferencePlan, PlanUnsupported
from .scheduler import CosineAnnealingLR, LRScheduler, ReduceLROnPlateau, StepLR
from .serialization import load_module, load_state, save_module, save_state
from .tensor import (
    Tensor,
    arange,
    as_tensor,
    concatenate,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    ones,
    randn,
    set_default_dtype,
    stack,
    zeros,
)
from .utils import clip_grad_norm, count_parameters, seed_everything

__all__ = [
    "functional",
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "zeros",
    "ones",
    "randn",
    "arange",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Dropout",
    "LayerNorm",
    "Embedding",
    "GELU",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "SelfAttention",
    "MultiHeadSelfAttention",
    "ResidualSelfAttention",
    "MSELoss",
    "MAELoss",
    "SmoothL1Loss",
    "CrossEntropyLoss",
    "SymmetricContrastiveLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
    "manual_seed",
    "default_generator",
    "seed_everything",
    "count_parameters",
    "clip_grad_norm",
    "check_gradients",
    "numerical_gradient",
    "CompiledPredictor",
    "InferencePlan",
    "PlanUnsupported",
]
