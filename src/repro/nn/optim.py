"""Gradient-descent optimizers (SGD, Adam, AdamW)."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW"]


class Optimizer:
    """Base class holding the parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def set_parameters(self, parameters: Iterable[Parameter]) -> None:
        """Replace the managed parameter list.

        Per-parameter state (momentum / Adam moments) is kept for parameters
        that remain and dropped for parameters that are removed.  Used by the
        trainer to honour parameter freezes that happen after the optimizer
        was constructed (e.g. ``freeze_covariate_encoder`` post-pretraining).
        """
        params = list(parameters)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        self.parameters = params
        self._prune_state({id(param) for param in params})

    def _prune_state(self, keep_ids: set) -> None:
        """Drop per-parameter state for parameters no longer managed."""

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def _prune_state(self, keep_ids: set) -> None:
        self._velocity = {k: v for k, v in self._velocity.items() if k in keep_ids}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            update = param.grad
            if self.momentum > 0:
                velocity = self._velocity.get(id(param))
                velocity = update if velocity is None else self.momentum * velocity + update
                self._velocity[id(param)] = velocity
                update = velocity
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def _prune_state(self, keep_ids: set) -> None:
        self._m = {k: v for k, v in self._m.items() if k in keep_ids}
        self._v = {k: v for k, v in self._v.items() if k in keep_ids}

    def step(self) -> None:
        self._step += 1
        bias_correction1 = 1.0 - self.beta1**self._step
        bias_correction2 = 1.0 - self.beta2**self._step
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            m = self._m.get(key, np.zeros_like(param.data))
            v = self._v.get(key, np.zeros_like(param.data))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
            self._m[key] = m
            self._v[key] = v
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (the paper's optimizer of choice)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-2,
    ) -> None:
        super().__init__(parameters, lr, betas=betas, eps=eps, weight_decay=0.0)
        self.decoupled_weight_decay = weight_decay

    def step(self) -> None:
        if self.decoupled_weight_decay:
            for param in self.parameters:
                if param.grad is not None:
                    param.data = param.data * (1.0 - self.lr * self.decoupled_weight_decay)
        super().step()
