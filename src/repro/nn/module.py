"""Module / Parameter abstractions, mirroring a small subset of ``torch.nn``."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


_TENSOR_DATA = Tensor.data  # the base class's ``__slots__`` descriptor


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter.

    Every rebind of ``.data`` (optimizer steps, ``load_state_dict``,
    snapshot restores) bumps a monotonic per-parameter version counter.
    Compiled inference plans (:mod:`repro.nn.plan`) capture parameter
    arrays by reference at trace time and use the counter to detect that a
    captured array has gone stale — a stale plan must never serve old
    weights.  In-place writes (``param.data[...] = ...``) need no bump:
    plans read the same backing array and see the new values directly.
    """

    __slots__ = ("_version",)

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)

    def _rebind_data(self, value) -> None:
        _TENSOR_DATA.__set__(self, value)
        try:
            self._version += 1
        except AttributeError:  # first assignment, from Tensor.__init__
            self._version = 1

    # Reads go straight through the base slot descriptor (no Python-level
    # getter frame on the hot path); only writes pay the version bump.
    data = property(_TENSOR_DATA.__get__, _rebind_data)

    @property
    def version(self) -> int:
        """Monotonic count of ``.data`` rebinds (plan-staleness signal)."""
        return self._version


class Module:
    """Base class for every neural-network component.

    Sub-modules and parameters assigned as attributes are registered
    automatically, which makes ``parameters()``, ``state_dict()`` and
    ``train()/eval()`` work without any per-model bookkeeping.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        """Return all trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(param.size for param in self.parameters()))

    def parameter_version(self) -> int:
        """Sum of all parameters' rebind counters.

        Monotonically increasing under any weight mutation that rebinds a
        parameter's array (optimizer steps, ``load_state_dict``, restores);
        compiled inference plans key their validity on the per-parameter
        counters this aggregates.
        """
        return int(sum(getattr(param, "_version", 0) for param in self.parameters()))

    # ------------------------------------------------------------------ #
    # Training / evaluation state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to arrays (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for '{name}': expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------ #
    # Forward dispatch
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run sub-modules in order, feeding each output to the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


class ModuleList(Module):
    """A list of sub-modules that is properly registered for parameters."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, f"item{len(self._items)}", module)
        self._items.append(module)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover - container only
        raise RuntimeError("ModuleList is a container and cannot be called")
