"""Reverse-mode automatic differentiation on top of NumPy.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` substrate.  A ``Tensor`` wraps a ``numpy.ndarray`` and records
the operations applied to it so that gradients can be computed with a single
call to :meth:`Tensor.backward`.

The design mirrors the familiar PyTorch semantics at a much smaller scale:

* every differentiable operation returns a new ``Tensor`` whose
  ``_backward`` closure knows how to propagate gradients to its parents;
* ``backward()`` performs a topological sort of the recorded graph and runs
  the closures in reverse order;
* broadcasting is fully supported — gradients are "unbroadcast" (summed)
  back to the shape of each parent.

Only operations required by the forecasting models in this repository are
implemented, which keeps the engine small, auditable and easy to verify with
numerical gradient checking (see :mod:`repro.nn.gradcheck`).
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "zeros",
    "ones",
    "randn",
    "arange",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
]

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

_DEFAULT_DTYPE = np.float32


def set_default_dtype(dtype) -> None:
    """Set the dtype used for newly created tensors.

    Float32 is the default for speed; gradient-checking tests switch to
    float64 for numerical precision.
    """
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = np.dtype(dtype).type


def get_default_dtype():
    """Return the dtype used for newly created tensors."""
    return _DEFAULT_DTYPE


class _GradMode(threading.local):
    """Per-thread switch controlling whether operations record a graph.

    Thread-local, exactly like ``torch``'s grad mode: the parallel serving
    layer (``repro.runtime.PoolExecutor``) runs ``no_grad`` inference on
    worker threads, and a process-wide flag would let two overlapping
    ``no_grad`` blocks restore each other's state — leaving gradients
    disabled for an unrelated training thread (or forever).  Each thread
    starts with gradients enabled via the class-attribute default.
    """

    enabled: bool = True


_grad_mode = _GradMode()


class no_grad:
    """Context manager that disables gradient tracking.

    Used for inference and for optimizer parameter updates, exactly like
    ``torch.no_grad()``.  Affects only the current thread.
    """

    def __enter__(self) -> "no_grad":
        self._previous = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _grad_mode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _grad_mode.enabled


class MacCounter:
    """Accumulates multiply-accumulate operations of matrix products.

    Used by :mod:`repro.profiling.macs` to measure a model's computational
    cost by running a single forward pass inside :func:`count_macs`.
    """

    active: Optional["MacCounter"] = None

    def __init__(self) -> None:
        self.total = 0

    def add(self, macs: int) -> None:
        self.total += int(macs)


class count_macs:
    """Context manager that records MACs of every matmul executed inside it."""

    def __init__(self) -> None:
        self.counter = MacCounter()

    def __enter__(self) -> MacCounter:
        self._previous = MacCounter.active
        MacCounter.active = self.counter
        return self.counter

    def __exit__(self, exc_type, exc, tb) -> None:
        MacCounter.active = self._previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it has ``shape``.

    NumPy broadcasting can expand a parent operand along new leading axes or
    along axes of size one; the gradient flowing back must be summed over
    those expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over broadcast (size-1) dimensions.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = None
        self._prev: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward,
    ) -> "Tensor":
        """Create a result tensor, wiring the graph only when needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape)
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype)
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            Defaults to ``1`` which requires this tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data
        if MacCounter.active is not None:
            MacCounter.active.add(out_data.size * self.data.shape[-1])

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_other, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def var(self, axis=None, keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        if eps:
            out = out + eps
        return out

    def std(self, axis=None, keepdims: bool = False, eps: float = 1e-5) -> "Tensor":
        return self.var(axis=axis, keepdims=keepdims, eps=eps).sqrt()

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum along ``axis``.  Gradient flows to the arg-max entries."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                o = np.expand_dims(o, axis=axis)
            mask = (self.data == o).astype(self.data.dtype)
            # Split gradient evenly among ties to stay consistent.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / denom)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Element-wise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, minimum: Optional[float] = None, maximum: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, minimum, maximum)
        mask = np.ones_like(self.data)
        if minimum is not None:
            mask = mask * (self.data >= minimum)
        if maximum is not None:
            mask = mask * (self.data <= maximum)
        mask = mask.astype(self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(out_data, (self,), backward)

    def unsqueeze(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.expand_dims(grad, axis=axis))

        return Tensor._make(out_data, (self,), backward)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        out_data = np.broadcast_to(self.data, shape).copy()
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, original_shape))

        return Tensor._make(out_data, (self,), backward)

    def repeat(self, repeats: int, axis: int) -> "Tensor":
        """Repeat the tensor ``repeats`` times along ``axis`` (tile-style)."""
        out_data = np.repeat(self.data, repeats, axis=axis)
        original_dim = self.shape[axis]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            new_shape = list(grad.shape)
            new_shape[axis] = original_dim
            new_shape.insert(axis + 1, repeats)
            self._accumulate(grad.reshape(new_shape).sum(axis=axis + 1))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Comparison helpers (no gradient)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < as_tensor(other).data

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= as_tensor(other).data

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= as_tensor(other).data


# ---------------------------------------------------------------------- #
# Free functions on tensors
# ---------------------------------------------------------------------- #
def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if not tensor.requires_grad:
                continue
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(int(start), int(stop))
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def where_mask(mask: np.ndarray, when_true: Tensor, when_false: Tensor) -> Tensor:
    """Differentiable selection with a constant boolean mask."""
    when_true = as_tensor(when_true)
    when_false = as_tensor(when_false)
    mask_arr = np.asarray(mask, dtype=when_true.dtype)
    return when_true * Tensor(mask_arr) + when_false * Tensor(1.0 - mask_arr)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape: int, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    generator = rng if rng is not None else np.random.default_rng()
    return Tensor(generator.standard_normal(shape).astype(_DEFAULT_DTYPE), requires_grad=requires_grad)


def arange(stop: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(stop, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)
