"""Reverse-mode automatic differentiation on top of NumPy.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` substrate.  A ``Tensor`` wraps a ``numpy.ndarray`` and records
the operations applied to it so that gradients can be computed with a single
call to :meth:`Tensor.backward`.

The design mirrors the familiar PyTorch semantics at a much smaller scale:

* every differentiable operation returns a new ``Tensor`` whose
  ``_backward`` closure knows how to propagate gradients to its parents;
* ``backward()`` performs a topological sort of the recorded graph and runs
  the closures in reverse order;
* broadcasting is fully supported — gradients are "unbroadcast" (summed)
  back to the shape of each parent.

Every operation has two code paths, selected once per call:

* **grad path** — builds the ``_backward`` closure and wires the graph
  (:meth:`Tensor._node`);
* **no-grad fast path** — wraps the result with :meth:`Tensor._wrap`
  without creating the backward closure, parent references or graph
  bookkeeping at all.  Long-running inference services therefore carry no
  closure cells, no reference cycles, and no GC pressure from the graph.

The fast path is also where plan tracing hooks in: when a
:class:`repro.nn.plan.PlanRecorder` is installed (thread-locally), each
no-grad operation registers a replay kernel that recomputes its output
*into the very array produced at trace time*, which is what lets
:class:`repro.nn.plan.InferencePlan` re-execute a whole forward pass with
zero Python graph overhead and zero steady-state allocations.

Only operations required by the forecasting models in this repository are
implemented, which keeps the engine small, auditable and easy to verify with
numerical gradient checking (see :mod:`repro.nn.gradcheck`).
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "zeros",
    "ones",
    "randn",
    "arange",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
]

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

_DEFAULT_DTYPE = np.float32


def set_default_dtype(dtype) -> None:
    """Set the dtype used for newly created tensors.

    Float32 is the default for speed; gradient-checking tests switch to
    float64 for numerical precision.
    """
    global _DEFAULT_DTYPE
    _DEFAULT_DTYPE = np.dtype(dtype).type


def get_default_dtype():
    """Return the dtype used for newly created tensors."""
    return _DEFAULT_DTYPE


class _GradMode(threading.local):
    """Per-thread switch controlling whether operations record a graph.

    Thread-local, exactly like ``torch``'s grad mode: the parallel serving
    layer (``repro.runtime.PoolExecutor``) runs ``no_grad`` inference on
    worker threads, and a process-wide flag would let two overlapping
    ``no_grad`` blocks restore each other's state — leaving gradients
    disabled for an unrelated training thread (or forever).  Each thread
    starts with gradients enabled via the class-attribute default.
    """

    enabled: bool = True


_grad_mode = _GradMode()


class _TraceState(threading.local):
    """Per-thread plan recorder installed by :mod:`repro.nn.plan`.

    ``None`` (the class-attribute default) outside plan tracing.  Checked
    only on the no-grad fast path, so the grad path pays nothing for it.
    """

    recorder = None


_trace_state = _TraceState()


class no_grad:
    """Context manager that disables gradient tracking.

    Used for inference and for optimizer parameter updates, exactly like
    ``torch.no_grad()``.  Affects only the current thread.
    """

    def __enter__(self) -> "no_grad":
        self._previous = _grad_mode.enabled
        _grad_mode.enabled = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _grad_mode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _grad_mode.enabled


class MacCounter:
    """Accumulates multiply-accumulate operations of matrix products.

    Used by :mod:`repro.profiling.macs` to measure a model's computational
    cost by running a single forward pass inside :func:`count_macs`.
    """

    active: Optional["MacCounter"] = None

    def __init__(self) -> None:
        self.total = 0

    def add(self, macs: int) -> None:
        self.total += int(macs)


class count_macs:
    """Context manager that records MACs of every matmul executed inside it."""

    def __init__(self) -> None:
        self.counter = MacCounter()

    def __enter__(self) -> MacCounter:
        self._previous = MacCounter.active
        MacCounter.active = self.counter
        return self.counter

    def __exit__(self, exc_type, exc, tb) -> None:
        MacCounter.active = self._previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it has ``shape``.

    NumPy broadcasting can expand a parent operand along new leading axes or
    along axes of size one; the gradient flowing back must be summed over
    those expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over broadcast (size-1) dimensions.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward = None
        self._prev: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _wrap(data) -> "Tensor":
        """Fast no-grad result constructor: no closure, no parents, no graph.

        This is the whole point of the inference fast path — a tensor built
        here retains nothing but its array, so ``no_grad`` regions create no
        reference cycles and no ``_backward`` cells for the GC to chase.
        """
        if not isinstance(data, np.ndarray):
            data = np.asarray(data)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._prev = ()
        out.name = None
        return out

    @staticmethod
    def _node(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward,
    ) -> "Tensor":
        """Create a graph node (grad path only; caller checked grad mode)."""
        out = Tensor._wrap(data)
        out.requires_grad = True
        out._prev = tuple(p for p in parents if p.requires_grad)
        out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape)
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype)
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective with respect to this tensor.
            Defaults to ``1`` which requires this tensor to be a scalar.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        out_data = a + b
        if _grad_mode.enabled and (self.requires_grad or other.requires_grad):

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad, a.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad, b.shape))

            return Tensor._node(out_data, (self, other), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, b, o: np.add(a, b, out=o), (a, b, out_data), out_data)
        return Tensor._wrap(out_data)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        a = self.data
        out_data = -a
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(-grad)

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, o: np.negative(a, out=o), (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        out_data = a * b
        if _grad_mode.enabled and (self.requires_grad or other.requires_grad):

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad * b, a.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(grad * a, b.shape))

            return Tensor._node(out_data, (self, other), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, b, o: np.multiply(a, b, out=o), (a, b, out_data), out_data)
        return Tensor._wrap(out_data)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        out_data = a / b
        if _grad_mode.enabled and (self.requires_grad or other.requires_grad):

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(_unbroadcast(grad / b, a.shape))
                if other.requires_grad:
                    other._accumulate(_unbroadcast(-grad * a / (b**2), b.shape))

            return Tensor._node(out_data, (self, other), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, b, o: np.divide(a, b, out=o), (a, b, out_data), out_data)
        return Tensor._wrap(out_data)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self.data
        out_data = a**exponent
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * exponent * a ** (exponent - 1))

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            # ``ndarray.__pow__`` has value-specific fast paths, so replay
            # re-runs the operator itself (small temp) to stay bit-exact.
            rec.add(lambda a, o, e=exponent: np.copyto(o, a**e), (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        a, b = self.data, other.data
        out_data = a @ b
        if MacCounter.active is not None:
            MacCounter.active.add(out_data.size * a.shape[-1])
        if _grad_mode.enabled and (self.requires_grad or other.requires_grad):

            def backward(grad: np.ndarray) -> None:
                if self.requires_grad:
                    grad_self = grad @ np.swapaxes(b, -1, -2)
                    self._accumulate(_unbroadcast(grad_self, a.shape))
                if other.requires_grad:
                    grad_other = np.swapaxes(a, -1, -2) @ grad
                    other._accumulate(_unbroadcast(grad_other, b.shape))

            return Tensor._node(out_data, (self, other), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, b, o: np.matmul(a, b, out=o), (a, b, out_data), out_data)
        return Tensor._wrap(out_data)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        a = self.data
        out_data = np.asarray(a.sum(axis=axis, keepdims=keepdims))
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                g = grad
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                self._accumulate(np.broadcast_to(g, a.shape).astype(a.dtype))

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(
                lambda a, o, ax=axis, kd=keepdims: np.sum(a, axis=ax, keepdims=kd, out=o),
                (a, out_data),
                out_data,
            )
        return Tensor._wrap(out_data)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def var(self, axis=None, keepdims: bool = False, eps: float = 0.0) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        if eps:
            out = out + eps
        return out

    def std(self, axis=None, keepdims: bool = False, eps: float = 1e-5) -> "Tensor":
        return self.var(axis=axis, keepdims=keepdims, eps=eps).sqrt()

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum along ``axis``.  Gradient flows to the arg-max entries."""
        a = self.data
        out_data = np.asarray(a.max(axis=axis, keepdims=keepdims))
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                g = grad
                o = out_data
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                    o = np.expand_dims(o, axis=axis)
                mask = (a == o).astype(a.dtype)
                # Split gradient evenly among ties to stay consistent.
                denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(mask * g / denom)

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(
                lambda a, o, ax=axis, kd=keepdims: np.amax(a, axis=ax, keepdims=kd, out=o),
                (a, out_data),
                out_data,
            )
        return Tensor._wrap(out_data)

    # ------------------------------------------------------------------ #
    # Element-wise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        a = self.data
        out_data = np.exp(a)
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * out_data)

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, o: np.exp(a, out=o), (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def log(self) -> "Tensor":
        a = self.data
        out_data = np.log(a)
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad / a)

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, o: np.log(a, out=o), (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def sqrt(self) -> "Tensor":
        a = self.data
        out_data = np.sqrt(a)
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, o: np.sqrt(a, out=o), (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def abs(self) -> "Tensor":
        a = self.data
        out_data = np.abs(a)
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * np.sign(a))

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, o: np.abs(a, out=o), (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def tanh(self) -> "Tensor":
        a = self.data
        out_data = np.tanh(a)
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * (1.0 - out_data**2))

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, o: np.tanh(a, out=o), (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def sigmoid(self) -> "Tensor":
        a = self.data
        out_data = 1.0 / (1.0 + np.exp(-a))
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * out_data * (1.0 - out_data))

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:

            def run(a, o):
                np.negative(a, out=o)
                np.exp(o, out=o)
                np.add(1.0, o, out=o)
                np.divide(1.0, o, out=o)

            rec.add(run, (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def relu(self) -> "Tensor":
        a = self.data
        if _grad_mode.enabled and self.requires_grad:
            mask = (a > 0).astype(a.dtype)
            out_data = a * mask

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * mask)

            return Tensor._node(out_data, (self,), backward)
        out_data = np.maximum(a, 0.0)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(lambda a, o: np.maximum(a, 0.0, out=o), (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def clip(self, minimum: Optional[float] = None, maximum: Optional[float] = None) -> "Tensor":
        a = self.data
        out_data = np.clip(a, minimum, maximum)
        if _grad_mode.enabled and self.requires_grad:
            mask = np.ones_like(a)
            if minimum is not None:
                mask = mask * (a >= minimum)
            if maximum is not None:
                mask = mask * (a <= maximum)
            mask = mask.astype(a.dtype)

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad * mask)

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            rec.add(
                lambda a, o, mn=minimum, mx=maximum: np.clip(a, mn, mx, out=o),
                (a, out_data),
                out_data,
            )
        return Tensor._wrap(out_data)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self.data
        out_data = a.reshape(shape)
        if _grad_mode.enabled and self.requires_grad:
            original_shape = a.shape

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad.reshape(original_shape))

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None and not _is_view_of(out_data, a):
            # Non-contiguous source: numpy reshape copied.  Replay refills
            # the traced copy through a flat view — no temporaries.  The
            # source shape is read off the bound array so sliced replay
            # regroups the right number of rows.
            def run(a, o):
                o.reshape(a.shape)[...] = a

            rec.add(run, (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        if _grad_mode.enabled and self.requires_grad:
            inverse = tuple(np.argsort(axes))

            def backward(grad: np.ndarray) -> None:
                self._accumulate(grad.transpose(inverse))

            return Tensor._node(out_data, (self,), backward)
        return Tensor._wrap(out_data)  # always a view: replay reads through

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out_data = np.swapaxes(self.data, axis1, axis2)
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(np.swapaxes(grad, axis1, axis2))

            return Tensor._node(out_data, (self,), backward)
        return Tensor._wrap(out_data)  # view

    def unsqueeze(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis=axis)
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(np.squeeze(grad, axis=axis))

            return Tensor._node(out_data, (self,), backward)
        return Tensor._wrap(out_data)  # view

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                self._accumulate(np.expand_dims(grad, axis=axis))

            return Tensor._node(out_data, (self,), backward)
        return Tensor._wrap(out_data)  # view

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        a = self.data
        out_data = np.broadcast_to(a, shape).copy()
        if _grad_mode.enabled and self.requires_grad:
            original_shape = a.shape

            def backward(grad: np.ndarray) -> None:
                self._accumulate(_unbroadcast(grad, original_shape))

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:
            # The target shape is read off the bound output, not baked in,
            # so sliced replay broadcasts into the prefix slice.
            rec.add(
                lambda a, o: np.copyto(o, np.broadcast_to(a, o.shape)),
                (a, out_data),
                out_data,
            )
        return Tensor._wrap(out_data)

    def repeat(self, repeats: int, axis: int) -> "Tensor":
        """Repeat the tensor ``repeats`` times along ``axis`` (tile-style)."""
        a = self.data
        # Normalise once: both the backward reshape-and-insert and the
        # replay reshape build shapes positionally, where a negative axis
        # would regroup the wrong elements.
        axis = axis % a.ndim
        out_data = np.repeat(a, repeats, axis=axis)
        if _grad_mode.enabled and self.requires_grad:
            original_dim = a.shape[axis]

            def backward(grad: np.ndarray) -> None:
                new_shape = list(grad.shape)
                new_shape[axis] = original_dim
                new_shape.insert(axis + 1, repeats)
                self._accumulate(grad.reshape(new_shape).sum(axis=axis + 1))

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None:

            def run(a, o, ax=axis, r=repeats):
                expanded = a.shape[: ax + 1] + (r,) + a.shape[ax + 1 :]
                o.reshape(expanded)[...] = np.expand_dims(a, ax + 1)

            rec.add(run, (a, out_data), out_data)
        return Tensor._wrap(out_data)

    def __getitem__(self, index) -> "Tensor":
        a = self.data
        raw = a[index]
        out_data = raw if isinstance(raw, np.ndarray) else np.asarray(raw)
        if _grad_mode.enabled and self.requires_grad:

            def backward(grad: np.ndarray) -> None:
                full = np.zeros_like(a)
                np.add.at(full, index, grad)
                self._accumulate(full)

            return Tensor._node(out_data, (self,), backward)
        rec = _trace_state.recorder
        if rec is not None and not _is_view_of(out_data, a):
            if isinstance(index, np.ndarray) and index.dtype.kind in "iu":
                # Integer-array gather (Embedding lookup): the index array is
                # read live at replay, so plans follow fresh covariate inputs.
                rec.add(
                    lambda a, idx, o: np.take(a, idx, axis=0, out=o),
                    (a, index, out_data),
                    out_data,
                )
            else:

                def run(a, o, idx=index):
                    o[...] = a[idx]

                rec.add(run, (a, out_data), out_data)
        return Tensor._wrap(out_data)

    # ------------------------------------------------------------------ #
    # Comparison helpers (no gradient)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > as_tensor(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < as_tensor(other).data

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= as_tensor(other).data

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= as_tensor(other).data


def _is_view_of(out: np.ndarray, source: np.ndarray) -> bool:
    """Whether ``out`` is a no-copy view into ``source``'s memory.

    View results need no replay step in a traced plan: once the plan writes
    fresh values into the source buffer, every view derived from it at trace
    time reads the new data automatically.
    """
    return out.base is not None and np.may_share_memory(out, source)


# ---------------------------------------------------------------------- #
# Free functions on tensors
# ---------------------------------------------------------------------- #
def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    arrays = [t.data for t in tensors]
    out_data = np.concatenate(arrays, axis=axis)
    if _grad_mode.enabled and any(t.requires_grad for t in tensors):
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if not tensor.requires_grad:
                    continue
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate(grad[tuple(slicer)])

        return Tensor._node(out_data, tuple(tensors), backward)
    rec = _trace_state.recorder
    if rec is not None:
        rec.add(
            lambda *args, ax=axis: np.concatenate(args[:-1], axis=ax, out=args[-1]),
            (*arrays, out_data),
            out_data,
        )
    return Tensor._wrap(out_data)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    arrays = [t.data for t in tensors]
    out_data = np.stack(arrays, axis=axis)
    if _grad_mode.enabled and any(t.requires_grad for t in tensors):

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                if tensor.requires_grad:
                    tensor._accumulate(np.squeeze(piece, axis=axis))

        return Tensor._node(out_data, tuple(tensors), backward)
    rec = _trace_state.recorder
    if rec is not None:
        ax = axis % out_data.ndim

        def run(*args, ax=ax):
            o = args[-1]
            slicer = [slice(None)] * o.ndim
            for position, arr in enumerate(args[:-1]):
                slicer[ax] = position
                o[tuple(slicer)] = arr

        rec.add(run, (*arrays, out_data), out_data)
    return Tensor._wrap(out_data)


def where_mask(mask: np.ndarray, when_true: Tensor, when_false: Tensor) -> Tensor:
    """Differentiable selection with a constant boolean mask."""
    when_true = as_tensor(when_true)
    when_false = as_tensor(when_false)
    mask_arr = np.asarray(mask, dtype=when_true.dtype)
    return when_true * Tensor(mask_arr) + when_false * Tensor(1.0 - mask_arr)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape: int, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> Tensor:
    generator = rng if rng is not None else np.random.default_rng()
    return Tensor(generator.standard_normal(shape).astype(_DEFAULT_DTYPE), requires_grad=requires_grad)


def arange(stop: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(stop, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)
