"""Saving and loading model parameters as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from .module import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]


def save_state(state: Dict[str, np.ndarray], path: str, compressed: bool = False) -> None:
    """Write a state dict to ``path`` (``.npz``).

    ``compressed=True`` trades write time for zipped entries — the right
    default for snapshot archives that hold many small per-tenant arrays
    (cluster/streaming state), while model weights stay uncompressed for
    fast registry spill/reload.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    writer = np.savez_compressed if compressed else np.savez
    writer(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def save_module(module: Module, path: str) -> None:
    """Persist a module's parameters."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: str) -> Module:
    """Load parameters into ``module`` in place and return it."""
    module.load_state_dict(load_state(path))
    return module
