"""Functional building blocks used by layers and models.

These functions operate on :class:`repro.nn.tensor.Tensor` objects and are
fully differentiable through the autograd engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, _trace_state, _unbroadcast, as_tensor, concatenate, is_grad_enabled, stack, where_mask

__all__ = [
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "softmax_kernel",
    "log_softmax_kernel",
    "layer_norm_kernel",
    "gelu_kernel",
    "dropout",
    "manual_seed",
    "default_generator",
    "linear",
    "layer_norm",
    "scaled_dot_product_attention",
    "one_hot",
    "concatenate",
    "stack",
]

# Shared fallback generator for stochastic ops (dropout) that are called
# without an explicit ``rng``.  A module-level generator — reseedable via
# :func:`manual_seed` — makes two identically-seeded training runs produce
# identical losses even when callers never thread a generator through.
_generator: np.random.Generator = np.random.default_rng()


def manual_seed(seed: int) -> None:
    """Reseed the shared fallback generator used by stochastic ops.

    Mirrors ``torch.manual_seed``: after calling this, any stochastic
    function invoked without an explicit ``rng`` draws from a generator
    seeded with ``seed``, so runs are reproducible end to end.
    """
    global _generator
    _generator = np.random.default_rng(seed)


def default_generator() -> np.random.Generator:
    """The shared generator used when no explicit ``rng`` is supplied."""
    return _generator


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


_GELU_C = 0.7978845608028654  # sqrt(2 / pi)
_GELU_A = 0.044715


def gelu_kernel(
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
    inner_buf: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused GELU (tanh approximation) forward kernel (plain NumPy).

    The single source of truth shared by the eager autograd op below and by
    traced inference plans.  With ``out`` and ``inner_buf`` (both shaped
    like ``x``) the computation is allocation-free: ``inner_buf`` holds the
    tanh argument, ``out`` accumulates ``0.5 * x * (1 + tanh(...))``.  The
    operation order reproduces the former composite expression
    ``x * 0.5 * (((x + x^3 * a) * c).tanh() + 1)`` bit-for-bit.
    """
    inner = np.multiply(x, x, out=inner_buf)
    np.multiply(inner, x, out=inner)
    np.multiply(inner, _GELU_A, out=inner)
    np.add(x, inner, out=inner)
    np.multiply(inner, _GELU_C, out=inner)
    np.tanh(inner, out=inner)
    np.add(inner, 1.0, out=inner)
    result = np.multiply(x, 0.5, out=out)
    np.multiply(result, inner, out=result)
    return result


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, primitive op)."""
    x = as_tensor(x)
    a = x.data
    if is_grad_enabled() and x.requires_grad:
        u = (a + a * a * a * _GELU_A) * _GELU_C
        t = np.tanh(u)
        out_data = a * 0.5 * (t + 1.0)

        def backward(grad: np.ndarray) -> None:
            du = _GELU_C * (1.0 + 3.0 * _GELU_A * a * a)
            x._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * a * (1.0 - t * t) * du))

        return Tensor._node(out_data, (x,), backward)
    out_data = gelu_kernel(a)
    rec = _trace_state.recorder
    if rec is not None:
        inner_buf = np.empty_like(out_data)
        rec.add(
            lambda a, ib, o: gelu_kernel(a, out=o, inner_buf=ib),
            (a, inner_buf, out_data),
            out_data,
            scratch=(inner_buf,),
        )
    return Tensor._wrap(out_data)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softmax_kernel(
    x: np.ndarray,
    axis: int = -1,
    out: Optional[np.ndarray] = None,
    reduce_buf: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Numerically stable softmax forward kernel (plain NumPy).

    The single source of truth shared by the eager autograd op below and by
    traced inference plans (:mod:`repro.nn.plan`).  When ``out`` (shaped
    like ``x``) and ``reduce_buf`` (shaped like ``x`` with ``axis`` reduced
    to 1) are given, the computation is allocation-free: ``reduce_buf``
    holds the row maximum and is then reused for the normalising sum.
    """
    mx = np.amax(x, axis=axis, keepdims=True, out=reduce_buf)
    shifted = np.subtract(x, mx, out=out)
    np.exp(shifted, out=shifted)
    total = np.sum(shifted, axis=axis, keepdims=True, out=reduce_buf)
    np.divide(shifted, total, out=shifted)
    return shifted


def log_softmax_kernel(
    x: np.ndarray,
    axis: int = -1,
    out: Optional[np.ndarray] = None,
    exp_buf: Optional[np.ndarray] = None,
    reduce_buf: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Numerically stable log-softmax forward kernel (plain NumPy).

    With ``out`` / ``exp_buf`` (shaped like ``x``) and ``reduce_buf``
    (``axis`` reduced to 1) the computation is allocation-free:
    ``reduce_buf`` holds the row maximum and is then reused for the
    normalising sum, exactly as in :func:`softmax_kernel`.
    """
    mx = np.amax(x, axis=axis, keepdims=True, out=reduce_buf)
    shifted = np.subtract(x, mx, out=out)
    exp = np.exp(shifted, out=exp_buf)
    total = np.sum(exp, axis=axis, keepdims=True, out=reduce_buf)
    np.log(total, out=total)
    np.subtract(shifted, total, out=shifted)
    return shifted


def layer_norm_kernel(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    eps: float = 1e-5,
    out: Optional[np.ndarray] = None,
    square_buf: Optional[np.ndarray] = None,
    reduce_buf: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Layer-normalisation forward kernel over the last dimension.

    Shared by the eager autograd op and traced plans; with ``out`` /
    ``square_buf`` (shaped like ``x``) and ``reduce_buf`` (last dim reduced
    to 1) the computation is allocation-free.  ``reduce_buf`` holds the mean
    until ``centered`` is formed, then the variance/denominator.
    """
    n = float(x.shape[-1])
    mean = np.sum(x, axis=-1, keepdims=True, out=reduce_buf)
    np.divide(mean, n, out=mean)
    centered = np.subtract(x, mean, out=out)
    squares = np.multiply(centered, centered, out=square_buf)
    denom = np.sum(squares, axis=-1, keepdims=True, out=reduce_buf)
    np.divide(denom, n, out=denom)
    np.add(denom, eps, out=denom)
    np.sqrt(denom, out=denom)
    np.divide(centered, denom, out=centered)
    np.multiply(centered, weight, out=centered)
    np.add(centered, bias, out=centered)
    return centered


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` (primitive autograd op)."""
    x = as_tensor(x)
    a = x.data
    out_data = softmax_kernel(a, axis=axis)
    if is_grad_enabled() and x.requires_grad:

        def backward(grad: np.ndarray) -> None:
            inner = np.sum(grad * out_data, axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - inner))

        return Tensor._node(out_data, (x,), backward)
    rec = _trace_state.recorder
    if rec is not None:
        reduced = list(a.shape)
        reduced[axis] = 1
        reduce_buf = np.empty(tuple(reduced), dtype=out_data.dtype)
        rec.add(
            lambda a, rb, o, ax=axis: softmax_kernel(a, axis=ax, out=o, reduce_buf=rb),
            (a, reduce_buf, out_data),
            out_data,
            scratch=(reduce_buf,),
        )
    return Tensor._wrap(out_data)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis``, computed stably (primitive op)."""
    x = as_tensor(x)
    a = x.data
    out_data = log_softmax_kernel(a, axis=axis)
    if is_grad_enabled() and x.requires_grad:

        def backward(grad: np.ndarray) -> None:
            total = np.sum(grad, axis=axis, keepdims=True)
            x._accumulate(grad - np.exp(out_data) * total)

        return Tensor._node(out_data, (x,), backward)
    rec = _trace_state.recorder
    if rec is not None:
        reduced = list(a.shape)
        reduced[axis] = 1
        exp_buf = np.empty_like(out_data)
        reduce_buf = np.empty(tuple(reduced), dtype=out_data.dtype)
        rec.add(
            lambda a, eb, rb, o, ax=axis: log_softmax_kernel(
                a, axis=ax, out=o, exp_buf=eb, reduce_buf=rb
            ),
            (a, exp_buf, reduce_buf, out_data),
            out_data,
            scratch=(exp_buf, reduce_buf),
        )
    return Tensor._wrap(out_data)


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` during training.

    When ``rng`` is ``None`` the mask is drawn from the module-level
    generator (see :func:`manual_seed`) rather than a fresh unseeded
    ``np.random.default_rng()`` per call, so seeded runs are reproducible.
    """
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    generator = rng if rng is not None else _generator
    mask = (generator.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` matching ``torch.nn.functional.linear``."""
    out = x @ weight.swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    return out


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension (primitive autograd op)."""
    x = as_tensor(x)
    weight = as_tensor(weight)
    bias = as_tensor(bias)
    a, w, b = x.data, weight.data, bias.data
    if is_grad_enabled() and (x.requires_grad or weight.requires_grad or bias.requires_grad):
        n = float(a.shape[-1])
        mean = np.sum(a, axis=-1, keepdims=True) / n
        centered = a - mean
        sigma = np.sqrt(np.sum(centered * centered, axis=-1, keepdims=True) / n + eps)
        normalised = centered / sigma
        out_data = normalised * w + b

        def backward(grad: np.ndarray) -> None:
            if bias.requires_grad:
                bias._accumulate(_unbroadcast(grad, b.shape))
            if weight.requires_grad:
                weight._accumulate(_unbroadcast(grad * normalised, w.shape))
            if x.requires_grad:
                d_norm = grad * w
                m1 = np.mean(d_norm, axis=-1, keepdims=True)
                m2 = np.mean(d_norm * normalised, axis=-1, keepdims=True)
                x._accumulate((d_norm - m1 - normalised * m2) / sigma)

        return Tensor._node(out_data, (x, weight, bias), backward)
    out_data = layer_norm_kernel(a, w, b, eps=eps)
    rec = _trace_state.recorder
    if rec is not None:
        square_buf = np.empty_like(out_data)
        reduce_buf = np.empty(a.shape[:-1] + (1,), dtype=out_data.dtype)
        rec.add(
            lambda a, w, b, sq, rb, o, e=eps: layer_norm_kernel(
                a, w, b, eps=e, out=o, square_buf=sq, reduce_buf=rb
            ),
            (a, w, b, square_buf, reduce_buf, out_data),
            out_data,
            scratch=(square_buf, reduce_buf),
        )
    return Tensor._wrap(out_data)


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    dropout_p: float = 0.0,
    training: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Standard scaled dot-product attention ``softmax(QK^T / sqrt(d)) V``."""
    d_k = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) / float(np.sqrt(d_k))
    weights = softmax(scores, axis=-1)
    if dropout_p > 0.0:
        weights = dropout(weights, dropout_p, training, rng=rng)
    return weights @ value


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer array (plain NumPy, no gradient)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float32)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def smooth_l1(prediction: Tensor, target: Tensor, beta: float = 1.0) -> Tensor:
    """Smooth L1 (Huber-style) loss used by the paper's Base Predictor."""
    diff = prediction - as_tensor(target)
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear_branch = abs_diff - 0.5 * beta
    mask = (abs_diff.data < beta).astype(diff.dtype)
    return where_mask(mask, quadratic, linear_branch).mean()
