"""Functional building blocks used by layers and models.

These functions operate on :class:`repro.nn.tensor.Tensor` objects and are
fully differentiable through the autograd engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, as_tensor, concatenate, stack, where_mask

__all__ = [
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "manual_seed",
    "default_generator",
    "linear",
    "layer_norm",
    "scaled_dot_product_attention",
    "one_hot",
    "concatenate",
    "stack",
]

# Shared fallback generator for stochastic ops (dropout) that are called
# without an explicit ``rng``.  A module-level generator — reseedable via
# :func:`manual_seed` — makes two identically-seeded training runs produce
# identical losses even when callers never thread a generator through.
_generator: np.random.Generator = np.random.default_rng()


def manual_seed(seed: int) -> None:
    """Reseed the shared fallback generator used by stochastic ops.

    Mirrors ``torch.manual_seed``: after calling this, any stochastic
    function invoked without an explicit ``rng`` draws from a generator
    seeded with ``seed``, so runs are reproducible end to end.
    """
    global _generator
    _generator = np.random.default_rng(seed)


def default_generator() -> np.random.Generator:
    """The shared generator used when no explicit ``rng`` is supplied."""
    return _generator


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return as_tensor(x).relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    x = as_tensor(x)
    inner = (x + x * x * x * 0.044715) * 0.7978845608028654
    return x * 0.5 * (inner.tanh() + 1.0)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log of the softmax along ``axis``, computed stably."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(
    x: Tensor,
    p: float,
    training: bool,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` during training.

    When ``rng`` is ``None`` the mask is drawn from the module-level
    generator (see :func:`manual_seed`) rather than a fresh unseeded
    ``np.random.default_rng()`` per call, so seeded runs are reproducible.
    """
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    generator = rng if rng is not None else _generator
    mask = (generator.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` matching ``torch.nn.functional.linear``."""
    out = x @ weight.swapaxes(-1, -2)
    if bias is not None:
        out = out + bias
    return out


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalised = centered / (variance + eps).sqrt()
    return normalised * weight + bias


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    dropout_p: float = 0.0,
    training: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Standard scaled dot-product attention ``softmax(QK^T / sqrt(d)) V``."""
    d_k = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) / float(np.sqrt(d_k))
    weights = softmax(scores, axis=-1)
    if dropout_p > 0.0:
        weights = dropout(weights, dropout_p, training, rng=rng)
    return weights @ value


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode an integer array (plain NumPy, no gradient)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float32)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def smooth_l1(prediction: Tensor, target: Tensor, beta: float = 1.0) -> Tensor:
    """Smooth L1 (Huber-style) loss used by the paper's Base Predictor."""
    diff = prediction - as_tensor(target)
    abs_diff = diff.abs()
    quadratic = (diff * diff) * (0.5 / beta)
    linear_branch = abs_diff - 0.5 * beta
    mask = (abs_diff.data < beta).astype(diff.dtype)
    return where_mask(mask, quadratic, linear_branch).mean()
