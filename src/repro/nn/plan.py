"""Compiled graph-free inference plans.

LiPFormer's pitch is *lightweight* inference, yet an eager forward pass
still pays per-op Python overhead on every call: ``Tensor`` wrapping,
grad-mode checks, and a fresh ndarray allocation for every intermediate.
This module removes all of it for the steady-state serving hot path:

* :class:`PlanRecorder` — installed thread-locally while a model's
  ``forward`` runs once under ``no_grad``.  Every tensor operation on the
  no-grad fast path registers a *replay kernel*: a closure that recomputes
  the op's output **into the very array produced at trace time** (via
  ``out=``-style NumPy calls).  View-producing ops (transpose, slicing,
  contiguous reshape) register nothing at all — once the plan refreshes a
  source buffer, every view derived from it reads the new data for free.

* :class:`InferencePlan` — the flat, ordered list of replay kernels plus
  the preallocated buffer arena (the trace-time intermediates themselves).
  ``run`` copies fresh inputs into the input buffers, executes the kernels
  in order, and returns the output buffer — no ``Tensor`` objects, no graph
  bookkeeping, and zero new arena allocations per call.  Parameters are
  captured as live array references, so a plan is only valid while no
  parameter has been rebound; staleness is detected through the per-
  :class:`~repro.nn.module.Parameter` version counter (bumped on every
  ``.data`` assignment — optimizer steps, ``load_state_dict``, restores).

* :class:`CompiledPredictor` — a per-model plan cache keyed by input
  signature (shapes/covariate presence), with LRU eviction, transparent
  re-tracing on staleness, and a non-blocking lock so concurrent callers
  sharing one model fall back to eager instead of serialising (eager and
  compiled outputs are bit-identical, so the fallback is invisible).

Correctness model: tracing assumes the forward's *structure* depends only
on input shapes, never on input values.  All ``repro.nn`` tensor ops and
the ``softmax`` / ``layer_norm`` / ``log_softmax`` primitives satisfy this;
models computing raw-NumPy, value-dependent constants inside ``forward``
must not enable ``supports_compiled_plan``.  Every freshly traced plan is
self-checked by replaying it on the traced inputs and requiring the output
to match the eager result exactly before it may serve traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..runtime.annotations import guarded_by, requires_lock
from .tensor import Tensor, _trace_state, no_grad

__all__ = ["PlanUnsupported", "PlanRecorder", "InferencePlan", "CompiledPredictor"]


class PlanUnsupported(RuntimeError):
    """The model (or environment) cannot be traced into a plan.

    Raised during tracing only; callers fall back to eager inference.
    """


class PlanRecorder:
    """Collects replay kernels while a forward pass is being traced."""

    __slots__ = ("steps", "arena_nbytes")

    def __init__(self) -> None:
        self.steps: List[Callable[[], object]] = []
        self.arena_nbytes = 0

    def add(self, run: Callable[[], object], out: Optional[np.ndarray] = None) -> None:
        """Register one replay kernel; ``out`` is its arena buffer."""
        self.steps.append(run)
        if out is not None:
            self.arena_nbytes += out.nbytes

    def scratch(self, *arrays: np.ndarray) -> None:
        """Account scratch buffers owned by composite kernels."""
        for array in arrays:
            self.arena_nbytes += array.nbytes

    def unsupported(self, reason: str) -> None:
        """Abort the trace (called from op sites that cannot replay)."""
        raise PlanUnsupported(reason)


class _recording:
    """Install ``recorder`` thread-locally for the duration of a trace."""

    def __init__(self, recorder: PlanRecorder) -> None:
        self._recorder = recorder

    def __enter__(self) -> PlanRecorder:
        if _trace_state.recorder is not None:
            raise PlanUnsupported("nested plan tracing is not supported")
        _trace_state.recorder = self._recorder
        return self._recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        _trace_state.recorder = None


class InferencePlan:
    """A traced forward pass: flat replay kernels over a fixed buffer arena."""

    __slots__ = (
        "_steps",
        "_x_buf",
        "_fn_buf",
        "_fc_buf",
        "output",
        "_param_state",
        "arena_nbytes",
    )

    def __init__(
        self,
        steps: Tuple[Callable[[], object], ...],
        x_buf: np.ndarray,
        fn_buf: Optional[np.ndarray],
        fc_buf: Optional[np.ndarray],
        output: np.ndarray,
        param_state: Tuple[Tuple[Tensor, int], ...],
        arena_nbytes: int,
    ) -> None:
        self._steps = steps
        self._x_buf = x_buf
        self._fn_buf = fn_buf
        self._fc_buf = fc_buf
        self.output = output
        self._param_state = param_state
        self.arena_nbytes = arena_nbytes

    # ------------------------------------------------------------------ #
    @classmethod
    def trace(
        cls,
        model,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> "InferencePlan":
        """Trace ``model.forward`` once under ``no_grad`` into a plan.

        ``model`` must be in eval mode (stochastic layers like dropout
        would otherwise bake one sampled mask into every replay).  The
        traced output becomes the plan's output buffer; a replay self-check
        must reproduce it bit-for-bit before the plan is returned.
        """
        if getattr(model, "training", False):
            raise PlanUnsupported("plans are traced in eval mode only")
        x_buf = np.array(x, dtype=np.float32)
        wrapped = Tensor(x_buf)
        if wrapped.data is not x_buf:
            raise PlanUnsupported("default tensor dtype is not float32")
        fn_buf = None if future_numerical is None else np.array(future_numerical, dtype=np.float32)
        fc_buf = None if future_categorical is None else np.array(future_categorical, dtype=np.int64)

        recorder = PlanRecorder()
        with no_grad():
            with _recording(recorder):
                out = model.forward(
                    wrapped, future_numerical=fn_buf, future_categorical=fc_buf
                )
        if not isinstance(out, Tensor):
            raise PlanUnsupported(f"forward returned {type(out).__name__}, not a Tensor")

        param_state = tuple(
            (param, getattr(param, "_version", 0)) for param in model.parameters()
        )
        plan = cls(
            steps=tuple(recorder.steps),
            x_buf=x_buf,
            fn_buf=fn_buf,
            fc_buf=fc_buf,
            output=out.data,
            param_state=param_state,
            arena_nbytes=recorder.arena_nbytes,
        )
        # Self-check: replaying over the traced inputs must reproduce the
        # eager output exactly, or the plan never serves a single request.
        expected = plan.output.copy()
        plan._replay()
        if not np.array_equal(plan.output, expected):
            raise PlanUnsupported("replay self-check diverged from the eager forward")
        return plan

    # ------------------------------------------------------------------ #
    def is_stale(self) -> bool:
        """Whether any captured parameter has been rebound since tracing."""
        return any(getattr(param, "_version", 0) != version for param, version in self._param_state)

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    def _replay(self) -> None:
        for step in self._steps:
            step()

    def run(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
        copy: bool = True,
    ) -> np.ndarray:
        """Execute the plan on fresh inputs.

        With ``copy=False`` the internal output buffer is returned: valid
        only until the next ``run`` — callers that retain results (the
        serving layer resolving request handles) must take the copy.
        """
        if x.shape != self._x_buf.shape:
            raise ValueError(f"plan expects input shape {self._x_buf.shape}, got {x.shape}")
        if (future_numerical is None) != (self._fn_buf is None) or (
            future_categorical is None
        ) != (self._fc_buf is None):
            raise ValueError("plan was traced with a different covariate signature")
        for name, value, buffer in (
            ("future_numerical", future_numerical, self._fn_buf),
            ("future_categorical", future_categorical, self._fc_buf),
        ):
            # Exact-shape check: np.copyto would happily broadcast a
            # narrower covariate block into the buffer and serve a wrong
            # forecast silently.
            if buffer is not None and np.shape(value) != buffer.shape:
                raise ValueError(
                    f"plan expects {name} shape {buffer.shape}, got {np.shape(value)}"
                )
        np.copyto(self._x_buf, x)
        if self._fn_buf is not None:
            np.copyto(self._fn_buf, future_numerical)
        if self._fc_buf is not None:
            np.copyto(self._fc_buf, future_categorical)
        self._replay()
        return self.output.copy() if copy else self.output


@guarded_by(
    "_plans", "_unsupported", "hits", "traces", "fallbacks", "invalidations",
    "capacity", lock="_lock",
)
class CompiledPredictor:
    """Per-model cache of :class:`InferencePlan` objects, keyed by signature.

    ``predict`` returns the forecast array, or ``None`` when the caller
    should run eager inference instead (unsupported model, lock contention
    from another thread sharing this model, or a failed trace).  Because a
    valid plan's output is bit-identical to eager ``no_grad`` inference,
    interleaving the two paths is invisible to callers.
    """

    def __init__(self, model, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.model = model
        self.capacity = capacity
        self._plans: "OrderedDict[Tuple, InferencePlan]" = OrderedDict()
        # Signatures whose trace failed, tagged with the model's parameter
        # version at failure time: a weight change retires the marker, so a
        # transient failure (bad weights, mid-swap state) never disables
        # the compiled path permanently.  Kept apart from the plan LRU so
        # markers neither consume plan capacity nor evict live plans.
        self._unsupported: "OrderedDict[Tuple, int]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.traces = 0
        self.fallbacks = 0
        self.invalidations = 0

    @staticmethod
    def _key(
        x: np.ndarray,
        future_numerical: Optional[np.ndarray],
        future_categorical: Optional[np.ndarray],
    ) -> Tuple:
        return (
            x.shape,
            None if future_numerical is None else np.shape(future_numerical),
            None if future_categorical is None else np.shape(future_categorical),
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def reserve(self, capacity: int) -> None:
        """Grow (never shrink) the plan cache.

        The serving layer calls this with its batch-shape budget: a flush
        loop produces tail batches of any size up to ``max_batch_size``,
        and an LRU smaller than the live shape population would thrash —
        every miss re-traces (several eager forwards' worth of work) under
        the predictor lock.  Capped by the caller; plans are only traced
        for shapes that actually occur, so reserved-but-unused slots cost
        nothing.
        """
        with self._lock:
            self.capacity = max(self.capacity, int(capacity))

    def _parameter_version(self) -> int:
        version = getattr(self.model, "parameter_version", None)
        return int(version()) if callable(version) else 0

    @property
    def needs_eval_trace(self) -> bool:
        """Whether a miss just now requires eval mode to trace.

        Plans replay regardless of the train/eval flag, but *tracing* must
        happen in eval mode (dropout masks must not be baked in).  When the
        model is mid-training, ``predict`` declines to trace and the caller
        decides whether to flip to eval and retry.
        """
        return bool(getattr(self.model, "training", False))

    def plan_for(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Optional[InferencePlan]:
        """The cached plan for this signature, if any (test/debug helper)."""
        with self._lock:
            return self._plans.get(self._key(x, future_numerical, future_categorical))

    def predict(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """Run (tracing on demand) the plan for this input signature.

        Returns ``None`` when the caller must fall back to eager inference.
        Exceptions raised by the model's own ``forward`` (validation
        errors and the like) propagate unchanged, exactly as eager would.
        """
        if not self._lock.acquire(blocking=False):
            # Another thread is replaying over this model's arenas; eager
            # fallback keeps concurrent callers parallel instead of queued.
            return None
        try:
            return self._predict_locked(x, future_numerical, future_categorical)
        finally:
            self._lock.release()

    @requires_lock("_lock")
    def _predict_locked(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray],
        future_categorical: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        # Split out of predict(): the non-blocking acquire/try/finally
        # above is not a lock shape the analyzer (or a reader) can see
        # through, and the guarded state is only touched here.
        key = self._key(x, future_numerical, future_categorical)
        marker = self._unsupported.get(key)
        if marker is not None:
            if marker == self._parameter_version():
                self.fallbacks += 1
                return None
            # Weights changed since the failed trace: retry below.
            del self._unsupported[key]
        entry = self._plans.get(key)
        if entry is not None and entry.is_stale():
            del self._plans[key]
            self.invalidations += 1
            entry = None
        if entry is None:
            if getattr(self.model, "training", False):
                # Tracing needs eval mode; don't poison the cache —
                # the caller may flip the flag and retry.
                return None
            try:
                entry = InferencePlan.trace(
                    self.model, x, future_numerical, future_categorical
                )
            except PlanUnsupported:
                self._unsupported[key] = self._parameter_version()
                while len(self._unsupported) > 4 * self.capacity:
                    self._unsupported.popitem(last=False)
                self.fallbacks += 1
                return None
            self.traces += 1
            self._plans[key] = entry
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
            # The trace itself already computed this call's forecast.
            return entry.output.copy()
        self._plans.move_to_end(key)
        self.hits += 1
        return entry.run(x, future_numerical, future_categorical, copy=True)
