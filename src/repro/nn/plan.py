"""Compiled graph-free inference plans.

LiPFormer's pitch is *lightweight* inference, yet an eager forward pass
still pays per-op Python overhead on every call: ``Tensor`` wrapping,
grad-mode checks, and a fresh ndarray allocation for every intermediate.
This module removes all of it for the steady-state serving hot path with a
**two-stage compile pipeline**:

* :class:`PlanRecorder` — installed thread-locally while a model's
  ``forward`` runs once under ``no_grad``.  Every tensor operation on the
  no-grad fast path registers a *replay step*: a kernel function plus the
  explicit tuple of arrays it reads and writes (``kernel(*arrays)``
  recomputes the op's output in place).  View-producing ops (transpose,
  slicing, contiguous reshape) register nothing at all — once the plan
  refreshes a source buffer, every view derived from it reads the new data
  for free.

* **Stage one — liveness.**  The flat step list is analysed for first/last
  use of every recorded buffer (uses through views are attributed to the
  owning base), then an offline greedy-by-size pass packs the buffers into
  one shared byte arena: a dead intermediate's storage is reused by later
  buffers, so plan memory tracks *peak liveness*, not trace depth.  Scratch
  buffers of composite kernels participate.  The replay self-check stays
  bit-for-bit — if relocation ever perturbs a kernel, the plan falls back
  to standalone buffers before it may serve traffic.

* **Stage two — batch polymorphism.**  A plan is traced once at a bucket
  batch size ``B`` and replayed on *leading-dim slices* of the arena: every
  batch-scaled buffer (taint-propagated from the inputs) is bound to its
  ``[: b * rows_per_batch]`` prefix, so any ``batch <= B`` hits the same
  plan with zero re-tracing.  Slice replay is validated bit-exactly against
  eager at trace time; kernels that bake the batch dimension into a
  reduction demote the plan to *padded* replay (rows are edge-replicated up
  to the bucket and the output truncated), and genuinely batch-coupled
  models demote further to exact-shape plans.  :class:`CompiledPredictor`
  keys its cache on the **batch-free signature** and grows power-of-two
  buckets on demand, so a workload cycling batch sizes ``1..B`` traces at
  most ``ceil(log2(B)) + 1`` plans instead of one per size.

Correctness model: tracing assumes the forward's *structure* depends only
on input shapes, never on input values.  All ``repro.nn`` tensor ops and
the ``softmax`` / ``layer_norm`` / ``gelu`` primitives satisfy this; models
computing raw-NumPy, value-dependent constants inside ``forward`` must not
enable ``supports_compiled_plan``.  Every freshly traced plan is
self-checked by replaying it on the traced inputs and requiring the output
to match the eager result exactly before it may serve traffic.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..runtime.annotations import guarded_by, requires_lock
from .tensor import Tensor, _trace_state, no_grad

__all__ = [
    "PlanUnsupported",
    "PlanRecorder",
    "InferencePlan",
    "CompiledPredictor",
    "bucket_for",
]

# Arena offsets are aligned so relocated buffers keep whatever SIMD/BLAS
# alignment the original heap allocations had; misalignment is a bit-
# exactness risk, not just a speed one.
_ARENA_ALIGN = 64


def bucket_for(batch: int) -> int:
    """Smallest power of two >= ``batch`` — the plan bucket that serves it."""
    if batch < 1:
        raise ValueError(f"batch must be positive, got {batch}")
    return 1 << (batch - 1).bit_length()


class PlanUnsupported(RuntimeError):
    """The model (or environment) cannot be traced into a plan.

    Raised during tracing only; callers fall back to eager inference.
    """


class _Step:
    """One replay step: ``kernel(*arrays)`` recomputes ``out`` in place.

    ``arrays`` is the full positional binding — inputs, scratch and the
    output buffer — which is what lets the compile stage relocate buffers
    into the arena and rebind leading-dim slices without touching the
    kernel: nothing shape- or address-like is closed over.
    """

    __slots__ = ("kernel", "arrays", "out", "scratch")

    def __init__(
        self,
        kernel: Callable[..., object],
        arrays: Tuple[np.ndarray, ...],
        out: Optional[np.ndarray],
        scratch: Tuple[np.ndarray, ...],
    ) -> None:
        self.kernel = kernel
        self.arrays = arrays
        self.out = out
        self.scratch = scratch


class PlanRecorder:
    """Collects replay steps while a forward pass is being traced."""

    __slots__ = ("steps", "arena_nbytes")

    def __init__(self) -> None:
        self.steps: List[_Step] = []
        # Sum of every recorded buffer's bytes — what a plan would cost
        # *without* the liveness pass.  Kept as the baseline the arena
        # reduction is measured against.
        self.arena_nbytes = 0

    def add(
        self,
        kernel: Callable[..., object],
        arrays: Tuple[np.ndarray, ...] = (),
        out: Optional[np.ndarray] = None,
        scratch: Tuple[np.ndarray, ...] = (),
    ) -> None:
        """Register one replay step.

        ``kernel`` is invoked as ``kernel(*arrays)`` at replay; ``out`` is
        the buffer it (re)computes, ``scratch`` any same-step temporaries a
        composite kernel owns.  Both must appear in ``arrays`` so the
        compile stage can rebind them.
        """
        self.steps.append(_Step(kernel, tuple(arrays), out, tuple(scratch)))
        if out is not None:
            self.arena_nbytes += out.nbytes
        for array in scratch:
            self.arena_nbytes += array.nbytes

    def unsupported(self, reason: str) -> None:
        """Abort the trace (called from op sites that cannot replay)."""
        raise PlanUnsupported(reason)


class _recording:
    """Install ``recorder`` thread-locally for the duration of a trace."""

    def __init__(self, recorder: PlanRecorder) -> None:
        self._recorder = recorder

    def __enter__(self) -> PlanRecorder:
        if _trace_state.recorder is not None:
            raise PlanUnsupported("nested plan tracing is not supported")
        _trace_state.recorder = self._recorder
        return self._recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        _trace_state.recorder = None


def _addr(array: np.ndarray) -> int:
    return array.__array_interface__["data"][0]


class _Slot:
    """One array position in one step after compilation.

    ``array`` is the (possibly arena-relocated) full-batch array; ``axis``
    is the leading-dim slice axis for batch-polymorphic replay (``None``
    for batch-independent arrays) and ``rows`` the row count per unit of
    batch along that axis.
    """

    __slots__ = ("array", "axis", "rows")

    def __init__(self, array: np.ndarray, axis: Optional[int], rows: int) -> None:
        self.array = array
        self.axis = axis
        self.rows = rows

    def bind(self, batch: int) -> np.ndarray:
        if self.axis is None:
            return self.array
        n = batch * self.rows
        if self.axis == 0:
            return self.array[:n]
        slicer = [slice(None)] * self.array.ndim
        slicer[self.axis] = slice(0, n)
        return self.array[tuple(slicer)]


class _CompileResult:
    __slots__ = (
        "kernels",
        "step_slots",
        "out_slot",
        "arena",
        "arena_nbytes",
        "sliceable",
    )

    def __init__(self, kernels, step_slots, out_slot, arena, arena_nbytes, sliceable):
        self.kernels = kernels
        self.step_slots = step_slots
        self.out_slot = out_slot
        self.arena = arena
        self.arena_nbytes = arena_nbytes
        self.sliceable = sliceable


def _compile_steps(
    steps: List[_Step],
    inputs: List[np.ndarray],
    output: np.ndarray,
    max_batch: int,
    use_arena: bool = True,
) -> _CompileResult:
    """Liveness + arena packing + batch-slice metadata over a raw trace.

    Returns the rebindable step table.  ``use_arena=False`` keeps every
    buffer in its original storage (the fallback when relocation perturbs
    a kernel's bit pattern).
    """
    owned: "OrderedDict[int, np.ndarray]" = OrderedDict()
    def_step: Dict[int, int] = {}
    for i, step in enumerate(steps):
        buffers = step.scratch if step.out is None else (step.out,) + step.scratch
        for buf in buffers:
            if id(buf) not in owned:
                owned[id(buf)] = buf
                def_step[id(buf)] = i
    input_ids = {id(buf) for buf in inputs}
    # NumPy collapses view chains to the *ultimate* base, which for a
    # buffer that was itself built as a view of a private temp (e.g. a
    # copying reshape) skips the owned array entirely.  The address-range
    # index catches those: any array whose memory falls inside an owned
    # buffer's range belongs to it.
    ranges = [
        (_addr(buf), _addr(buf) + buf.nbytes, buf)
        for buf in list(owned.values()) + inputs
        if buf.nbytes
    ]
    memo: Dict[int, Optional[np.ndarray]] = {}

    def resolve(array: np.ndarray) -> Optional[np.ndarray]:
        found = memo.get(id(array), False)
        if found is not False:
            return found
        root: Optional[np.ndarray] = None
        node = array
        while node is not None:
            if id(node) in owned or id(node) in input_ids:
                root = node
                break
            node = node.base
        if root is None and array.nbytes:
            addr = _addr(array)
            for start, end, buf in ranges:
                if start <= addr < end:
                    root = buf
                    break
        memo[id(array)] = root
        return root

    # ---- liveness: last use per owned buffer, views attributed to base --
    last_use = dict(def_step)
    for i, step in enumerate(steps):
        for array in step.arrays:
            root = resolve(array)
            if root is not None and id(root) in owned:
                last_use[id(root)] = i
    out_root = resolve(output)
    if out_root is not None and id(out_root) in owned:
        # The caller reads the output after the final step: pin it.
        last_use[id(out_root)] = len(steps)

    # ---- batch taint: which buffers scale with the leading batch dim ----
    tainted = set(input_ids)
    factor: Dict[int, int] = {ident: 1 for ident in input_ids}
    sliceable = True
    for i, step in enumerate(steps):
        own_here = {id(step.out)} | {id(s) for s in step.scratch}
        reads_tainted = False
        for array in step.arrays:
            root = resolve(array)
            if root is not None and id(root) in tainted and id(root) not in own_here:
                reads_tainted = True
                break
        if not reads_tainted:
            continue
        buffers = step.scratch if step.out is None else (step.out,) + step.scratch
        for buf in buffers:
            tainted.add(id(buf))
            if buf.ndim >= 1 and buf.shape[0] > 0 and buf.shape[0] % max_batch == 0:
                factor[id(buf)] = buf.shape[0] // max_batch
            else:
                sliceable = False
    if out_root is None or id(out_root) not in tainted or id(out_root) not in factor:
        # A forecast that does not scale with the batch cannot be sliced.
        sliceable = False

    # ---- arena allocation over owned, C-contiguous buffers --------------
    # Offline greedy-by-size placement (the planner used by TFLite/XLA):
    # every lifetime interval is known before placement, so the largest
    # buffers are placed first at the lowest offset that avoids every
    # already-placed buffer with an overlapping lifetime.  Online first-fit
    # fragments around long-lived small buffers; this ordering reaches the
    # peak-liveness lower bound on the LiPFormer trace.
    arena = None
    offsets: Dict[int, int] = {}
    arena_total = 0
    if use_arena:
        intervals: List[Tuple[int, int, int, int]] = []  # (size, born, last, id)
        for ident, buf in owned.items():
            if not buf.flags.c_contiguous or buf.nbytes == 0:
                continue
            size = -(-buf.nbytes // _ARENA_ALIGN) * _ARENA_ALIGN
            # A buffer read at step i stays allocated through i: storage is
            # reusable only by buffers *defined strictly later*, which rules
            # out same-step aliasing (e.g. matmul out overlapping an input).
            intervals.append((size, def_step[ident], last_use[ident], ident))
        placed: List[Tuple[int, int, int, int]] = []  # (offset, size, born, last)
        for size, born, last, ident in sorted(
            intervals, key=lambda iv: (-iv[0], iv[1], iv[3])
        ):
            gaps = sorted(
                (off, used)
                for off, used, p_born, p_last in placed
                if born <= p_last and last >= p_born
            )
            cursor = 0
            offset = None
            for off, used in gaps:
                if off - cursor >= size:
                    offset = cursor
                    break
                cursor = max(cursor, off + used)
            if offset is None:
                offset = cursor
            offsets[ident] = offset
            placed.append((offset, size, born, last))
            arena_total = max(arena_total, offset + size)
        if arena_total:
            arena = np.empty(arena_total, dtype=np.uint8)

    mapping: Dict[int, np.ndarray] = {}
    for ident, buf in owned.items():
        if arena is not None and ident in offsets:
            mapping[ident] = np.ndarray(
                buf.shape, dtype=buf.dtype, buffer=arena, offset=offsets[ident]
            )
        else:
            mapping[ident] = buf
            arena_total += buf.nbytes

    # ---- slot construction: relocation + slice metadata per array -------
    slot_failed = False

    def make_slot(array: np.ndarray) -> _Slot:
        nonlocal slot_failed
        root = resolve(array)
        if root is None:
            return _Slot(array, None, 0)
        new_root = mapping.get(id(root), root)
        if array is root:
            new_array = new_root
        elif new_root is root:
            new_array = array  # root not relocated: the old view still reads it
        else:
            new_array = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=new_root,
                offset=_addr(array) - _addr(root),
                strides=array.strides,
            )
        if id(root) not in tainted or id(root) not in factor:
            return _Slot(new_array, None, 0)
        if array is root:
            return _Slot(new_array, 0, factor[id(root)])
        # A view axis j is the batch axis when its entries tile the root's
        # whole batch extent in order and everything else (other axes plus
        # the view's starting offset) stays inside a single j-step.  Then
        # slicing j to ``batch * shape[j] / max_batch`` entries confines the
        # view to exactly the first ``batch`` samples' bytes.
        root_extent = new_root.strides[0] * new_root.shape[0]
        start = _addr(array) - _addr(root)
        for j in range(new_array.ndim):
            step_bytes, n = new_array.strides[j], new_array.shape[j]
            if n <= 0 or n % max_batch or step_bytes <= 0:
                continue
            if step_bytes * n != root_extent:
                continue
            sub = sum(
                new_array.strides[k] * (new_array.shape[k] - 1)
                for k in range(new_array.ndim)
                if k != j and new_array.shape[k] > 1
            )
            if any(
                new_array.strides[k] < 0
                for k in range(new_array.ndim)
                if new_array.shape[k] > 1
            ):
                continue
            if start + sub + new_array.itemsize <= step_bytes:
                return _Slot(new_array, j, n // max_batch)
        # View collapses or reorders the batch dim: no prefix slice exists.
        slot_failed = True
        return _Slot(new_array, None, 0)

    kernels = []
    step_slots = []
    for step in steps:
        kernels.append(step.kernel)
        step_slots.append(tuple(make_slot(array) for array in step.arrays))
    out_slot = make_slot(output)
    if slot_failed:
        sliceable = False
    return _CompileResult(
        tuple(kernels), tuple(step_slots), out_slot, arena, arena_total, sliceable
    )


class InferencePlan:
    """A traced forward pass: rebindable replay steps over a packed arena.

    One plan serves every batch size up to its trace-time ``max_batch``:
    *sliced* replay binds each batch-scaled buffer to a leading-dim prefix,
    *padded* replay (the fallback for plans whose kernels bake the batch
    dim into reductions) edge-replicates rows up to the bucket and
    truncates the output.  Plans that fail even the padded validation serve
    only their exact traced shape.
    """

    __slots__ = (
        "_kernels",
        "_step_slots",
        "_out_slot",
        "_x_slot",
        "_fn_slot",
        "_fc_slot",
        "_x_buf",
        "_fn_buf",
        "_fc_buf",
        "_arena",
        "_bound",
        "output",
        "_param_state",
        "max_batch",
        "sliceable",
        "pad_safe",
        "naive_nbytes",
        "arena_nbytes",
        "_out_rows",
        "demotions",
    )

    def __init__(self) -> None:
        raise TypeError("use InferencePlan.trace() to build a plan")

    # ------------------------------------------------------------------ #
    @classmethod
    def trace(
        cls,
        model,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> "InferencePlan":
        """Trace ``model.forward`` once under ``no_grad`` into a plan.

        ``model`` must be in eval mode (stochastic layers like dropout
        would otherwise bake one sampled mask into every replay).  The
        traced output becomes the plan's output buffer; a replay self-check
        must reproduce it bit-for-bit before the plan is returned.
        """
        if getattr(model, "training", False):
            raise PlanUnsupported("plans are traced in eval mode only")
        x_buf = np.array(x, dtype=np.float32)
        wrapped = Tensor(x_buf)
        if wrapped.data is not x_buf:
            raise PlanUnsupported("default tensor dtype is not float32")
        fn_buf = None if future_numerical is None else np.array(future_numerical, dtype=np.float32)
        fc_buf = None if future_categorical is None else np.array(future_categorical, dtype=np.int64)

        recorder = PlanRecorder()
        with no_grad():
            with _recording(recorder):
                out = model.forward(
                    wrapped, future_numerical=fn_buf, future_categorical=fc_buf
                )
        if not isinstance(out, Tensor):
            raise PlanUnsupported(f"forward returned {type(out).__name__}, not a Tensor")
        if out.data.ndim < 1:
            raise PlanUnsupported("forward returned a scalar; plans need a batch dim")

        param_state = tuple(
            (param, getattr(param, "_version", 0)) for param in model.parameters()
        )
        expected = out.data.copy()
        max_batch = x_buf.shape[0]
        inputs = [buf for buf in (x_buf, fn_buf, fc_buf) if buf is not None]

        plan = cls._build(
            recorder, inputs, x_buf, fn_buf, fc_buf, out.data, param_state,
            max_batch, use_arena=True,
        )
        # Self-check: replaying over the traced inputs must reproduce the
        # eager output exactly.  If arena relocation perturbed a kernel
        # (alignment-sensitive BLAS paths), retry with standalone buffers
        # before giving up on the plan entirely.
        plan._replay_full()
        if not np.array_equal(plan.output, expected):
            plan = cls._build(
                recorder, inputs, x_buf, fn_buf, fc_buf, out.data, param_state,
                max_batch, use_arena=False,
            )
            plan._replay_full()
            if not np.array_equal(plan.output, expected):
                raise PlanUnsupported("replay self-check diverged from the eager forward")

        plan._validate_polymorphism(model, x_buf, fn_buf, fc_buf)
        return plan

    @classmethod
    def _build(
        cls,
        recorder: PlanRecorder,
        inputs: List[np.ndarray],
        x_buf: np.ndarray,
        fn_buf: Optional[np.ndarray],
        fc_buf: Optional[np.ndarray],
        output: np.ndarray,
        param_state,
        max_batch: int,
        use_arena: bool,
    ) -> "InferencePlan":
        compiled = _compile_steps(recorder.steps, inputs, output, max_batch, use_arena)
        plan = object.__new__(cls)
        plan._kernels = compiled.kernels
        plan._step_slots = compiled.step_slots
        plan._out_slot = compiled.out_slot
        plan._x_slot = _Slot(x_buf, 0, x_buf.shape[0] // max_batch)
        plan._fn_slot = None if fn_buf is None else _Slot(fn_buf, 0, fn_buf.shape[0] // max_batch)
        plan._fc_slot = None if fc_buf is None else _Slot(fc_buf, 0, fc_buf.shape[0] // max_batch)
        plan._x_buf = x_buf
        plan._fn_buf = fn_buf
        plan._fc_buf = fc_buf
        plan._arena = compiled.arena
        plan._bound = {}
        plan.output = compiled.out_slot.array
        plan._param_state = param_state
        plan.max_batch = max_batch
        plan.sliceable = compiled.sliceable
        plan.pad_safe = False
        plan.naive_nbytes = recorder.arena_nbytes
        plan.arena_nbytes = compiled.arena_nbytes
        # (tier, reason) pairs explaining why a replay tier was demoted.
        plan.demotions = []
        plan._out_rows = (
            plan.output.shape[0] // max_batch
            if plan.output.ndim >= 1 and plan.output.shape[0] % max_batch == 0
            else 0
        )
        return plan

    # ------------------------------------------------------------------ #
    def _validate_polymorphism(self, model, x_buf, fn_buf, fc_buf) -> None:
        """Cross-check sliced and padded replay against eager at small batches.

        Sliced replay must be bit-identical to eager on a strict prefix of
        the traced inputs; any divergence (baked batch constants, batch-dim
        reductions) demotes the plan to padded replay, which in turn must
        reproduce eager on the *real* rows of a padded batch.  Plans
        failing both serve only their exact traced shape.
        """
        B = self.max_batch
        if B <= 1:
            self.pad_safe = self._out_rows > 0
            return
        probes = sorted({1, B // 2, B - 1})

        def eager(b: int) -> np.ndarray:
            with no_grad():
                result = model.forward(
                    Tensor(x_buf[:b].copy()),
                    future_numerical=None if fn_buf is None else fn_buf[:b].copy(),
                    future_categorical=None if fc_buf is None else fc_buf[:b].copy(),
                )
            return result.data

        if self.sliceable:
            for b in probes:
                try:
                    got = self._run_sliced(
                        x_buf[:b],
                        None if fn_buf is None else fn_buf[:b],
                        None if fc_buf is None else fc_buf[:b],
                        copy=True,
                    )
                except Exception as exc:
                    self.demotions.append(("sliced", repr(exc)))
                    self.sliceable = False
                    break
                if not np.array_equal(got, eager(b)):
                    self.demotions.append(("sliced", f"diverged from eager at batch {b}"))
                    self.sliceable = False
                    break
        if not self.sliceable and self._out_rows > 0:
            b = probes[0]
            try:
                got = self._run_padded(
                    x_buf[:b],
                    None if fn_buf is None else fn_buf[:b],
                    None if fc_buf is None else fc_buf[:b],
                    copy=True,
                )
                self.pad_safe = np.array_equal(got, eager(b))
                if not self.pad_safe:
                    self.demotions.append(("padded", f"diverged from eager at batch {b}"))
            except Exception as exc:
                self.demotions.append(("padded", repr(exc)))
                self.pad_safe = False
        # Leave the arena in the full-batch state the self-check verified.
        self._replay_inputs_full(x_buf, fn_buf, fc_buf)

    def _replay_inputs_full(self, x, fn, fc) -> None:
        np.copyto(self._x_buf, x)
        if self._fn_buf is not None:
            np.copyto(self._fn_buf, fn)
        if self._fc_buf is not None:
            np.copyto(self._fc_buf, fc)
        self._replay_full()

    # ------------------------------------------------------------------ #
    def is_stale(self) -> bool:
        """Whether any captured parameter has been rebound since tracing."""
        return any(getattr(param, "_version", 0) != version for param, version in self._param_state)

    @property
    def n_steps(self) -> int:
        return len(self._kernels)

    def serves(self, batch: int) -> bool:
        """Whether this plan can serve ``batch`` rows."""
        if batch == self.max_batch:
            return True
        return batch < self.max_batch and (self.sliceable or self.pad_safe)

    def _replay_full(self) -> None:
        bound = self._bound.get(self.max_batch)
        if bound is None:
            bound = tuple(tuple(slot.array for slot in slots) for slots in self._step_slots)
            self._bound[self.max_batch] = bound
        for kernel, arrays in zip(self._kernels, bound):
            kernel(*arrays)

    def _bind(self, batch: int):
        bound = tuple(
            tuple(slot.bind(batch) for slot in slots) for slots in self._step_slots
        )
        self._bound[batch] = bound
        return bound

    def _check_shapes(self, x, future_numerical, future_categorical) -> int:
        batch = x.shape[0] if x.ndim else 0
        if x.shape[1:] != self._x_buf.shape[1:] or batch > self.max_batch or batch < 1:
            raise ValueError(f"plan expects input shape {self._x_buf.shape}, got {x.shape}")
        if (future_numerical is None) != (self._fn_buf is None) or (
            future_categorical is None
        ) != (self._fc_buf is None):
            raise ValueError("plan was traced with a different covariate signature")
        for name, value, buffer in (
            ("future_numerical", future_numerical, self._fn_buf),
            ("future_categorical", future_categorical, self._fc_buf),
        ):
            # Exact-shape check: np.copyto would happily broadcast a
            # narrower covariate block into the buffer and serve a wrong
            # forecast silently.
            if buffer is not None and np.shape(value) != (batch,) + buffer.shape[1:]:
                raise ValueError(
                    f"plan expects {name} shape {(batch,) + buffer.shape[1:]}, "
                    f"got {np.shape(value)}"
                )
        return batch

    def run(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
        copy: bool = True,
    ) -> np.ndarray:
        """Execute the plan on fresh inputs of any batch size it serves.

        With ``copy=False`` the internal output buffer is returned: valid
        only until the next ``run`` — callers that retain results (the
        serving layer resolving request handles) must take the copy.
        """
        batch = self._check_shapes(x, future_numerical, future_categorical)
        if batch == self.max_batch:
            np.copyto(self._x_buf, x)
            if self._fn_buf is not None:
                np.copyto(self._fn_buf, future_numerical)
            if self._fc_buf is not None:
                np.copyto(self._fc_buf, future_categorical)
            self._replay_full()
            return self.output.copy() if copy else self.output
        if self.sliceable:
            return self._run_sliced(x, future_numerical, future_categorical, copy)
        if self.pad_safe:
            return self._run_padded(x, future_numerical, future_categorical, copy)
        raise ValueError(
            f"plan expects input shape {self._x_buf.shape}, got {x.shape}"
        )

    def _run_sliced(self, x, future_numerical, future_categorical, copy) -> np.ndarray:
        batch = x.shape[0]
        bound = self._bound.get(batch)
        if bound is None:
            bound = self._bind(batch)
        np.copyto(self._x_slot.bind(batch), x)
        if self._fn_slot is not None:
            np.copyto(self._fn_slot.bind(batch), future_numerical)
        if self._fc_slot is not None:
            np.copyto(self._fc_slot.bind(batch), future_categorical)
        for kernel, arrays in zip(self._kernels, bound):
            kernel(*arrays)
        out = self._out_slot.bind(batch)
        return out.copy() if copy else out

    def _run_padded(self, x, future_numerical, future_categorical, copy) -> np.ndarray:
        batch = x.shape[0]
        # Edge-replicate the last real row: always valid model input (and
        # in-range for categorical embeddings), recomputed rows beyond
        # ``batch`` are sliced off below.
        np.copyto(self._x_buf[:batch], x)
        np.copyto(self._x_buf[batch:], x[-1:])
        if self._fn_buf is not None:
            np.copyto(self._fn_buf[:batch], future_numerical)
            np.copyto(self._fn_buf[batch:], future_numerical[-1:])
        if self._fc_buf is not None:
            np.copyto(self._fc_buf[:batch], future_categorical)
            np.copyto(self._fc_buf[batch:], future_categorical[-1:])
        self._replay_full()
        out = self.output[: batch * self._out_rows]
        return out.copy() if copy else out


@guarded_by(
    "_plans", "_unsupported", "hits", "traces", "fallbacks", "invalidations",
    "capacity", "max_batch", lock="_lock",
)
class CompiledPredictor:
    """Per-model cache of :class:`InferencePlan` objects, keyed by signature.

    The key is **batch-free**: one cache entry per (trailing input shape,
    covariate signature), holding power-of-two bucket plans grown on
    demand.  A sliceable bucket plan serves every smaller batch directly,
    so the steady state is one plan per signature; non-sliceable models
    keep at most ``ceil(log2(max_batch)) + 1`` bucket plans.

    ``predict`` returns the forecast array, or ``None`` when the caller
    should run eager inference instead (unsupported model, lock contention
    from another thread sharing this model, or a failed trace).  Because a
    valid plan's output is bit-identical to eager ``no_grad`` inference,
    interleaving the two paths is invisible to callers.
    """

    def __init__(self, model, capacity: int = 16, max_batch: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        self.model = model
        self.capacity = capacity
        self.max_batch = max_batch
        # signature -> OrderedDict[bucket batch -> plan]
        self._plans: "OrderedDict[Tuple, OrderedDict[int, InferencePlan]]" = OrderedDict()
        # Signatures whose trace failed, tagged with the model's parameter
        # version at failure time: a weight change retires the marker, so a
        # transient failure (bad weights, mid-swap state) never disables
        # the compiled path permanently.  Kept apart from the plan LRU so
        # markers neither consume plan capacity nor evict live plans.
        self._unsupported: "OrderedDict[Tuple, int]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.traces = 0
        self.fallbacks = 0
        self.invalidations = 0
        # Weakly bound metrics-registry view over the cache counters, so
        # hit/trace/fallback/demotion rates show up next to the serving
        # latency histograms without a second bookkeeping path.
        obs.register_stats("repro_plan_cache", self._stats_snapshot)

    def _stats_snapshot(self) -> Dict[str, int]:
        """Cache counters plus the live plan count, under the lock."""
        with self._lock:
            return {
                "hits": self.hits,
                "traces": self.traces,
                "fallbacks": self.fallbacks,
                "invalidations": self.invalidations,
                "plans": sum(len(buckets) for buckets in self._plans.values()),
            }

    @staticmethod
    def _key(
        x: np.ndarray,
        future_numerical: Optional[np.ndarray],
        future_categorical: Optional[np.ndarray],
    ) -> Tuple:
        # Batch-free: the leading dim is served polymorphically by bucket
        # plans, so it must not fragment the cache.
        return (
            x.shape[1:],
            None if future_numerical is None else np.shape(future_numerical)[1:],
            None if future_categorical is None else np.shape(future_categorical)[1:],
        )

    def __len__(self) -> int:
        with self._lock:
            return sum(len(buckets) for buckets in self._plans.values())

    def reserve(self, capacity: int) -> None:
        """Grow (never shrink) the signature-entry budget.

        The serving layer calls this with its covariate-signature budget:
        since the key dropped the batch dim, entries track distinct tenant
        *signatures* only, and an LRU smaller than the live signature
        population would thrash — every miss re-traces (several eager
        forwards' worth of work) under the predictor lock.
        """
        with self._lock:
            self.capacity = max(self.capacity, int(capacity))

    def grow_max_batch(self, max_batch: int) -> None:
        """Raise (never shrink) the configured polymorphic trace width.

        ``max_batch`` is the batch size ``warmup`` paths trace at — one
        sliceable plan at that width serves every smaller batch.  Growing
        it never invalidates existing plans; they keep serving their own
        buckets.
        """
        with self._lock:
            self.max_batch = max(self.max_batch, int(max_batch))

    def _parameter_version(self) -> int:
        version = getattr(self.model, "parameter_version", None)
        return int(version()) if callable(version) else 0

    @property
    def needs_eval_trace(self) -> bool:
        """Whether a miss just now requires eval mode to trace.

        Plans replay regardless of the train/eval flag, but *tracing* must
        happen in eval mode (dropout masks must not be baked in).  When the
        model is mid-training, ``predict`` declines to trace and the caller
        decides whether to flip to eval and retry.
        """
        return bool(getattr(self.model, "training", False))

    def plan_for(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Optional[InferencePlan]:
        """The cached plan that would serve this input, if any (test helper)."""
        with self._lock:
            buckets = self._plans.get(self._key(x, future_numerical, future_categorical))
            if not buckets:
                return None
            batch = x.shape[0]
            for size in sorted(buckets):
                if size >= batch and buckets[size].serves(batch):
                    return buckets[size]
            return None

    @staticmethod
    def _padded(buf: Optional[np.ndarray], target: int) -> Optional[np.ndarray]:
        """Edge-replicate ``buf`` rows up to ``target`` (trace-time only)."""
        if buf is None:
            return None
        buf = np.asarray(buf)
        if buf.shape[0] == target:
            return buf
        out = np.empty((target,) + buf.shape[1:], dtype=buf.dtype)
        out[: buf.shape[0]] = buf
        out[buf.shape[0]:] = buf[-1:]
        return out

    def predict(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """Run (tracing on demand) the bucket plan serving this input.

        Returns ``None`` when the caller must fall back to eager inference.
        Exceptions raised by the model's own ``forward`` (validation
        errors and the like) propagate unchanged, exactly as eager would.
        """
        if not self._lock.acquire(blocking=False):
            # Another thread is replaying over this model's arenas; eager
            # fallback keeps concurrent callers parallel instead of queued.
            return None
        try:
            return self._predict_locked(x, future_numerical, future_categorical)
        finally:
            self._lock.release()

    @requires_lock("_lock")
    def _predict_locked(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray],
        future_categorical: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        # Split out of predict(): the non-blocking acquire/try/finally
        # above is not a lock shape the analyzer (or a reader) can see
        # through, and the guarded state is only touched here.
        key = self._key(x, future_numerical, future_categorical)
        marker = self._unsupported.get(key)
        if marker is not None:
            if marker == self._parameter_version():
                self.fallbacks += 1
                return None
            # Weights changed since the failed trace: retry below.
            del self._unsupported[key]
        batch = x.shape[0]
        buckets = self._plans.get(key)
        if buckets is not None:
            for size in sorted(buckets):
                plan = buckets[size]
                if plan.is_stale():
                    del buckets[size]
                    self.invalidations += 1
                    continue
                if size >= batch and plan.serves(batch):
                    self._plans.move_to_end(key)
                    self.hits += 1
                    with obs.span("plan.replay", batch=batch, bucket=size):
                        return plan.run(x, future_numerical, future_categorical, copy=True)
        if getattr(self.model, "training", False):
            # Tracing needs eval mode; don't poison the cache —
            # the caller may flip the flag and retry.
            return None
        # Trace a new bucket plan.  Exact-only models (both polymorphic
        # validations failed) get an exact-shape plan for this batch
        # instead — the pre-refactor behavior, kept as the safety floor.
        exact_only = buckets is not None and any(
            not (plan.sliceable or plan.pad_safe) for plan in buckets.values()
        )
        target = batch if exact_only else bucket_for(batch)
        try:
            plan = InferencePlan.trace(
                self.model,
                self._padded(x, target),
                self._padded(future_numerical, target),
                self._padded(future_categorical, target),
            )
        except PlanUnsupported:
            self._unsupported[key] = self._parameter_version()
            while len(self._unsupported) > 4 * self.capacity:
                self._unsupported.popitem(last=False)
            self.fallbacks += 1
            return None
        self.traces += 1
        if buckets is None:
            buckets = self._plans.setdefault(key, OrderedDict())
        if plan.sliceable:
            # One polymorphic plan covers every smaller bucket: drop them.
            for size in [s for s in buckets if s < target]:
                del buckets[size]
        buckets[target] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
        if target == batch:
            # The trace itself already computed this call's forecast.
            return plan.output.copy()
        if plan.serves(batch):
            with obs.span("plan.replay", batch=batch, bucket=target):
                return plan.run(x, future_numerical, future_categorical, copy=True)
        # Padded trace of an exact-only model: its output rows are not
        # trustworthy for this batch — retrace at the exact shape.
        try:
            exact = InferencePlan.trace(self.model, x, future_numerical, future_categorical)
        except PlanUnsupported:
            self.fallbacks += 1
            return None
        self.traces += 1
        buckets[batch] = exact
        return exact.output.copy()
