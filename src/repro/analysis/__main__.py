"""CLI for the project linter: ``python -m repro.analysis src/``.

Exit codes: 0 — clean (baselined findings and stale baseline entries are
reported but do not fail the run); 1 — at least one non-baselined
finding; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .base import all_rules
from .baseline import Baseline
from .engine import Analyzer
from .reporters import REPORTERS

DEFAULT_BASELINE = "analysis-baseline.json"


def _locate_baseline(arg: str | None, paths: list) -> Path:
    if arg:
        return Path(arg)
    # Default: analysis-baseline.json next to the scanned tree's root
    # (repo root when invoked as ``python -m repro.analysis src/``).
    anchor = Path(paths[0]) if paths else Path.cwd()
    anchor = anchor if anchor.is_dir() else anchor.parent
    for candidate in [anchor, *anchor.resolve().parents]:
        found = candidate / DEFAULT_BASELINE
        if found.exists():
            return found
    return Path.cwd() / DEFAULT_BASELINE


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific concurrency & invariant linter.",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: nearest {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring any baseline file",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in all_rules():
            print(f"{rule.ID:16s} {rule.DESCRIPTION}")
        return 0

    paths = [Path(p) for p in (options.paths or ["src"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2

    findings = Analyzer().run(paths)
    baseline_path = _locate_baseline(options.baseline, paths)

    if options.write_baseline:
        Baseline.from_findings(
            findings, justification="grandfathered by --write-baseline; adjudicate"
        ).save(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    baseline = (
        Baseline() if options.no_baseline else Baseline.load(baseline_path)
    )
    new, grandfathered, stale = baseline.split(findings)
    REPORTERS[options.fmt](new, grandfathered, stale, sys.stdout)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
