"""Baseline (grandfathering) support for the project linter.

A baseline file records findings that predate a rule (or are adjudicated
acceptable) so the linter can gate CI on *new* findings only.  Entries
carry a mandatory justification — a baseline is a ledger of debts, not a
mute button.  Matching is by line-insensitive fingerprint
``(rule, path, symbol, message)``, so shifting code around does not
invalidate (or accidentally widen) an entry.

Stale entries — baselined findings the code no longer produces — are
reported as warnings, never errors: deleting dead debt should not block
the PR that paid it off, but it should be visible so the file shrinks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

FORMAT_VERSION = 1


class Baseline:
    """A set of grandfathered findings loaded from / saved to JSON."""

    def __init__(self, entries: Sequence[dict] = ()) -> None:
        self._entries: Dict[Tuple[str, str, str, str], dict] = {}
        for entry in entries:
            self._entries[self._fingerprint(entry)] = dict(entry)

    @staticmethod
    def _fingerprint(entry: dict) -> Tuple[str, str, str, str]:
        return (
            entry.get("rule", ""),
            entry.get("path", ""),
            entry.get("symbol", ""),
            entry.get("message", ""),
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        return cls(data.get("findings", []))

    def save(self, path: Path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "findings": sorted(
                self._entries.values(),
                key=lambda e: (e.get("path", ""), e.get("rule", ""), e.get("symbol", "")),
            ),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], justification: str = "grandfathered"
    ) -> "Baseline":
        entries = [
            {
                "rule": f.rule,
                "path": f.path,
                "symbol": f.symbol,
                "message": f.message,
                "justification": f.justification or justification,
            }
            for f in findings
        ]
        return cls(entries)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self._entries

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[dict]]:
        """Partition ``findings`` into (new, grandfathered, stale-entries)."""
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        matched: set = set()
        for finding in findings:
            entry = self._entries.get(finding.fingerprint)
            if entry is None:
                new.append(finding)
            else:
                matched.add(finding.fingerprint)
                grandfathered.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self._entries.items())
            if fingerprint not in matched
        ]
        return new, grandfathered, stale
