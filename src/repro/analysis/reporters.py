"""Text and JSON reporters for analyzer output."""

from __future__ import annotations

import json
from typing import List, Sequence, TextIO

from .findings import Finding


def report_text(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale: Sequence[dict],
    stream: TextIO,
) -> None:
    for finding in new:
        symbol = f" [{finding.symbol}]" if finding.symbol else ""
        stream.write(
            f"{finding.location()}: {finding.rule}: {finding.message}{symbol}\n"
        )
    if stale:
        stream.write("\n")
        for entry in stale:
            stream.write(
                "warning: stale baseline entry (no longer produced): "
                f"{entry.get('rule')}: {entry.get('path')} "
                f"[{entry.get('symbol', '')}]\n"
            )
    stream.write(
        f"\n{len(new)} finding(s), {len(grandfathered)} baselined, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}\n"
    )


def report_json(
    new: Sequence[Finding],
    grandfathered: Sequence[Finding],
    stale: Sequence[dict],
    stream: TextIO,
) -> None:
    payload = {
        "findings": [f.to_dict() for f in new],
        "baselined": [f.to_dict() for f in grandfathered],
        "stale_baseline": list(stale),
        "summary": {
            "new": len(new),
            "baselined": len(grandfathered),
            "stale": len(stale),
        },
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


REPORTERS = {"text": report_text, "json": report_json}
