"""The analysis engine: file discovery, parsing, suppression handling.

The engine walks the given paths for ``*.py`` files, parses each once into
a :class:`FileContext`, runs every registered rule over it, and filters
the raw findings through per-line suppressions.  Baseline filtering is a
separate, later stage (:mod:`repro.analysis.baseline`) so the ``--write-
baseline`` flow can see the unfiltered set.

Suppressions
------------
``# repro: disable=<rule>[,<rule>...]`` or ``# repro: disable=all`` on the
offending line silences those rules for that line.  A comment-only line
immediately above the offending line works too, for lines with no room::

    # repro: disable=replay-alloc
    data = np.stack(chunks)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .base import Rule, all_rules
from .findings import Finding

_SUPPRESS = re.compile(r"#\s*repro:\s*disable=([A-Za-z0-9_,\- ]+)")
_COMMENT_ONLY = re.compile(r"^\s*#")


@dataclass
class FileContext:
    """One parsed source file, handed to every rule."""

    path: Path                 # absolute path on disk
    relpath: str               # root-relative posix path, e.g. "repro/nn/plan.py"
    source: str
    lines: List[str]
    tree: ast.Module
    package_path: Tuple[str, ...] = field(default_factory=tuple)
    # ``package_path`` is the dotted location inside the ``repro`` package,
    # e.g. ("cluster", "sharded") — rules scoped to subpackages key off it.

    def in_package(self, *heads: str) -> bool:
        """Whether this file lives under any of the given subpackages."""
        return bool(self.package_path) and self.package_path[0] in heads

    def module_name(self) -> str:
        return ".".join(self.package_path)


def _package_path(path: Path) -> Tuple[str, ...]:
    """Path components after the last ``repro`` directory component.

    Files outside any ``repro`` package (fixtures, scripts) get their
    path relative to the scanned root, so package-scoped rules still work
    on test fixtures laid out as ``tmp/repro/cluster/bad.py``.
    """
    parts = list(path.parts)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            tail = parts[index + 1 :]
            return tuple(tail[:-1]) + (Path(tail[-1]).stem,) if tail else ()
    return ()


def parse_file(path: Path, root: Path) -> Optional[FileContext]:
    """Parse one file; ``None`` when it cannot be read or parsed.

    Unparseable files are skipped rather than fatal: the linter's job is
    invariants, not syntax — the interpreter reports syntax errors better.
    """
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError):
        return None
    try:
        rel = path.relative_to(root).as_posix()
    except ValueError:
        rel = path.as_posix()
    return FileContext(
        path=path,
        relpath=rel,
        source=source,
        lines=source.splitlines(),
        tree=tree,
        package_path=_package_path(path),
    )


def discover(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``*.py`` under the given files/directories, sorted."""
    seen: Set[Path] = set()
    for entry in paths:
        if entry.is_dir():
            candidates: Iterable[Path] = sorted(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            candidates = [entry]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen and "__pycache__" not in resolved.parts:
                seen.add(resolved)
                yield candidate


def suppressed_rules(context: FileContext, line: int) -> Set[str]:
    """Rules suppressed at ``line`` (1-based) by disable comments."""
    rules: Set[str] = set()
    for candidate in (line, line - 1):
        if not 1 <= candidate <= len(context.lines):
            continue
        text = context.lines[candidate - 1]
        if candidate == line - 1 and not _COMMENT_ONLY.match(text):
            continue  # the previous line only counts when comment-only
        match = _SUPPRESS.search(text)
        if match:
            rules.update(part.strip() for part in match.group(1).split(","))
    return rules


class Analyzer:
    """Run all (or a subset of) registered rules over a set of paths."""

    def __init__(self, rules: Optional[Sequence[type]] = None) -> None:
        self.rule_classes = list(rules) if rules is not None else all_rules()

    def run(self, paths: Sequence[Path], root: Optional[Path] = None) -> List[Finding]:
        """Analyze; returns suppression-filtered findings, sorted."""
        paths = [Path(p) for p in paths]
        if root is None:
            root = paths[0] if len(paths) == 1 and paths[0].is_dir() else Path.cwd()
        rules: List[Rule] = [cls() for cls in self.rule_classes]
        findings: List[Finding] = []
        for file_path in discover(paths):
            context = parse_file(file_path, root)
            if context is None:
                continue
            for rule in rules:
                for finding in rule.check(context):
                    silenced = suppressed_rules(context, finding.line)
                    if finding.rule in silenced or "all" in silenced:
                        continue
                    findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings
