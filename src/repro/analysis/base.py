"""Rule protocol and registry for the project linter.

A rule is a class with an ``ID``, a one-line ``DESCRIPTION``, and a
``check(context)`` method yielding :class:`~repro.analysis.findings.Finding`
objects for one parsed file.  Rules register themselves with the
:func:`register` decorator; the engine instantiates every registered rule
per run (rules may keep per-run state, e.g. cross-file caches).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Type

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import FileContext

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for analysis rules."""

    ID: str = ""
    DESCRIPTION: str = ""

    def check(self, context: "FileContext") -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Helpers shared by concrete rules.
    # ------------------------------------------------------------------ #
    def finding(
        self,
        context: "FileContext",
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=self.ID,
            path=context.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.ID:
        raise ValueError(f"{rule_cls.__name__} must define a non-empty ID")
    if rule_cls.ID in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.ID!r}")
    _REGISTRY[rule_cls.ID] = rule_cls
    return rule_cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, sorted by id for deterministic output."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Optional[Type[Rule]]:
    return _REGISTRY.get(rule_id)


# ---------------------------------------------------------------------- #
# Shared AST utilities.
# ---------------------------------------------------------------------- #
def walk_functions(tree: ast.AST) -> Iterator[tuple]:
    """Yield ``(qualname, function_node, class_node_or_None)`` for every
    function/method in the module, including nested ones."""

    def visit(node: ast.AST, prefix: str, owner: Optional[ast.ClassDef]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}" if prefix else child.name
                yield qual, child, owner
                yield from visit(child, f"{qual}.", owner)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}{child.name}" if prefix else child.name
                yield from visit(child, f"{qual}.", child)
            else:
                yield from visit(child, prefix, owner)

    yield from visit(tree, "", None)


def decorator_name(node: ast.expr) -> str:
    """The dotted name of a decorator expression (call or bare)."""
    target = node.func if isinstance(node, ast.Call) else node
    parts: List[str] = []
    while isinstance(target, ast.Attribute):
        parts.append(target.attr)
        target = target.value
    if isinstance(target, ast.Name):
        parts.append(target.id)
    return ".".join(reversed(parts))


def call_name(node: ast.Call) -> str:
    """The dotted name a call targets (``np.exp`` -> "np.exp")."""
    return decorator_name(node)


def string_args(node: ast.Call) -> List[str]:
    """The literal string positional arguments of a call."""
    out: List[str] = []
    for arg in node.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.append(arg.value)
    return out
