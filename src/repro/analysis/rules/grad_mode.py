"""Rule ``grad-mode``: trace/replay paths stay out of autograd.

The compiled path's correctness rests on tracing under ``no_grad()`` —
a plan must never capture backward closures, and replay kernels must not
touch the autograd machinery (``Tensor._node``, ``.backward()``,
``._accumulate()``).  Three checks:

* ``no_grad`` may only be used as a context manager (``with no_grad():``)
  — calling it for side effects or stashing the instance lets grad-mode
  leak past the lexical scope;
* the thread-local ``_grad_mode.enabled`` flag may only be assigned inside
  ``repro/nn/tensor.py`` (the ``no_grad`` implementation itself);
* replay-kernel scopes and ``repro/nn/plan.py`` must not reference the
  autograd surface at all.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..base import Rule, call_name, register
from ..findings import Finding
from .replay_alloc import _collect_kernel_scopes

_AUTOGRAD_ATTRS = {"_node", "grad"}
_AUTOGRAD_CALLS = {"backward", "_accumulate"}


@register
class GradModeRule(Rule):
    ID = "grad-mode"
    DESCRIPTION = "no_grad only as context manager; no autograd in trace/replay paths"

    def check(self, context) -> Iterable[Finding]:
        yield from self._check_no_grad_usage(context)
        yield from self._check_grad_mode_writes(context)
        yield from self._check_autograd_free_scopes(context)

    # ------------------------------------------------------------------ #
    def _check_no_grad_usage(self, context) -> Iterable[Finding]:
        as_context: Set[int] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.With):
                for item in node.items:
                    as_context.add(id(item.context_expr))
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and call_name(node).split(".")[-1] == "no_grad"
                and id(node) not in as_context
            ):
                yield self.finding(
                    context,
                    node,
                    "no_grad() must be used as a context manager "
                    "('with no_grad():'), not called standalone",
                )

    def _check_grad_mode_writes(self, context) -> Iterable[Finding]:
        if context.module_name() == "nn.tensor":
            return  # the implementation itself
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)
                and node.attr == "enabled"
                and isinstance(node.value, ast.Name)
                and node.value.id.endswith("_grad_mode")
            ):
                yield self.finding(
                    context,
                    node,
                    "direct assignment to _grad_mode.enabled outside nn/tensor.py; "
                    "use 'with no_grad():'",
                )

    def _check_autograd_free_scopes(self, context) -> Iterable[Finding]:
        scopes = list(_collect_kernel_scopes(context.tree))
        if context.module_name() == "nn.plan":
            scopes.append(("nn.plan", context.tree))
        for symbol, scope in scopes:
            body = getattr(scope, "body", scope)
            body = body if isinstance(body, list) else [body]
            for stmt in body:
                yield from self._scan_autograd(context, stmt, symbol)

    def _scan_autograd(self, context, node: ast.AST, symbol: str) -> Iterable[Finding]:
        if isinstance(node, ast.Attribute):
            if node.attr in _AUTOGRAD_ATTRS:
                yield self.finding(
                    context,
                    node,
                    f"autograd attribute '.{node.attr}' referenced in a "
                    "trace/replay scope",
                    symbol=symbol,
                )
            elif node.attr in _AUTOGRAD_CALLS:
                yield self.finding(
                    context,
                    node,
                    f"autograd call '.{node.attr}()' in a trace/replay scope",
                    symbol=symbol,
                )
        for child in ast.iter_child_nodes(node):
            yield from self._scan_autograd(context, child, symbol)
