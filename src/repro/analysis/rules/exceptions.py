"""Rule ``except-hygiene``: no blind broad exception swallowing.

A ``try/except Exception: pass`` around cluster internals converts a
shard corruption into silent data loss.  Broad handlers are legitimate —
rollback paths, executor error channels — *when the error remains
observable*: re-raised, recorded on a stats/report object, or otherwise
acted on.  This rule flags handlers that catch everything
(bare ``except:``, ``Exception``, ``BaseException``) and then neither

* ``raise`` (re-raise or translate), nor
* call anything (record / log / roll back), nor
* read the bound exception variable.

Narrow handlers (``except OSError:`` etc.) are out of scope: catching a
specific expected failure and moving on is a decision, not an accident.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Rule, register
from ..findings import Finding

_BROAD = {"Exception", "BaseException"}


def _catches_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except:
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for entry in types:
        if isinstance(entry, ast.Name) and entry.id in _BROAD:
            return True
        if isinstance(entry, ast.Attribute) and entry.attr in _BROAD:
            return True
    return False


def _is_observable(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            return True
        if (
            handler.name
            and isinstance(node, ast.Name)
            and node.id == handler.name
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


@register
class ExceptHygieneRule(Rule):
    ID = "except-hygiene"
    DESCRIPTION = "broad except handlers must re-raise, record, or use the error"

    def check(self, context) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _catches_broad(node) and not _is_observable(node):
                caught = "bare except" if node.type is None else "broad except"
                yield self.finding(
                    context,
                    node,
                    f"{caught} swallows the error: re-raise, record it on a "
                    "stats/report object, or narrow the exception type",
                )
