"""Rule ``timing-discipline``: instrumentation clocks go through ``repro.obs``.

The serving, streaming, cluster and runtime layers are instrumented via
the ``repro.obs`` timing helpers (``now()`` / ``timed()``), so every
latency metric shares one monotonic clock and the disabled-mode fast path
lives in exactly one place.  A raw ``time.perf_counter()`` or
``time.time()`` call scattered through those packages would bypass the
no-op gate the overhead benchmark enforces — and ``time.time()`` is not
even monotonic, so durations built on it can go negative across NTP
steps.

Scope: ``repro/{serving,streaming,cluster,runtime,profiling}``.  The
profiling package's measurement primitive (``time_callable``) predates
``repro.obs`` and *is* the clock its experiments are built on; it is
adjudicated through the analysis baseline rather than exempted here, so
any new raw clock use in profiling still needs a justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Set, Tuple

from ..base import Rule, call_name, register
from ..findings import Finding

_SCOPED_PACKAGES = ("serving", "streaming", "cluster", "runtime", "profiling")

# Clock attributes of the ``time`` module whose raw use is banned.
# ``time.sleep`` and formatting helpers are not clocks and stay allowed.
_BANNED_CLOCKS = {
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}


def _walk_calls(node: ast.AST, qual: str = "") -> Iterator[Tuple[ast.Call, str]]:
    """Yield every call with the qualname of its innermost enclosing scope."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            child_qual = f"{qual}.{child.name}" if qual else child.name
            yield from _walk_calls(child, child_qual)
        else:
            if isinstance(child, ast.Call):
                yield child, qual
            yield from _walk_calls(child, qual)


@register
class TimingDisciplineRule(Rule):
    ID = "timing-discipline"
    DESCRIPTION = (
        "raw time.* clock calls in instrumented packages; use the "
        "repro.obs timing helpers (now()/timed())"
    )

    def check(self, context) -> Iterable[Finding]:
        if not context.in_package(*_SCOPED_PACKAGES):
            return
        # Resolve how this module can reach the ``time`` clocks: module
        # aliases (``import time``, ``import time as t``) and from-imports
        # (``from time import perf_counter as pc``).
        module_aliases: Set[str] = set()
        clock_names: Dict[str, str] = {}
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        module_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in _BANNED_CLOCKS:
                            clock_names[alias.asname or alias.name] = alias.name
        if not module_aliases and not clock_names:
            return
        for call, qual in _walk_calls(context.tree):
            name = call_name(call)
            root, dot, attribute = name.partition(".")
            if dot and root in module_aliases and attribute in _BANNED_CLOCKS:
                clock = attribute
            elif not dot and name in clock_names:
                clock = clock_names[name]
            else:
                continue
            yield self.finding(
                context,
                call,
                f"raw time.{clock}() call in an instrumented package; "
                "route timing through repro.obs (now()/timed()) so the "
                "disabled-mode fast path stays centralized",
                symbol=qual,
            )
