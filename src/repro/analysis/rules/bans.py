"""Rule ``pickle-ban``: serialization and hashing stay deterministic.

The snapshot/state layer is deliberately pickle-free (versioned JSON +
raw arrays): pickle couples snapshots to class layout, breaks cross-
version replay, and executes code on load.  Likewise, tenant routing must
hash through :func:`repro.cluster.ring.stable_hash` — raw ``hash()`` is
salted per process (``PYTHONHASHSEED``) and ``hashlib`` sprinkled ad hoc
invites layout drift between ring implementations.

Scope: ``repro/cluster/``, ``repro/streaming/``,
``repro/nn/serialization.py``, and the process-boundary transport —
``repro/wire.py`` plus ``repro/runtime/procpool.py`` — where pickle would
otherwise be the path of least resistance (every byte a worker sends or
receives must go through the codec).  ``cluster/ring.py`` is the one
module allowed to touch ``hashlib`` — it *implements* ``stable_hash``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Rule, call_name, register
from ..findings import Finding

_BANNED_MODULES = {"pickle", "cPickle", "_pickle", "marshal", "dill", "shelve", "joblib"}
_HASH_EXEMPT_MODULE = "cluster.ring"


#: single modules (dotted, under ``repro/``) the ban covers beyond the
#: blanket packages: the weight codec and the process-boundary transport.
_SCOPED_MODULES = {"nn.serialization", "wire", "runtime.procpool"}


def _in_scope(context) -> bool:
    return context.in_package("cluster", "streaming") or (
        context.module_name() in _SCOPED_MODULES
    )


@register
class PickleBanRule(Rule):
    ID = "pickle-ban"
    DESCRIPTION = (
        "no pickle/marshal in state-carrying packages; hash via stable_hash only"
    )

    def check(self, context) -> Iterable[Finding]:
        if not _in_scope(context):
            return
        hash_exempt = context.module_name() == _HASH_EXEMPT_MODULE
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield self.finding(
                            context,
                            node,
                            f"import of '{alias.name}' banned in state-carrying "
                            "packages; use the versioned codecs in "
                            "repro.nn.serialization / repro.cluster.snapshot",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES:
                    yield self.finding(
                        context,
                        node,
                        f"import from '{node.module}' banned in state-carrying "
                        "packages; use the versioned codecs in "
                        "repro.nn.serialization / repro.cluster.snapshot",
                    )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "allow_pickle"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        yield self.finding(
                            context,
                            node,
                            "allow_pickle=True defeats the pickle ban",
                        )
                if hash_exempt:
                    continue
                name = call_name(node)
                if name.startswith("hashlib."):
                    yield self.finding(
                        context,
                        node,
                        f"direct '{name}' call; route hashing through "
                        "repro.cluster.ring.stable_hash",
                    )
                elif name == "hash":
                    yield self.finding(
                        context,
                        node,
                        "builtin hash() is per-process salted; use "
                        "repro.cluster.ring.stable_hash",
                    )
