"""Concrete analysis rules.

Importing this package registers every rule with the registry in
:mod:`repro.analysis.base`; the engine then instantiates them per run.
"""

from . import bans, exceptions, grad_mode, lock_discipline, replay_alloc, timing  # noqa: F401

__all__ = ["lock_discipline", "replay_alloc", "grad_mode", "bans", "exceptions", "timing"]
