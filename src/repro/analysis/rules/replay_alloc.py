"""Rule ``replay-alloc``: plan replay kernels must not allocate.

The compiled inference path (``repro.nn.plan``) promises zero steady-state
allocation: a replayed plan writes every intermediate into arenas captured
at trace time.  One ``np.exp(x)`` (instead of ``np.exp(x, out=buf)``)
inside a replay kernel silently re-introduces a per-call allocation that
no test catches — outputs stay bit-identical, only the latency/GC profile
degrades.  This rule checks the kernel scopes mechanically.

Kernel scopes are self-identifying:

* functions named ``*_kernel`` (the ``repro.nn.functional`` family),
* the lambda / local function registered as the first argument of
  ``rec.add(...)`` / ``recorder.add(...)`` (the tensor-op trace sites), and
* the polymorphic replay paths of the plan itself (``nn/plan.py`` only):
  methods named ``_replay*`` / ``_run_*`` plus the slot ``bind`` — the
  slice-replay dispatch that runs on every serve, not just the kernels
  it invokes.

Inside a kernel scope the rule flags ufunc-style NumPy calls without an
``out=`` argument, constructors that always allocate (``np.stack``,
``np.empty`` & friends), ``.copy()`` method calls, and ``**`` / ``@``
operators (which have no out-variant).  View-producing helpers
(``np.copyto``, ``np.broadcast_to``, ``np.expand_dims``, ``.reshape``)
are exempt, and so — by construction — is the slice-replay idiom:
leading-dim subscripts like ``buf[:batch * rows]`` are views, never
calls, so binding a plan to a smaller batch allocates nothing the rule
would need to whitelist.  One learned exception: the caller-requested
copy-out ``x.copy() if copy else x`` — the ``copy=True`` branch hands
the caller an owned array by contract, so a ``.copy()`` conditioned on
a plain ``copy`` flag is exempt; an *unconditional* allocation in a
replay path is still flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ..base import Rule, call_name, register
from ..findings import Finding

# NumPy calls that allocate a fresh array unless told where to write.
_NEEDS_OUT = {
    "add", "subtract", "multiply", "divide", "true_divide", "negative",
    "exp", "log", "sqrt", "abs", "absolute", "tanh", "maximum", "minimum",
    "clip", "matmul", "dot", "einsum", "power", "square", "sum", "mean",
    "var", "std", "amax", "amin", "max", "min", "take", "where",
    "concatenate",
}

# NumPy calls that always allocate, out= or not.
_ALWAYS_ALLOCATES = {
    "stack", "vstack", "hstack", "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like", "array",
    "asarray", "ascontiguousarray", "copy", "repeat", "tile", "split",
    "arange", "linspace",
}

_RECORDERS = {"rec", "recorder"}


def _is_replay_path(name: str) -> bool:
    """Plan methods that execute on every replay dispatch (``nn/plan.py``)."""
    return name.startswith("_replay") or name.startswith("_run_") or name == "bind"


def _collect_replay_paths(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """``(symbol, scope_node)`` for the plan's polymorphic replay methods."""
    scopes: List[Tuple[str, ast.AST]] = []

    def visit(node: ast.AST, qual: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_qual = f"{qual}.{child.name}" if qual else child.name
                if _is_replay_path(child.name):
                    scopes.append((child_qual, child))
                visit(child, child_qual)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{qual}.{child.name}" if qual else child.name)
            else:
                visit(child, qual)

    visit(tree, "")
    return scopes


def _is_copy_out(node: ast.AST) -> bool:
    """``x.copy() if copy else x`` — the documented caller-owned copy-out."""
    return (
        isinstance(node, ast.IfExp)
        and isinstance(node.test, ast.Name)
        and node.test.id == "copy"
    )


def _has_out(node: ast.Call) -> bool:
    return any(kw.arg == "out" for kw in node.keywords)


def _is_recorder_add(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and bool(node.args)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "add"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in _RECORDERS
    )


def _collect_kernel_scopes(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """``(symbol, scope_node)`` for every replay-kernel scope in the file.

    Symbols are enclosing qualified names, never line numbers, so the
    baseline fingerprint survives unrelated edits shifting code around.
    """
    scopes: List[Tuple[str, ast.AST]] = []
    seen: Set[int] = set()
    local_defs: Dict[str, List[Tuple[str, ast.AST]]] = {}
    named_registrations: List[Tuple[str, str]] = []  # (function name, site qual)

    def add(symbol: str, node: ast.AST) -> None:
        if id(node) not in seen:
            seen.add(id(node))
            scopes.append((symbol, node))

    def visit(node: ast.AST, qual: str) -> None:
        if _is_recorder_add(node):
            first = node.args[0]
            if isinstance(first, ast.Lambda):
                add(f"{qual}.<replay>" if qual else "<replay>", first)
            elif isinstance(first, ast.Name):
                named_registrations.append((first.id, qual))
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_qual = f"{qual}.{child.name}" if qual else child.name
                local_defs.setdefault(child.name, []).append((child_qual, child))
                if child.name.endswith("_kernel"):
                    add(child_qual, child)
                visit(child, child_qual)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{qual}.{child.name}" if qual else child.name)
            else:
                visit(child, qual)

    visit(tree, "")
    for name, _site_qual in named_registrations:
        # Scan every same-named local def: ``run`` helpers are defined per
        # trace site, and a rare cross-scope over-match only widens the
        # checked surface (all such helpers are replay closures here).
        for def_qual, definition in local_defs.get(name, []):
            add(def_qual, definition)
    return scopes


@register
class ReplayAllocRule(Rule):
    ID = "replay-alloc"
    DESCRIPTION = "replay kernels must write into trace-time buffers, not allocate"

    def check(self, context) -> Iterable[Finding]:
        emitted: Set[Tuple[int, int, str]] = set()
        scopes = _collect_kernel_scopes(context.tree)
        if context.relpath.replace("\\", "/").endswith("nn/plan.py"):
            known = {id(scope) for _, scope in scopes}
            scopes += [
                (symbol, scope)
                for symbol, scope in _collect_replay_paths(context.tree)
                if id(scope) not in known
            ]
        for symbol, scope in scopes:
            body = scope.body if isinstance(scope.body, list) else [scope.body]
            for stmt in body:
                for finding in self._scan(context, stmt, symbol):
                    key = (finding.line, finding.col, finding.message)
                    if key not in emitted:
                        emitted.add(key)
                        yield finding

    def _scan(self, context, node: ast.AST, symbol: str) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            name = call_name(node)
            leaf = name.split(".")[-1]
            if name.startswith("np.") or name.startswith("numpy."):
                if leaf in _NEEDS_OUT and not _has_out(node):
                    yield self.finding(
                        context,
                        node,
                        f"allocating call '{name}' without out= in replay kernel",
                        symbol=symbol,
                    )
                elif leaf in _ALWAYS_ALLOCATES:
                    yield self.finding(
                        context,
                        node,
                        f"'{name}' always allocates; precompute at trace time",
                        symbol=symbol,
                    )
            elif leaf == "copy" and isinstance(node.func, ast.Attribute):
                yield self.finding(
                    context,
                    node,
                    ".copy() allocates; write through np.copyto into a "
                    "trace-time buffer",
                    symbol=symbol,
                )
        elif isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Pow, ast.MatMult)
        ):
            op = "**" if isinstance(node.op, ast.Pow) else "@"
            yield self.finding(
                context,
                node,
                f"operator '{op}' allocates a temporary in a replay kernel",
                symbol=symbol,
            )
        for child in ast.iter_child_nodes(node):
            if _is_copy_out(child):
                # The copy=True branch is the caller-owned copy-out; the
                # copy=False branch must still be allocation-free.
                yield from self._scan(context, child.orelse, symbol)
                continue
            yield from self._scan(context, child, symbol)
