"""Rule ``lock-discipline``: guarded attributes only under their lock.

Classes declare their shared mutable state with
``@guarded_by("_attr", ..., lock="_lock")`` (see
:mod:`repro.runtime.annotations`).  This rule flags every ``self.<attr>``
read or write of a guarded attribute that is not inside a recognised
lock-holding context for the declared lock:

* ``with self.<lock>:`` (plain mutex / RLock),
* ``with self.<lock>.read():`` or ``with self.<lock>.write():`` (RWLock),
* a method decorated ``@requires_lock("<lock>")`` — the caller's problem,
  checked at runtime by ``RWLock.assert_held``.

``__init__`` / ``__new__`` are exempt (the object is not shared yet), as
are methods decorated ``@unguarded("reason")``.  Closures defined
lexically inside a holding ``with`` block inherit the held set — an
approximation (the closure could escape the block), but our fan-out
closures are invoked synchronously under the lock and the alternative
flags every one of them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from ..base import Rule, call_name, decorator_name, register, string_args
from ..findings import Finding

_EXEMPT_METHODS = {"__init__", "__new__"}


def _guarded_attributes(cls: ast.ClassDef) -> Dict[str, str]:
    """attribute -> lock mapping declared by ``@guarded_by`` decorators."""
    declared: Dict[str, str] = {}
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        if decorator_name(deco).split(".")[-1] != "guarded_by":
            continue
        lock = "_lock"
        for kw in deco.keywords:
            if kw.arg == "lock" and isinstance(kw.value, ast.Constant):
                lock = str(kw.value.value)
        for attr in string_args(deco):
            declared[attr] = lock
    return declared


def _required_locks(fn: ast.AST) -> Set[str]:
    """Locks promised held by ``@requires_lock`` decorators on ``fn``."""
    held: Set[str] = set()
    for deco in getattr(fn, "decorator_list", []):
        name = decorator_name(deco).split(".")[-1]
        if name != "requires_lock":
            continue
        args = string_args(deco) if isinstance(deco, ast.Call) else []
        held.update(args or ["_lock"])
    return held


def _is_unguarded(fn: ast.AST) -> bool:
    return any(
        decorator_name(deco).split(".")[-1] == "unguarded"
        for deco in getattr(fn, "decorator_list", [])
    )


def _with_locks(item: ast.withitem) -> Optional[str]:
    """The lock name a ``with`` item holds, if it is a recognised pattern."""
    expr = item.context_expr
    # with self.<lock>.read():  /  .write():
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("read", "write")
    ):
        expr = expr.func.value
    # with self.<lock>:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


@register
class LockDisciplineRule(Rule):
    ID = "lock-discipline"
    DESCRIPTION = (
        "@guarded_by attributes may only be touched while holding their lock"
    )

    def check(self, context) -> Iterable[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                guarded = _guarded_attributes(node)
                if guarded:
                    yield from self._check_class(context, node, guarded)

    # ------------------------------------------------------------------ #
    def _check_class(
        self, context, cls: ast.ClassDef, guarded: Dict[str, str]
    ) -> Iterable[Finding]:
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in _EXEMPT_METHODS or _is_unguarded(stmt):
                continue
            held = _required_locks(stmt)
            symbol = f"{cls.name}.{stmt.name}"
            yield from self._scan(context, stmt.body, guarded, held, symbol)

    def _scan(
        self,
        context,
        body: List[ast.stmt],
        guarded: Dict[str, str],
        held: Set[str],
        symbol: str,
    ) -> Iterable[Finding]:
        for stmt in body:
            yield from self._scan_node(context, stmt, guarded, held, symbol)

    def _scan_node(
        self,
        context,
        node: ast.AST,
        guarded: Dict[str, str],
        held: Set[str],
        symbol: str,
    ) -> Iterable[Finding]:
        if isinstance(node, ast.With):
            acquired: Set[str] = set()
            for item in node.items:
                # The context expressions evaluate *before* the lock is
                # held — check them against the outer held set.
                yield from self._scan_node(
                    context, item.context_expr, guarded, held, symbol
                )
                if item.optional_vars is not None:
                    yield from self._scan_node(
                        context, item.optional_vars, guarded, held, symbol
                    )
                lock = _with_locks(item)
                if lock is not None:
                    acquired.add(lock)
            inner = held | acquired
            for stmt in node.body:
                yield from self._scan_node(context, stmt, guarded, inner, symbol)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_unguarded(node):
                return
            # Closures inherit the lexically held set plus their own
            # @requires_lock declarations (see module docstring).
            inner = held | _required_locks(node)
            for stmt in node.body:
                yield from self._scan_node(context, stmt, guarded, inner, symbol)
            return
        if isinstance(node, ast.Lambda):
            yield from self._scan_node(context, node.body, guarded, held, symbol)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in guarded
        ):
            lock = guarded[node.attr]
            if lock not in held:
                access = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
                yield self.finding(
                    context,
                    node,
                    f"{access} of guarded attribute 'self.{node.attr}' without "
                    f"holding 'self.{lock}'",
                    symbol=symbol,
                )
            # fall through: subscripts/attributes hanging off it still recurse
        for child in ast.iter_child_nodes(node):
            yield from self._scan_node(context, child, guarded, held, symbol)
