"""``repro.analysis`` — project-specific static analysis.

An AST-based linter enforcing the invariants the rest of the stack is
built on: lock discipline on shared mutable state, allocation-free replay
kernels, ``no_grad`` purity on the trace path, pickle/hash bans in the
state-carrying packages, and exception hygiene.  Run it with::

    python -m repro.analysis src/

See ``ARCHITECTURE.md`` ("Static analysis & concurrency invariants") for
the rule catalogue, the ``@guarded_by`` annotation convention, and how to
suppress (``# repro: disable=<rule>``) or baseline a finding.
"""

from . import rules  # noqa: F401  (importing registers every rule)
from .base import Rule, all_rules, get_rule, register
from .baseline import Baseline
from .engine import Analyzer, FileContext
from .findings import Finding

__all__ = [
    "Analyzer",
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
]
