"""Finding objects produced by analysis rules.

A finding is pinned to a file/line for the reporter, but its *fingerprint*
deliberately omits the line number: baselines grandfather a finding by
``(rule, path, symbol, message)``, so unrelated edits that shift line
numbers do not resurrect grandfathered findings, while moving the same
code into a different function (a real change) does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str          # rule identifier, e.g. "lock-discipline"
    path: str          # repo-root-relative posix path
    line: int          # 1-based line of the offending node
    col: int           # 0-based column of the offending node
    message: str       # human-readable description, line-independent
    symbol: str = ""   # enclosing qualified name, e.g. "SeriesStore.buffer"
    justification: str = field(default="", compare=False)  # from baseline

    @property
    def fingerprint(self) -> Tuple[str, str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.rule, self.path, self.symbol, self.message)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }
