"""Pickle-free binary message transport for process-backed workers.

The cluster's persistence layer already flattens arbitrary nested state
(dicts, lists, arrays, scalars, ``datetime64`` timestamps, ``None``) into
a JSON manifest plus a flat string → array map — with tenant keys living
inside the manifest so any string round-trips, and object dtypes rejected
because they would silently require pickling.  This module is that same
codec promoted to a wire format:

* :func:`encode_state` / :func:`decode_state` — the nested-tree codec
  itself (re-exported by :mod:`repro.cluster.snapshot`, which layers the
  ``.npz`` archive format on top for disk).
* :func:`pack_message` / :func:`unpack_message` — one message as a single
  ``bytes`` value: a magic tag, a JSON header carrying the manifest tree
  and per-array descriptors (dtype string, shape, byte length), then the
  raw C-contiguous array bytes concatenated.  ``dtype.str`` preserves
  endianness and datetime64 units, so a message decodes bit-identically
  on the other side of the pipe.
* :func:`send_message` / :func:`recv_message` — length-prefixed framing
  over a stream socket (8-byte big-endian prefix), with EOF surfaced as
  :class:`EndOfStream` so a dead peer is a typed event, not a hang.
* :func:`error_payload` / :func:`raise_remote` — the error channel: a
  worker-side exception crosses the wire as ``{"type", "message"}`` and
  is re-raised coordinator-side as the matching builtin where possible,
  so routing errors keep their thread-backend types (``KeyError`` for an
  unknown tenant, ``ValueError`` for a bad payload).
* :func:`spawn_worker` — launch ``python -m <module> <fd>`` over one end
  of a :func:`socket.socketpair`, with ``PYTHONPATH`` carrying this very
  package.  ``subprocess`` + an inherited fd avoids both multiprocessing's
  pickled bootstrap and fork-from-a-threaded-parent hazards, and the
  child is a real OS process a crash drill can ``kill -9``.

No pickle anywhere: the ``pickle-ban`` lint rule covers this module.
"""

from __future__ import annotations

import datetime
import json
import os
import socket
import struct
import subprocess
import sys
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from .errors import DeadlineExceeded, Overloaded, TransientWireError
from .testing import faults as _faults

__all__ = [
    "EndOfStream",
    "TransientWireError",
    "MAX_FRAME_BYTES",
    "claim_worker_fd",
    "decode_state",
    "encode_state",
    "error_payload",
    "pack_message",
    "raise_remote",
    "recv_message",
    "register_raiseable",
    "send_message",
    "spawn_worker",
]

#: formats understood by the codec; bumped on incompatible layout changes
_FORMAT_VERSION = 1

#: message magic: "repro wire, layout 1" — a frame that does not start with
#: this is a protocol error (e.g. a stray write on the worker's fd), caught
#: before any attempt to interpret lengths out of garbage.
_MAGIC = b"RPW1"

#: frame prefix: payload byte length, 8-byte big-endian
_FRAME = struct.Struct(">Q")

#: header prefix inside the payload: JSON header byte length
_HEADER = struct.Struct(">I")

#: sanity ceiling for a single frame (1 TiB).  Real messages are bounded by
#: tenant windows and snapshots; anything past this is stream corruption.
MAX_FRAME_BYTES = 1 << 40

_CHUNK = 1 << 20


class EndOfStream(ConnectionError):
    """The peer closed its end of the stream (process exit or crash)."""


# ---------------------------------------------------------------------- #
# Nested-tree codec (shared with the .npz snapshot format).
# ---------------------------------------------------------------------- #
def encode_state(state) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Flatten a nested state tree into (JSON manifest, flat array map).

    Arrays (and array-like scalars such as ``np.datetime64`` timestamps)
    are pulled out into numbered entries; structure, strings, numbers,
    booleans and ``None`` live in the manifest.  Only npz-native dtypes
    are accepted — an object array would silently require pickling, so it
    raises instead.
    """
    arrays: Dict[str, np.ndarray] = {}
    tree = _encode(state, arrays)
    manifest = {"version": _FORMAT_VERSION, "tree": tree}
    return manifest, arrays


def decode_state(manifest: dict, arrays: Dict[str, np.ndarray]):
    """Invert :func:`encode_state`."""
    version = manifest.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot format version {version!r}")
    return _decode(manifest["tree"], arrays)


def _encode(value, arrays: Dict[str, np.ndarray]):
    if value is None:
        return {"t": "none"}
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    # Numpy scalars must be claimed before the plain-scalar branch:
    # ``np.float64`` *subclasses* ``float``, and routing it there would
    # stamp the node with a type name the decoder doesn't know.
    if isinstance(value, (np.generic, np.ndarray)):
        array = np.asarray(value)
        if array.dtype == object:
            raise TypeError(
                f"cannot snapshot object-dtype value {value!r} without pickling"
            )
        name = f"a{len(arrays)}"
        arrays[name] = array
        return {"t": "scalar" if isinstance(value, np.generic) else "array", "v": name}
    if isinstance(value, (int, float, str)):
        return {"t": type(value).__name__, "v": value}
    # Timestamp watermarks: ingest accepts any orderable timestamp, so the
    # codec must at least cover the stdlib datetime types alongside
    # np.datetime64 (handled below as a numpy scalar).
    if isinstance(value, datetime.datetime):
        return {"t": "datetime", "v": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"t": "date", "v": value.isoformat()}
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(f"state dict keys must be strings, got {key!r}")
        return {"t": "dict", "v": {k: _encode(v, arrays) for k, v in value.items()}}
    if isinstance(value, (list, tuple)):
        return {"t": "list", "v": [_encode(item, arrays) for item in value]}
    raise TypeError(
        f"cannot snapshot value of type {type(value).__name__}: {value!r} "
        "(supported: dict/list/str/int/float/bool/None and numpy arrays/scalars)"
    )


def _decode(node, arrays: Dict[str, np.ndarray]):
    kind = node["t"]
    if kind == "none":
        return None
    if kind in ("bool", "int", "float", "str"):
        return node["v"]
    if kind == "datetime":
        return datetime.datetime.fromisoformat(node["v"])
    if kind == "date":
        return datetime.date.fromisoformat(node["v"])
    if kind == "dict":
        return {key: _decode(child, arrays) for key, child in node["v"].items()}
    if kind == "list":
        return [_decode(child, arrays) for child in node["v"]]
    if kind == "array":
        return arrays[node["v"]]
    if kind == "scalar":
        return arrays[node["v"]][()]
    raise ValueError(f"unknown snapshot node type {kind!r}")


# ---------------------------------------------------------------------- #
# Message packing: codec tree → one bytes value and back.
# ---------------------------------------------------------------------- #
def pack_message(message) -> bytes:
    """Serialise one codec-compatible value into a self-describing blob.

    Layout: ``magic | u32 header_len | header_json | array bytes...``.
    The header carries the manifest tree plus, per array, its entry name,
    ``dtype.str`` (endianness- and unit-preserving), shape and byte count;
    array bytes follow in descriptor order, each C-contiguous.
    """
    manifest, arrays = encode_state(message)
    descriptors: List[dict] = []
    blobs: List[bytes] = []
    for name, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        blob = contiguous.tobytes()
        descriptors.append(
            {
                "k": name,
                "d": contiguous.dtype.str,
                # The original shape, not the contiguous copy's:
                # ascontiguousarray promotes 0-d scalars to 1-d, and a
                # scalar must come back 0-d to decode as a scalar.
                "s": list(array.shape),
                "n": len(blob),
            }
        )
        blobs.append(blob)
    header = json.dumps({"manifest": manifest, "arrays": descriptors}).encode("utf-8")
    return b"".join([_MAGIC, _HEADER.pack(len(header)), header] + blobs)


def unpack_message(payload: bytes):
    """Invert :func:`pack_message`.

    Decoded arrays are copies (writable, independently owned) — a worker
    ingests the buffer straight into its ring store, so a view into the
    receive buffer would alias every later message.
    """
    view = memoryview(payload)
    if bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise ValueError("not a wire message (bad magic)")
    offset = len(_MAGIC)
    (header_len,) = _HEADER.unpack_from(view, offset)
    offset += _HEADER.size
    header = json.loads(bytes(view[offset : offset + header_len]).decode("utf-8"))
    offset += header_len
    arrays: Dict[str, np.ndarray] = {}
    for descriptor in header["arrays"]:
        nbytes = int(descriptor["n"])
        blob = view[offset : offset + nbytes]
        if len(blob) != nbytes:
            raise ValueError("truncated wire message (array bytes missing)")
        offset += nbytes
        array = np.frombuffer(blob, dtype=np.dtype(descriptor["d"]))
        arrays[descriptor["k"]] = array.reshape(tuple(descriptor["s"])).copy()
    if offset != len(view):
        raise ValueError("trailing bytes after wire message")
    return decode_state(header["manifest"], arrays)


# ---------------------------------------------------------------------- #
# Length-prefixed framing over a stream socket.
# ---------------------------------------------------------------------- #
def send_message(sock: socket.socket, message) -> None:
    """Send one framed message (blocking until fully written).

    Fault injection (:mod:`repro.testing.faults`, site ``"wire.send"``)
    acts *before* the write: a dropped frame is simply never sent, a
    transient error leaves the stream untouched — the disabled path is
    one attribute compare.
    """
    if _faults._STATE.schedule is not None:
        if _faults.check("wire.send") == "drop":
            return
    payload = pack_message(message)
    sock.sendall(_FRAME.pack(len(payload)) + payload)


def recv_message(sock: socket.socket, timeout: Optional[float] = None):
    """Receive one framed message.

    Raises :class:`EndOfStream` if the peer closed the stream (worker
    exit or crash — the kernel delivers EOF/ECONNRESET the moment the
    process dies, so death detection needs no timeout in the common
    case), and ``TimeoutError`` if ``timeout`` elapses mid-frame.
    Fault injection (site ``"wire.recv"``) acts before any byte is
    consumed, so an injected transient error never desynchronises the
    frame stream.
    """
    if _faults._STATE.schedule is not None:
        _faults.check("wire.recv")
    sock.settimeout(timeout)
    prefix = _recv_exact(sock, _FRAME.size)
    (length,) = _FRAME.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame length {length} exceeds sanity limit — corrupt stream")
    return unpack_message(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, _CHUNK))
        if not chunk:
            raise EndOfStream(
                f"peer closed the stream with {remaining} of {n} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------- #
# Error channel.
# ---------------------------------------------------------------------- #
#: exception types allowed to re-materialise coordinator-side, so remote
#: errors keep thread-backend semantics (``KeyError`` for unknown tenants,
#: ``ValueError`` for bad geometry, ``Overloaded``/``DeadlineExceeded``
#: for worker-side load shedding) without ever evaluating an arbitrary
#: type name off the wire.  Extensible via :func:`register_raiseable`.
_RAISEABLE: Dict[str, Type[BaseException]] = {
    "KeyError": KeyError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "RuntimeError": RuntimeError,
    "IndexError": IndexError,
    "NotImplementedError": NotImplementedError,
    "ZeroDivisionError": ZeroDivisionError,
    "OverflowError": OverflowError,
    "TimeoutError": TimeoutError,
    "Overloaded": Overloaded,
    "DeadlineExceeded": DeadlineExceeded,
}


def register_raiseable(exc_type: Type[BaseException]) -> None:
    """Whitelist an exception type for :func:`raise_remote`.

    The type's ``__name__`` is the wire-level tag (what
    :func:`error_payload` emits), and it must be constructible from a
    single message string.  Registration is idempotent for the same
    type; re-registering a *different* type under an existing name
    raises — a silent swap would change what remote errors mean.
    """
    name = exc_type.__name__
    existing = _RAISEABLE.get(name)
    if existing is not None and existing is not exc_type:
        raise ValueError(
            f"raiseable name {name!r} already maps to {existing!r}; "
            "refusing to silently re-map it"
        )
    _RAISEABLE[name] = exc_type


def error_payload(error: BaseException) -> dict:
    """Describe an exception for the wire (type name + message only)."""
    return {"type": type(error).__name__, "message": str(error)}


def raise_remote(payload: dict) -> None:
    """Re-raise a worker-side error coordinator-side.

    Known builtins come back as themselves; anything else becomes a
    ``RuntimeError`` tagged with the original type name.
    """
    name = payload.get("type", "RuntimeError")
    message = payload.get("message", "")
    exc_type = _RAISEABLE.get(name)
    if exc_type is not None:
        raise exc_type(message)
    raise RuntimeError(f"worker raised {name}: {message}")


# ---------------------------------------------------------------------- #
# Worker spawning.
# ---------------------------------------------------------------------- #
def spawn_worker(module: str, *args: str) -> Tuple[socket.socket, subprocess.Popen]:
    """Launch ``python -m module <fd> [args...]`` over one socketpair end.

    Returns the parent's socket and the child ``Popen``.  The child fd is
    passed by number via ``pass_fds`` (which both preserves the number and
    marks it inheritable), and ``PYTHONPATH`` is prefixed with this
    package's ``src`` root so the worker imports the same ``repro`` the
    coordinator is running — regardless of the caller's cwd.
    """
    parent, child = socket.socketpair()
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")
    try:
        process = subprocess.Popen(
            [sys.executable, "-m", module, str(child.fileno()), *args],
            pass_fds=(child.fileno(),),
            env=env,
        )
    except BaseException:
        parent.close()
        raise
    finally:
        child.close()
    return parent, process


def claim_worker_fd(fd: int) -> socket.socket:
    """Worker-side half of :func:`spawn_worker`: adopt the inherited fd."""
    return socket.socket(fileno=fd)
