"""``repro.obs`` — metrics, tracing, and timing for the serving stack.

Three small modules, importable from anywhere in ``repro`` (this package
depends only on the standard library, so every layer — ``runtime.locks``
included — can instrument itself without import cycles):

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` with
  labeled ``Counter``/``Gauge``/``Histogram`` (log-spaced buckets,
  interpolated p50/p95/p99, O(1) memory), JSON + Prometheus export, and
  registry-backed views over the legacy ``*Stats`` dataclasses.
* :mod:`repro.obs.trace` — ``span()`` contexts with thread-local
  propagation across executor fan-out, a bounded ``TraceRecorder``, and
  Chrome trace-event export.
* :mod:`repro.obs.timing` — the sanctioned clock (``now()``/``timed()``)
  enforced by the ``timing-discipline`` lint rule.

Metrics are on by default (env ``REPRO_OBS_METRICS=0`` to disable);
tracing is off by default (env ``REPRO_OBS_TRACE=1`` or
``configure(tracing=True)`` to enable).  Both switches reduce every
instrument to an attribute-read-and-return when off.
"""

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure,
    counter,
    default_registry,
    gauge,
    histogram,
    log_buckets,
    metrics_enabled,
    observability,
    register_stats,
    tracing_enabled,
)
from .timing import now, timed
from .trace import (
    Span,
    TraceRecorder,
    carry_current_span,
    chrome_trace,
    current_span,
    default_recorder,
    export_spans,
    import_spans,
    span,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceRecorder",
    "carry_current_span",
    "chrome_trace",
    "configure",
    "counter",
    "current_span",
    "default_recorder",
    "default_registry",
    "export_spans",
    "gauge",
    "import_spans",
    "histogram",
    "log_buckets",
    "metrics_enabled",
    "now",
    "observability",
    "register_stats",
    "span",
    "timed",
    "tracing_enabled",
]
