"""Thread-safe metrics: labeled counters, gauges, and log-bucketed histograms.

Design constraints, in order of priority:

1. **Near-free when disabled.**  Every mutating entry point
   (``Counter.inc``, ``Gauge.set``, ``Histogram.observe``) starts with a
   single attribute read on the module-level :class:`_Switch` and returns
   immediately when metrics are off — no lock, no clock, no allocation.
   ``benchmarks/test_obs_overhead.py`` gates this path at <= 3% of the
   compiled single-request latency.
2. **O(1) memory.**  ``Histogram`` keeps only fixed log-spaced bucket
   counts (plus sum/count/min/max); percentiles come from within-bucket
   interpolation, never from retained samples.
3. **One source of truth.**  The legacy ``*Stats`` dataclasses register
   themselves as *views* (:meth:`MetricsRegistry.register_stats`), so
   ``stats_snapshot()`` and the Prometheus/JSON exports read the same
   fields through the same snapshot methods and can never disagree.

Naming scheme: ``repro_<layer>_<what>_<unit>`` — e.g.
``repro_serving_flush_seconds``, ``repro_cluster_rebalance_seconds{op=...}``,
``repro_lock_wait_seconds{lock=...,mode=...}``.
"""

from __future__ import annotations

import os
import threading
import weakref
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from math import ceil, isnan
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "log_buckets",
    "metrics_enabled",
    "tracing_enabled",
    "configure",
    "observability",
    "default_registry",
    "counter",
    "gauge",
    "histogram",
    "register_stats",
]


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


class _Switch:
    """Process-wide on/off state; a bare attribute read is the fast path."""

    __slots__ = ("metrics", "tracing")

    def __init__(self, metrics: bool, tracing: bool) -> None:
        self.metrics = metrics
        self.tracing = tracing


# Metrics default ON (cheap: one lock per touched instrument per event);
# tracing defaults OFF (it allocates a Span per event).
_STATE = _Switch(
    metrics=_env_flag("REPRO_OBS_METRICS", True),
    tracing=_env_flag("REPRO_OBS_TRACE", False),
)


def metrics_enabled() -> bool:
    """Whether metric instruments record events."""
    return _STATE.metrics


def tracing_enabled() -> bool:
    """Whether ``span()`` produces real spans."""
    return _STATE.tracing


def configure(metrics: Optional[bool] = None, tracing: Optional[bool] = None) -> None:
    """Flip the process-wide metrics/tracing switches (``None`` = leave as is)."""
    if metrics is not None:
        _STATE.metrics = bool(metrics)
    if tracing is not None:
        _STATE.tracing = bool(tracing)


@contextmanager
def observability(metrics: Optional[bool] = None, tracing: Optional[bool] = None) -> Iterator[None]:
    """Temporarily set the switches; restores the previous state on exit."""
    saved = (_STATE.metrics, _STATE.tracing)
    configure(metrics=metrics, tracing=tracing)
    try:
        yield
    finally:
        _STATE.metrics, _STATE.tracing = saved


def log_buckets(lo: float, hi: float, per_decade: int = 5) -> Tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``lo`` up to (at least) ``hi``.

    Consecutive bounds grow by ``10 ** (1 / per_decade)``; that growth
    factor is exactly the worst-case relative error of
    :meth:`Histogram.percentile` (see the hypothesis property test).
    """
    if lo <= 0 or hi <= lo or per_decade < 1:
        raise ValueError("log_buckets needs 0 < lo < hi and per_decade >= 1")
    bounds: List[float] = []
    exponent = 0
    while True:
        bound = lo * 10.0 ** (exponent / per_decade)
        bounds.append(bound)
        if bound >= hi:
            return tuple(bounds)
        exponent += 1


# 1 microsecond .. 1 minute, ~58% growth per bucket: covers everything from a
# disabled-path no-op to a full-cluster failover in 36 buckets.
DEFAULT_TIME_BUCKETS = log_buckets(1e-6, 60.0, per_decade=5)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: Mapping[str, str] = ()) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.metrics:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """Last-set value, plus a high-watermark since the last reset."""

    __slots__ = ("name", "labels", "_lock", "_value", "_max")

    def __init__(self, name: str, labels: Mapping[str, str] = ()) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        if not _STATE.metrics:
            return
        value = float(value)
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def inc(self, amount: float = 1.0) -> None:
        if not _STATE.metrics:
            return
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max_value(self) -> float:
        """High-watermark of ``set``/``inc`` results since the last reset."""
        with self._lock:
            return self._max

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0
            self._max = 0.0

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {"value": self._value, "max": self._max}


class Histogram:
    """Fixed-bucket histogram with O(1) memory and interpolated percentiles.

    Bucket ``i`` covers ``(bounds[i-1], bounds[i]]``; one overflow bucket
    catches everything above the last bound.  ``percentile`` uses the
    ``inverted_cdf`` rank convention (rank ``ceil(q/100 * n)``, at least 1)
    so the exact order statistic provably falls inside the same bucket as
    the estimate, bounding the relative error by the bucket growth factor.
    """

    __slots__ = ("name", "labels", "_bounds", "_counts", "_lock", "_sum", "_count", "_min", "_max")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if not buckets:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        self.name = name
        self.labels = dict(labels)
        self._bounds = tuple(sorted(float(b) for b in buckets))
        self._counts = [0] * (len(self._bounds) + 1)
        self._lock = threading.Lock()
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        if not _STATE.metrics:
            return
        value = float(value)
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile from the bucket counts.

        Linear interpolation inside the bucket holding the rank
        ``ceil(q/100 * n)`` order statistic, clamped to the observed
        ``[min, max]`` so degenerate single-bucket cases stay tight.
        Returns ``nan`` when nothing has been observed.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return float("nan")
            counts = list(self._counts)
            seen_min, seen_max = self._min, self._max
        rank = max(1, ceil(q / 100.0 * total))
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if cumulative + bucket_count >= rank:
                lo = seen_min if index == 0 else self._bounds[index - 1]
                hi = seen_max if index == len(self._bounds) else self._bounds[index]
                fraction = (rank - cumulative) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, seen_min), seen_max)
            cumulative += bucket_count
        return seen_max  # unreachable: rank <= total by construction

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self._bounds) + 1)
            self._sum = 0.0
            self._count = 0
            self._min = float("inf")
            self._max = float("-inf")

    def bucket_counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def snapshot(self) -> Dict[str, float]:
        p50, p95, p99 = (self.percentile(q) for q in (50, 95, 99))
        with self._lock:
            count, total = self._count, self._sum
            seen_min = self._min if self._count else float("nan")
            seen_max = self._max if self._count else float("nan")
        return {
            "count": count,
            "sum": total,
            "min": seen_min,
            "max": seen_max,
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric and its per-label-value children."""

    __slots__ = ("name", "help", "kind", "label_names", "buckets", "_children", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Optional[Sequence[float]],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labelvalues: object):
        """The child instrument for one label-value combination."""
        if set(labelvalues) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, got {tuple(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                label_map = dict(zip(self.label_names, key))
                if self.kind == "histogram":
                    child = Histogram(self.name, label_map, buckets=self.buckets or DEFAULT_TIME_BUCKETS)
                else:
                    child = _KINDS[self.kind](self.name, label_map)
                self._children[key] = child
        return child

    def children(self) -> List[object]:
        with self._lock:
            return list(self._children.values())


class _StatsView:
    """A registered ``*Stats`` snapshot provider, weakly bound to its owner."""

    __slots__ = ("prefix", "maxed", "help", "_ref", "_fn")

    def __init__(self, prefix: str, snapshot: Callable[[], object], maxed: Sequence[str], help: str) -> None:
        self.prefix = prefix
        self.maxed = tuple(maxed)
        self.help = help
        owner = getattr(snapshot, "__self__", None)
        if owner is not None:
            # Bound method: hold the owner weakly so registering a view
            # never keeps a service/store/registry alive.
            self._ref: Optional[weakref.WeakMethod] = weakref.WeakMethod(snapshot)
            self._fn: Optional[Callable[[], object]] = None
        else:
            self._ref = None
            self._fn = snapshot

    def dead(self) -> bool:
        return self._ref is not None and self._ref() is None

    def read(self) -> Optional[Dict[str, float]]:
        fn = self._ref() if self._ref is not None else self._fn
        if fn is None:
            return None
        value = fn()
        if is_dataclass(value) and not isinstance(value, type):
            return {f.name: float(getattr(value, f.name)) for f in fields(value)}
        return {str(k): float(v) for k, v in dict(value).items()}


class MetricsRegistry:
    """Thread-safe home for metric families and ``*Stats`` views."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._views: List[_StatsView] = []

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help, labels, buckets)
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} with labels "
                f"{family.label_names}; cannot re-register as {kind} with {tuple(labels)}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()):
        family = self._family(name, "counter", help, labels)
        return family if family.label_names else family.labels()

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()):
        family = self._family(name, "gauge", help, labels)
        return family if family.label_names else family.labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        family = self._family(name, "histogram", help, labels, buckets)
        return family if family.label_names else family.labels()

    def register_stats(
        self,
        prefix: str,
        snapshot: Callable[[], object],
        maxed: Sequence[str] = (),
        help: str = "",
    ) -> None:
        """Register a ``*Stats`` snapshot callable as an exported view.

        ``snapshot`` returns a counter dataclass or a mapping; each field
        exports as gauge ``<prefix>_<field>``.  Views sharing a prefix
        aggregate like ``*Stats.merge``: summed, except ``maxed`` fields
        which take the maximum across instances.
        """
        view = _StatsView(prefix, snapshot, maxed, help)
        with self._lock:
            self._views = [v for v in self._views if not v.dead()]
            self._views.append(view)

    def views_snapshot(self) -> Dict[str, float]:
        """Merged ``<prefix>_<field> -> value`` across all live views."""
        with self._lock:
            self._views = [v for v in self._views if not v.dead()]
            views = list(self._views)
        merged: Dict[str, float] = {}
        maxed_keys = set()
        for view in views:
            values = view.read()
            if values is None:
                continue
            for field_name, value in values.items():
                key = f"{view.prefix}_{field_name}"
                if field_name in view.maxed:
                    maxed_keys.add(key)
                    merged[key] = max(merged.get(key, value), value)
                else:
                    merged[key] = merged.get(key, 0.0) + value
        return merged

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable export of every family and view."""
        metrics: Dict[str, object] = {}
        for family in self.families():
            series = [
                {"labels": child.labels, **child.snapshot()}
                for child in family.children()
            ]
            metrics[family.name] = {"type": family.kind, "help": family.help, "series": series}
        return {"metrics": metrics, "views": self.views_snapshot()}

    def prometheus(self) -> str:
        """Prometheus text exposition of every family and view."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for child in family.children():
                if isinstance(child, Histogram):
                    cumulative = 0
                    counts = child.bucket_counts()
                    for bound, bucket_count in zip(child.bounds, counts):
                        cumulative += bucket_count
                        labels = dict(child.labels, le=_format_number(bound))
                        lines.append(f"{family.name}_bucket{_format_labels(labels)} {cumulative}")
                    cumulative += counts[-1]
                    labels = dict(child.labels, le="+Inf")
                    lines.append(f"{family.name}_bucket{_format_labels(labels)} {cumulative}")
                    lines.append(f"{family.name}_sum{_format_labels(child.labels)} {_format_number(child.sum)}")
                    lines.append(f"{family.name}_count{_format_labels(child.labels)} {cumulative}")
                else:
                    value = child.value
                    lines.append(f"{family.name}{_format_labels(child.labels)} {_format_number(value)}")
        for name, value in sorted(self.views_snapshot().items()):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_number(value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every instrument (views reset through their owners)."""
        for family in self.families():
            for child in family.children():
                child.reset()


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in labels.items():
        escaped = str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def _format_number(value: float) -> str:
    if isinstance(value, float):
        if isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation uses."""
    return _DEFAULT_REGISTRY


def counter(name: str, help: str = "", labels: Sequence[str] = ()):
    """Get-or-create a counter on the default registry."""
    return _DEFAULT_REGISTRY.counter(name, help, labels)


def gauge(name: str, help: str = "", labels: Sequence[str] = ()):
    """Get-or-create a gauge on the default registry."""
    return _DEFAULT_REGISTRY.gauge(name, help, labels)


def histogram(name: str, help: str = "", labels: Sequence[str] = (), buckets: Sequence[float] = DEFAULT_TIME_BUCKETS):
    """Get-or-create a histogram on the default registry."""
    return _DEFAULT_REGISTRY.histogram(name, help, labels, buckets)


def register_stats(prefix: str, snapshot: Callable[[], object], maxed: Sequence[str] = (), help: str = "") -> None:
    """Register a ``*Stats`` view on the default registry."""
    _DEFAULT_REGISTRY.register_stats(prefix, snapshot, maxed, help)
