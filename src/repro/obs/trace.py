"""Span-based request tracing with thread-local propagation.

A :func:`span` context manager opens a span under the current thread's
innermost active span; :func:`carry_current_span` re-establishes that
parent on executor worker threads so a ``map_shards`` fan-out keeps one
connected tree: ``cluster.forecast_all`` -> ``shard.forecast`` ->
``service.flush`` -> ``batch.assemble`` -> ``plan.replay``.

Completed spans land in a bounded ring-buffer :class:`TraceRecorder`
(oldest dropped first) and export as Chrome trace-event JSON — load the
file at ``chrome://tracing`` / https://ui.perfetto.dev to see the tree.

When tracing is disabled (the default), ``span()`` returns a shared
no-op context manager and ``carry_current_span`` returns its argument
unchanged: no allocation, no thread-local access.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from time import perf_counter as _perf_counter
from typing import Callable, Dict, List, Optional

from .metrics import _STATE

__all__ = [
    "Span",
    "TraceRecorder",
    "span",
    "current_span",
    "carry_current_span",
    "default_recorder",
    "chrome_trace",
    "export_spans",
    "import_spans",
]

_NEXT_ID = itertools.count(1)
_LOCAL = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_LOCAL, "spans", None)
    if stack is None:
        stack = []
        _LOCAL.spans = stack
    return stack


class Span:
    """One timed region; a context manager that records itself on exit."""

    __slots__ = ("name", "args", "span_id", "parent_id", "start", "duration", "thread_id", "_recorder")

    def __init__(self, name: str, args: Dict[str, object], recorder: "TraceRecorder") -> None:
        self.name = name
        self.args = args
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self.duration = 0.0
        self.thread_id = 0
        self._recorder = recorder

    def __enter__(self) -> "Span":
        stack = _stack()
        parent = stack[-1] if stack else None
        self.parent_id = parent.span_id if parent is not None else None
        self.span_id = next(_NEXT_ID)
        self.thread_id = threading.get_ident()
        stack.append(self)
        self.start = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = _perf_counter() - self.start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: unbalanced exit keeps siblings sane
            stack.remove(self)
        self._recorder.record(self)
        return False


class _NullSpan:
    """Shared no-op returned by ``span()`` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Bounded ring buffer of completed spans (oldest dropped first)."""

    def __init__(self, capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._spans.maxlen or 0

    def record(self, span_: Span) -> None:
        with self._lock:
            self._spans.append(span_)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def chrome_events(self) -> List[Dict[str, object]]:
        """Spans as Chrome trace-event dicts (complete ``"ph": "X"`` events)."""
        return [
            {
                "name": span_.name,
                "ph": "X",
                "ts": span_.start * 1e6,
                "dur": span_.duration * 1e6,
                "pid": 1,
                "tid": span_.thread_id,
                "cat": "repro",
                "args": {
                    "span_id": span_.span_id,
                    "parent_id": span_.parent_id,
                    **span_.args,
                },
            }
            for span_ in self.spans()
        ]

    def export_chrome(self, path: Optional[str] = None) -> Dict[str, object]:
        """Chrome trace JSON document; also written to ``path`` if given."""
        document = chrome_trace(self.chrome_events())
        if path is not None:
            with open(path, "w") as handle:
                json.dump(document, handle, indent=2, default=repr)
        return document


def chrome_trace(events: List[Dict[str, object]]) -> Dict[str, object]:
    """Wrap trace events in the Chrome trace-viewer document shape."""
    return {"traceEvents": events, "displayTimeUnit": "ms"}


_DEFAULT_RECORDER = TraceRecorder()


def default_recorder() -> TraceRecorder:
    """The process-wide recorder all built-in spans land in."""
    return _DEFAULT_RECORDER


def span(name: str, recorder: Optional[TraceRecorder] = None, **args: object):
    """Open a span named ``name`` under the current thread's active span.

    Keyword arguments become the span's ``args`` payload in the Chrome
    export.  Returns a shared no-op context manager when tracing is off.
    """
    if not _STATE.tracing:
        return _NULL_SPAN
    return Span(name, args, recorder if recorder is not None else _DEFAULT_RECORDER)


def current_span() -> Optional[Span]:
    """The innermost active span on this thread, if any."""
    stack = getattr(_LOCAL, "spans", None)
    return stack[-1] if stack else None


def export_spans(spans: List[Span]) -> List[Dict[str, object]]:
    """Serialise completed spans as plain wire-safe records.

    This is the process-boundary counterpart of :func:`carry_current_span`:
    a worker exports the spans its command produced, ships them back in
    the reply, and the coordinator grafts them under its own active span
    with :func:`import_spans` — one connected tree across processes.
    ``args`` values that are not JSON scalars are stringified (span args
    are labels, not data).
    """
    records: List[Dict[str, object]] = []
    for span_ in spans:
        args = {
            key: value if isinstance(value, (str, int, float, bool, type(None))) else str(value)
            for key, value in span_.args.items()
        }
        records.append(
            {
                "name": span_.name,
                "args": args,
                "span_id": span_.span_id,
                "parent_id": span_.parent_id,
                "start": span_.start,
                "duration": span_.duration,
            }
        )
    return records


def import_spans(
    records: List[Dict[str, object]],
    parent_id: Optional[int] = None,
    rebase: float = 0.0,
    recorder: Optional[TraceRecorder] = None,
) -> int:
    """Graft exported spans into this process's trace.

    Span ids are remapped through this process's id counter (two workers'
    id sequences would otherwise collide), internal parent links are
    preserved, and roots are re-parented under ``parent_id``.  ``rebase``
    is added to every start time: each process has its own
    ``perf_counter`` origin, so the caller passes (local send time −
    worker root start) to place the subtree on the local clock.

    Returns the number of spans imported.
    """
    target = recorder if recorder is not None else _DEFAULT_RECORDER
    # Two passes: spans are recorded in completion order (children before
    # parents), so every id must be remapped before links are resolved.
    mapping: Dict[int, int] = {}
    for record in records:
        mapping[int(record["span_id"])] = next(_NEXT_ID)
    for record in records:
        span_ = Span(str(record["name"]), dict(record.get("args") or {}), target)
        span_.span_id = mapping[int(record["span_id"])]
        old_parent = record.get("parent_id")
        if old_parent is not None and int(old_parent) in mapping:
            span_.parent_id = mapping[int(old_parent)]
        else:
            span_.parent_id = parent_id
        span_.start = float(record.get("start", 0.0)) + rebase
        span_.duration = float(record.get("duration", 0.0))
        span_.thread_id = threading.get_ident()
        target.record(span_)
    return len(records)


def carry_current_span(fn: Callable) -> Callable:
    """Wrap ``fn`` so the caller's active span parents spans in ``fn``.

    Captures the *caller's* innermost span at wrap time and re-establishes
    it on whatever thread later runs ``fn`` — this is what keeps a
    ``PoolExecutor.map_shards`` fan-out attached to the cluster-level span.
    Identity when tracing is off or no span is active (zero overhead).
    """
    if not _STATE.tracing:
        return fn
    parent = current_span()
    if parent is None:
        return fn

    def carried(*args, **kwargs):
        stack = _stack()
        stack.append(parent)
        try:
            return fn(*args, **kwargs)
        finally:
            if stack and stack[-1] is parent:
                stack.pop()
            elif parent in stack:
                stack.remove(parent)

    return carried
