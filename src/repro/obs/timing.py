"""Centralised wall-clock access for the instrumented layers.

The ``timing-discipline`` lint rule bans raw ``time.perf_counter()`` /
``time.time()`` calls inside ``repro.{serving,streaming,cluster,runtime}``;
instrumentation clocks go through these helpers instead so latency metrics
share one monotonic clock and the disabled-mode fast path lives in exactly
one place.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter

from .metrics import _STATE, Histogram

__all__ = ["now", "timed"]


def now() -> float:
    """Monotonic seconds — the one sanctioned clock for instrumented code."""
    return _perf_counter()


class timed:
    """Context manager observing its elapsed seconds into ``histogram``.

    No-op (no clock read) when metrics are disabled at entry; suitable for
    cold paths — hot paths hand-roll the two ``now()`` calls to also gate
    label lookups behind one ``metrics_enabled()`` check.
    """

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "timed":
        self._start = _perf_counter() if _STATE.metrics else 0.0
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._start:
            self._histogram.observe(_perf_counter() - self._start)
        return False
