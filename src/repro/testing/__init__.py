"""``repro.testing`` — deterministic fault injection for degradation drills.

Production code stays fault-free; the harness lives behind the same
zero-overhead-when-disabled switch discipline as :mod:`repro.obs`: every
hooked call site reads one module attribute (``faults.active()``) and
does nothing else unless a drill armed a schedule.

See :mod:`repro.testing.faults` for the schedule/act machinery and
``tests/faults/`` for the drills built on it.
"""

from .faults import FaultSchedule, active, check, inject

__all__ = ["FaultSchedule", "active", "check", "inject"]
