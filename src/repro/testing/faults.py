"""Deterministic, seedable fault injection for the wire and cluster layers.

Degradation behaviour — retries masking a transient pipe hiccup, a
breaker tripping on a wedged worker, deadline-bounded fan-outs — is only
testable if the faults themselves are *reproducible*.  This module gives
drills a :class:`FaultSchedule`: an explicit list of faults, each bound
to a named injection **site** and an optional context **match**, consumed
in order as the hooked code paths run.  Randomised drills stay
deterministic because probabilistic faults draw from the schedule's own
seeded RNG, never from global randomness.

Sites are plain strings chosen by the hooked layer:

* ``"wire.send"`` / ``"wire.recv"`` — inside
  :func:`repro.wire.send_message` / :func:`repro.wire.recv_message`,
  before any socket operation (context: none);
* ``"shard.send"`` / ``"shard.recv"`` — inside
  :class:`repro.cluster.process.ProcessShard`, before the wire call
  (context: ``shard``, ``cmd``) — match on ``{"cmd": "ping"}`` to delay
  heartbeats, on ``{"shard": "shard-1"}`` to target one worker.

Fault kinds:

* ``"delay"`` — sleep ``seconds`` then proceed (slow worker / slow pipe);
* ``"drop"`` — the hooked *send* silently skips the write (a lost frame:
  the peer never sees the request, the caller's receive times out);
* ``"transient_eof"`` — raise
  :class:`~repro.errors.TransientWireError` before touching the socket
  (a retryable hiccup: the stream state is untouched, so a retry over
  the same socket is sound);
* ``"corrupt"`` — raise ``ValueError`` exactly as a bad-magic frame
  would (stream-fatal: the reader cannot know how many bytes to skip).

Everything is injected *before* the real socket operation, so the
underlying stream is never left in a half-consumed state the test didn't
ask for — injected faults model faults, they don't create novel ones.

The switch mirrors :mod:`repro.obs`: hooked call sites read one module
attribute (``_STATE.schedule``) and fall straight through when no drill
armed a schedule, so production traffic pays one pointer compare.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import TransientWireError

__all__ = ["KINDS", "FaultSchedule", "active", "check", "inject"]

#: the fault kinds :func:`check` knows how to act out
KINDS = ("delay", "drop", "transient_eof", "corrupt")


class _Switch:
    """Process-wide armed schedule; a bare attribute read is the fast path."""

    __slots__ = ("schedule",)

    def __init__(self) -> None:
        self.schedule: Optional["FaultSchedule"] = None


_STATE = _Switch()


def active() -> bool:
    """Whether a fault schedule is currently armed."""
    return _STATE.schedule is not None


class _Fault:
    """One scheduled fault: where it fires, what it does, how often."""

    __slots__ = ("site", "kind", "seconds", "match", "remaining", "probability")

    def __init__(
        self,
        site: str,
        kind: str,
        seconds: float,
        match: Dict[str, object],
        times: int,
        probability: float,
    ) -> None:
        self.site = site
        self.kind = kind
        self.seconds = seconds
        self.match = match
        self.remaining = times
        self.probability = probability

    def applies(self, site: str, ctx: Dict[str, object]) -> bool:
        if self.site != site or self.remaining <= 0:
            return False
        return all(ctx.get(key) == value for key, value in self.match.items())


class FaultSchedule:
    """An ordered, seedable plan of faults, consumed as hooked sites run.

    Thread-safe: the coordinator and worker-facing drills may hit hooked
    sites from timer or pool threads.  ``fired`` records every fault that
    actually acted (site, kind, context), in firing order, so a drill can
    assert its faults landed where it aimed them.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._faults: List[_Fault] = []
        self.fired: List[Tuple[str, str, Dict[str, object]]] = []

    def add(
        self,
        site: str,
        kind: str,
        seconds: float = 0.0,
        match: Optional[Dict[str, object]] = None,
        times: int = 1,
        probability: float = 1.0,
    ) -> "FaultSchedule":
        """Queue one fault; returns ``self`` so schedules chain fluently."""
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; use one of {KINDS}")
        if kind == "delay" and seconds <= 0:
            raise ValueError(f"delay faults need seconds > 0, got {seconds}")
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        with self._lock:
            self._faults.append(
                _Fault(site, kind, float(seconds), dict(match or {}), int(times), float(probability))
            )
        return self

    def take(self, site: str, ctx: Dict[str, object]) -> Optional[_Fault]:
        """Consume (one firing of) the first fault matching this site/context."""
        with self._lock:
            for fault in self._faults:
                if not fault.applies(site, ctx):
                    continue
                if fault.probability < 1.0 and self._rng.random() >= fault.probability:
                    return None  # this encounter rolled past the fault
                fault.remaining -= 1
                self.fired.append((site, fault.kind, dict(ctx)))
                return fault
        return None

    def pending(self) -> int:
        """Remaining firings across every queued fault."""
        with self._lock:
            return sum(fault.remaining for fault in self._faults)


def check(site: str, **ctx: object) -> Optional[str]:
    """Hooked-site entry point: act out the next matching fault, if any.

    Returns ``"drop"`` when the caller should silently skip its write,
    ``None`` otherwise; ``delay`` sleeps here, ``transient_eof`` and
    ``corrupt`` raise here.  Call sites guard with ``_STATE.schedule is
    not None`` so the disabled path never even enters this function.
    """
    schedule = _STATE.schedule
    if schedule is None:
        return None
    fault = schedule.take(site, ctx)
    if fault is None:
        return None
    if fault.kind == "delay":
        time.sleep(fault.seconds)
        return None
    if fault.kind == "drop":
        return "drop"
    if fault.kind == "transient_eof":
        raise TransientWireError(f"injected transient end-of-stream at {site}")
    # fault.kind == "corrupt" — the exact error a bad-magic frame raises.
    raise ValueError(f"not a wire message (bad magic) [injected at {site}]")


@contextmanager
def inject(schedule: FaultSchedule) -> Iterator[FaultSchedule]:
    """Arm a schedule for the duration of a ``with`` block (re-entrant safe:
    the previously armed schedule, if any, is restored on exit)."""
    previous = _STATE.schedule
    _STATE.schedule = schedule
    try:
        yield schedule
    finally:
        _STATE.schedule = previous
