"""Configuration dataclasses shared by models, trainers and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

__all__ = ["ModelConfig", "TrainingConfig"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters for a forecasting model.

    Defaults follow the paper's Section IV-A2 ("Data & Model Configuration")
    except that the hidden size is left to each experiment profile — the
    paper uses 512 on a GPU workstation, the quick CPU profile uses 64.
    """

    input_length: int = 720
    horizon: int = 96
    n_channels: int = 7
    patch_length: int = 48
    hidden_dim: int = 512
    dropout: float = 0.5
    n_heads: int = 4
    n_layers: int = 2
    covariate_numerical_dim: int = 0
    covariate_categorical_cardinalities: Tuple[int, ...] = ()
    covariate_embed_dim: int = 8
    covariate_hidden_dim: int = 64
    smooth_l1_beta: float = 1.0
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.input_length < 1 or self.horizon < 1:
            raise ValueError("input_length and horizon must be positive")
        if self.patch_length < 1:
            raise ValueError("patch_length must be positive")
        if self.input_length % self.patch_length != 0:
            raise ValueError(
                f"input_length ({self.input_length}) must be divisible by "
                f"patch_length ({self.patch_length}); the paper uses non-overlapping patches"
            )
        if self.hidden_dim < 1:
            raise ValueError("hidden_dim must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")

    @property
    def n_patches(self) -> int:
        """Number of input patches ``n = T / pl``."""
        return self.input_length // self.patch_length

    @property
    def n_target_patches(self) -> int:
        """Number of output patches ``nt = ceil(L / pl)``."""
        return max(1, -(-self.horizon // self.patch_length))

    @property
    def has_covariates(self) -> bool:
        return self.covariate_numerical_dim > 0 or bool(self.covariate_categorical_cardinalities)

    def with_overrides(self, **kwargs) -> "ModelConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters."""

    epochs: int = 10
    batch_size: int = 256
    learning_rate: float = 1e-3
    weight_decay: float = 1e-2
    patience: int = 3
    gradient_clip: float = 5.0
    lr_decay_gamma: float = 1.0
    pretrain_epochs: int = 3
    pretrain_learning_rate: float = 1e-3
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.patience < 0:
            raise ValueError("patience must be non-negative")
        if not 0.0 < self.lr_decay_gamma <= 1.0:
            raise ValueError("lr_decay_gamma must be in (0, 1]; 1 disables the decay")

    def with_overrides(self, **kwargs) -> "TrainingConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
