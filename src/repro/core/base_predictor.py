"""LiPFormer's Base Predictor backbone (paper Figure 4).

Pipeline for one mini-batch ``[b, T, c]``:

1. instance normalisation (subtract the last observed value);
2. channel-independent patch division into ``[b*c, n, pl]``;
3. Cross-Patch attention over trend sequences (+ residual);
4. linear embedding of each patch into the hidden space ``[b*c, n, hd]``
   (the "Inter-Patch MLP");
5. Inter-Patch attention over patch tokens (+ residual);
6. an FFN-less prediction head: a linear mix across the patch axis
   (``n -> nt``), a GELU, and a linear map back to patch values
   (``hd -> pl``);
7. reassembly into ``[b, L, c]`` and de-normalisation.

The constructor flags ``use_cross_patch``, ``use_inter_patch_attention``,
``use_layer_norm`` and ``use_ffn`` exist solely for the paper's ablation
studies (Tables X and XI); the published LiPFormer uses the defaults.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import Dropout, LayerNorm, Linear, Module, Sequential, GELU, Tensor
from ..nn import functional as F
from .attention_blocks import CrossPatchAttention, InterPatchAttention
from .base import ForecastModel
from .patching import patchify, unpatchify_forecast
from .revin import LastValueNormalizer

__all__ = ["BasePredictor"]


class BasePredictor(ForecastModel):
    """The lightweight patch-wise backbone used by LiPFormer."""

    # Patch division, attention and the prediction head are all
    # shape-determined, so the backbone traces into an inference plan.
    supports_compiled_plan = True

    def __init__(
        self,
        config: ModelConfig,
        use_cross_patch: bool = True,
        use_inter_patch_attention: bool = True,
        use_layer_norm: bool = False,
        use_ffn: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        pl = config.patch_length
        hd = config.hidden_dim
        n = config.n_patches
        nt = config.n_target_patches

        self.use_cross_patch = use_cross_patch
        self.use_inter_patch_attention = use_inter_patch_attention
        self.use_layer_norm = use_layer_norm
        self.use_ffn = use_ffn
        self.normalizer = LastValueNormalizer()

        if use_cross_patch:
            self.cross_patch = CrossPatchAttention(n, pl, dropout=config.dropout, rng=generator)
        else:
            # Ablation "w/o Cross-Patch attn.": a plain linear layer instead.
            self.cross_patch_linear = Linear(pl, pl, rng=generator)

        self.patch_embedding = Linear(pl, hd, rng=generator)

        if use_inter_patch_attention:
            self.inter_patch = InterPatchAttention(hd, pl, dropout=config.dropout, rng=generator)
        else:
            # Ablation "w/o Inter-Patch attn.": a plain linear layer instead.
            self.inter_patch_linear = Linear(hd, hd, rng=generator)

        if use_layer_norm:
            self.layer_norm = LayerNorm(hd)
        if use_ffn:
            self.ffn = Sequential(
                Linear(hd, 4 * hd, rng=generator),
                GELU(),
                Linear(4 * hd, hd, rng=generator),
            )

        self.dropout = Dropout(config.dropout, rng=generator)
        self.temporal_head = Linear(n, nt, rng=generator)
        self.value_head = Linear(hd, pl, rng=generator)
        # Zero-initialise the final projection so an untrained model exactly
        # reproduces the naive last-value forecast (the instance-normalisation
        # baseline); training then only has to learn the residual structure.
        self.value_head.weight.data[...] = 0.0

    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        batch, _, channels = x.shape
        normalized, last_value = self.normalizer.normalize(x)

        patches = patchify(normalized, self.config.patch_length)  # [b*c, n, pl]
        if self.use_cross_patch:
            patches = self.cross_patch(patches)
        else:
            patches = self.cross_patch_linear(patches) + patches

        tokens = self.patch_embedding(patches)  # [b*c, n, hd]
        if self.use_inter_patch_attention:
            tokens = self.inter_patch(tokens)
        else:
            tokens = self.inter_patch_linear(tokens) + tokens

        if self.use_layer_norm:
            tokens = self.layer_norm(tokens)
        if self.use_ffn:
            tokens = self.ffn(tokens) + tokens

        # FFN-less head: mix across the patch axis, then map back to values.
        mixed = self.temporal_head(tokens.transpose(0, 2, 1))     # [b*c, hd, nt]
        mixed = F.gelu(mixed).transpose(0, 2, 1)                   # [b*c, nt, hd]
        target_patches = self.value_head(self.dropout(mixed))      # [b*c, nt, pl]

        forecast = unpatchify_forecast(target_patches, batch, channels, self.config.horizon)
        return self.normalizer.denormalize(forecast, last_value)
