"""LiPFormer's two patch-wise attention mechanisms (paper Section III-C1).

Cross-Patch attention
    operates on the *trend sequences* — the ``pl`` series obtained by
    reading a fixed position of every patch in order.  Attention across
    those sequences captures global trend correlations and replaces
    Positional Encoding.  Its Q/K/V projections act on the patch-count axis
    (``n``), so the cost is ``O(n^2)`` parameters, tiny compared to a
    Transformer block.

Inter-Patch attention
    operates on patch tokens embedded into the hidden space.  To honour the
    paper's "FFN-less linear attention" parameter budget of ``O(hd · pl)``
    (instead of the standard ``O(hd^2)``), the query and key projections map
    the hidden dimension down to ``pl`` and the value path is the identity;
    attention weights computed over the compact ``pl``-dimensional space are
    applied directly to the hidden representation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Dropout, Linear, Module, Tensor
from ..nn import functional as F

__all__ = ["CrossPatchAttention", "InterPatchAttention"]


class CrossPatchAttention(Module):
    """Self-attention across trend sequences, with a residual connection.

    Input and output shape: ``[b*c, n, pl]``.
    """

    def __init__(
        self,
        n_patches: int,
        patch_length: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.n_patches = n_patches
        self.patch_length = patch_length
        self.query = Linear(n_patches, n_patches, rng=rng)
        self.key = Linear(n_patches, n_patches, rng=rng)
        self.value = Linear(n_patches, n_patches, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, patches: Tensor) -> Tensor:
        if patches.shape[-1] != self.patch_length or patches.shape[-2] != self.n_patches:
            raise ValueError(
                f"expected patches of shape [*, {self.n_patches}, {self.patch_length}], "
                f"got {patches.shape}"
            )
        trends = patches.transpose(0, 2, 1)  # [b*c, pl, n]: pl trend tokens of dim n
        attended = F.scaled_dot_product_attention(
            self.query(trends), self.key(trends), self.value(trends)
        )
        attended = self.dropout(attended).transpose(0, 2, 1)  # back to [b*c, n, pl]
        return attended + patches


class InterPatchAttention(Module):
    """Lightweight attention over patch tokens in the hidden space.

    Input and output shape: ``[b*c, n, hd]``.  Queries and keys are projected
    to ``pl`` dimensions (``O(hd · pl)`` parameters); values are the hidden
    representations themselves, so no value/output projection is needed.
    """

    def __init__(
        self,
        hidden_dim: int,
        attention_dim: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.hidden_dim = hidden_dim
        self.attention_dim = attention_dim
        self.query = Linear(hidden_dim, attention_dim, rng=rng)
        self.key = Linear(hidden_dim, attention_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, tokens: Tensor) -> Tensor:
        if tokens.shape[-1] != self.hidden_dim:
            raise ValueError(
                f"expected hidden dimension {self.hidden_dim}, got {tokens.shape[-1]}"
            )
        queries = self.query(tokens)
        keys = self.key(tokens)
        scores = (queries @ keys.swapaxes(-1, -2)) / float(np.sqrt(self.attention_dim))
        weights = F.softmax(scores, axis=-1)
        attended = self.dropout(weights @ tokens)
        return attended + tokens
