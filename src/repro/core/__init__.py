"""``repro.core`` — the paper's primary contribution: LiPFormer."""

from .attention_blocks import CrossPatchAttention, InterPatchAttention
from .base import ForecastModel
from .base_predictor import BasePredictor
from .covariate_encoder import CovariateEncoder, TargetEncoder
from .dual_encoder import DualEncoder
from .lipformer import LiPFormer
from .patching import patchify, trend_sequences, unpatchify_forecast
from .revin import LastValueNormalizer
from .variants import (
    ABLATION_VARIANTS,
    lipformer_full,
    lipformer_with_ffn,
    lipformer_with_ffn_and_layernorm,
    lipformer_with_layernorm,
    lipformer_without_both,
    lipformer_without_covariate_guidance,
    lipformer_without_cross_patch,
    lipformer_without_inter_patch,
)

__all__ = [
    "CrossPatchAttention",
    "InterPatchAttention",
    "ForecastModel",
    "BasePredictor",
    "CovariateEncoder",
    "TargetEncoder",
    "DualEncoder",
    "LiPFormer",
    "patchify",
    "trend_sequences",
    "unpatchify_forecast",
    "LastValueNormalizer",
    "ABLATION_VARIANTS",
    "lipformer_full",
    "lipformer_with_ffn",
    "lipformer_with_layernorm",
    "lipformer_with_ffn_and_layernorm",
    "lipformer_without_cross_patch",
    "lipformer_without_inter_patch",
    "lipformer_without_both",
    "lipformer_without_covariate_guidance",
]
