"""Common interface implemented by LiPFormer and every baseline model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import Module, Tensor, as_tensor

__all__ = ["ForecastModel"]


class ForecastModel(Module):
    """Base class for multivariate forecasters.

    Sub-classes implement :meth:`forward` taking a history tensor of shape
    ``[batch, input_length, channels]`` plus optional future covariates and
    returning a forecast of shape ``[batch, horizon, channels]``.

    ``supports_covariates`` advertises whether the model consumes the
    covariate arguments; the trainer passes them only when supported so that
    covariate-agnostic baselines (DLinear, PatchTST, ...) match the paper's
    protocol.
    """

    #: whether the model consumes explicit/implicit future covariates
    supports_covariates: bool = False

    #: whether ``predict(compiled=True)`` may trace this model into a
    #: graph-free :class:`~repro.nn.plan.InferencePlan`.  Opt-in: a model
    #: may only set this when its ``forward`` is shape-determined — no
    #: value-dependent raw-NumPy constants baked in mid-forward.
    supports_compiled_plan: bool = False

    def __init__(self, config: ModelConfig) -> None:
        super().__init__()
        self.config = config

    # ------------------------------------------------------------------ #
    def compiled_predictor(self, max_batch: Optional[int] = None):
        """The lazily created per-model plan cache (compiled fast path).

        ``max_batch`` configures the polymorphic trace width (the batch
        size warmup traces at, serving every smaller batch from one plan).
        Passing it for an existing predictor grows the width in place —
        the serving layer calls this with its ``max_batch_size`` so plans
        are traced at the micro-batch ceiling.
        """
        from ..nn.plan import CompiledPredictor

        predictor = getattr(self, "_compiled", None)
        if predictor is None:
            predictor = (
                CompiledPredictor(self)
                if max_batch is None
                else CompiledPredictor(self, max_batch=max_batch)
            )
            self._compiled = predictor
        elif max_batch is not None:
            predictor.grow_max_batch(max_batch)
        return predictor

    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def predict(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
        compiled: bool = False,
    ) -> np.ndarray:
        """Inference helper: NumPy in, NumPy out, no gradient tracking.

        With ``compiled=True`` (and a model that opted into
        ``supports_compiled_plan``) the call routes through the per-model
        :class:`~repro.nn.plan.CompiledPredictor`: a graph-free replay of
        the traced forward over a preallocated arena, bit-identical to the
        eager path.  Unsupported models, failed traces and lock contention
        all fall back to eager transparently.
        """
        from ..nn import no_grad

        x = np.asarray(x, dtype=np.float32)
        if compiled and self.supports_compiled_plan:
            # Plan replay is independent of the train/eval flag (plans are
            # traced in eval mode; replay touches no stochastic layers), so
            # the hit path skips the module-tree eval()/train() walks.
            output = self._predict_compiled(x, future_numerical, future_categorical)
            if output is not None:
                return output
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                result = self.forward(
                    as_tensor(x),
                    future_numerical=future_numerical,
                    future_categorical=future_categorical,
                )
        finally:
            self.train(was_training)
        return result.data

    def _predict_compiled(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray],
        future_categorical: Optional[np.ndarray],
    ) -> Optional[np.ndarray]:
        """Compiled fast path; ``None`` means "run eager instead"."""
        predictor = self.compiled_predictor()
        output = predictor.predict(x, future_numerical, future_categorical)
        if output is None and predictor.needs_eval_trace:
            # First call for this signature arrived with the model in
            # training mode: flip to eval for the trace, exactly like the
            # eager path does, then retry once.
            was_training = self.training
            self.eval()
            try:
                output = predictor.predict(x, future_numerical, future_categorical)
            finally:
                self.train(was_training)
        return output

    def _validate_input(self, x: Tensor) -> None:
        if x.ndim != 3:
            raise ValueError(f"expected input of shape [batch, time, channels], got {x.shape}")
        if x.shape[1] != self.config.input_length:
            raise ValueError(
                f"expected input_length {self.config.input_length}, got {x.shape[1]}"
            )
        if x.shape[2] != self.config.n_channels:
            raise ValueError(
                f"expected {self.config.n_channels} channels, got {x.shape[2]}"
            )
