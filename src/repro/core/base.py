"""Common interface implemented by LiPFormer and every baseline model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import Module, Tensor, as_tensor

__all__ = ["ForecastModel"]


class ForecastModel(Module):
    """Base class for multivariate forecasters.

    Sub-classes implement :meth:`forward` taking a history tensor of shape
    ``[batch, input_length, channels]`` plus optional future covariates and
    returning a forecast of shape ``[batch, horizon, channels]``.

    ``supports_covariates`` advertises whether the model consumes the
    covariate arguments; the trainer passes them only when supported so that
    covariate-agnostic baselines (DLinear, PatchTST, ...) match the paper's
    protocol.
    """

    #: whether the model consumes explicit/implicit future covariates
    supports_covariates: bool = False

    def __init__(self, config: ModelConfig) -> None:
        super().__init__()
        self.config = config

    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def predict(
        self,
        x: np.ndarray,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Inference helper: NumPy in, NumPy out, no gradient tracking."""
        from ..nn import no_grad

        was_training = self.training
        self.eval()
        try:
            with no_grad():
                output = self.forward(
                    as_tensor(np.asarray(x, dtype=np.float32)),
                    future_numerical=future_numerical,
                    future_categorical=future_categorical,
                )
        finally:
            self.train(was_training)
        return output.data

    def _validate_input(self, x: Tensor) -> None:
        if x.ndim != 3:
            raise ValueError(f"expected input of shape [batch, time, channels], got {x.shape}")
        if x.shape[1] != self.config.input_length:
            raise ValueError(
                f"expected input_length {self.config.input_length}, got {x.shape[1]}"
            )
        if x.shape[2] != self.config.n_channels:
            raise ValueError(
                f"expected {self.config.n_channels} channels, got {x.shape[2]}"
            )
