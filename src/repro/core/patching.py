"""Patch division and trend-sequence construction (paper Figures 2 and 3).

A multivariate window ``[batch, T, C]`` is handled channel-independently:
each univariate series is cut into ``n = T / pl`` non-overlapping patches of
length ``pl``, giving a tensor ``[batch * C, n, pl]``.

The *trend sequences* used by Cross-Patch attention are obtained by reading
the same position of every patch in chronological order — i.e. simply the
transpose ``[batch * C, pl, n]``: trend sequence ``k`` contains the ``k``-th
data point of each patch and spans the whole input window.
"""

from __future__ import annotations

from ..nn import Tensor

__all__ = ["patchify", "unpatchify_forecast", "trend_sequences"]


def patchify(x: Tensor, patch_length: int) -> Tensor:
    """Reshape ``[b, T, c]`` into channel-independent patches ``[b*c, n, pl]``."""
    batch, length, channels = x.shape
    if length % patch_length != 0:
        raise ValueError(
            f"input length {length} is not divisible by patch length {patch_length}"
        )
    n_patches = length // patch_length
    # [b, T, c] -> [b, c, T] -> [b*c, n, pl]
    per_channel = x.transpose(0, 2, 1).reshape(batch * channels, length)
    return per_channel.reshape(batch * channels, n_patches, patch_length)


def trend_sequences(patches: Tensor) -> Tensor:
    """Return the ``pl`` trend sequences ``[b*c, pl, n]`` of a patched input."""
    return patches.transpose(0, 2, 1)


def unpatchify_forecast(patches: Tensor, batch: int, channels: int, horizon: int) -> Tensor:
    """Reassemble target patches ``[b*c, nt, pl]`` into a forecast ``[b, L, c]``.

    When ``nt * pl`` exceeds the requested horizon the trailing surplus is
    dropped (this happens when the horizon is not a multiple of the patch
    length).
    """
    flat = patches.reshape(batch, channels, patches.shape[1] * patches.shape[2])
    flat = flat[:, :, :horizon]
    return flat.transpose(0, 2, 1)
