"""Instance normalisation by last-value subtraction (paper Section III-C1).

LiPFormer mitigates distribution shift with the simple normalisation
inherited from DLinear / NLinear: subtract the last observed value of each
channel from the whole input window and add it back to the prediction.
"""

from __future__ import annotations

from typing import Tuple

from ..nn import Tensor

__all__ = ["LastValueNormalizer"]


class LastValueNormalizer:
    """Stateless helper implementing ``x' = x - x_T`` and ``ŷ = ŷ' + x_T``."""

    @staticmethod
    def normalize(x: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(x - last, last)`` where ``last`` is ``x[:, -1:, :]``."""
        last = x[:, -1:, :]
        return x - last, last

    @staticmethod
    def denormalize(prediction: Tensor, last: Tensor) -> Tensor:
        """Add back the stored last value."""
        return prediction + last
