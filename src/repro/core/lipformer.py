"""The complete LiPFormer model (paper Figure 1).

``prediction = BasePredictor(history) + VectorMapping(CovariateEncoder(F))``

The Covariate Encoder is pre-trained contrastively against a Target Encoder
(see :mod:`repro.core.dual_encoder`), then frozen; the Vector Mapping linear
layer is trained together with the Base Predictor and learns how much of the
covariate signal to inject (paper Eq. 8).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import ModelConfig
from ..nn import Linear, Parameter, Tensor
from .base import ForecastModel
from .base_predictor import BasePredictor
from .covariate_encoder import CovariateEncoder, TargetEncoder
from .dual_encoder import DualEncoder

__all__ = ["LiPFormer"]


class LiPFormer(ForecastModel):
    """Lightweight Patch-wise Transformer with weak data enriching."""

    supports_covariates = True
    # The whole forward (base predictor, covariate encoder, vector mapping)
    # is shape-determined, so it traces into a graph-free inference plan.
    supports_compiled_plan = True

    def __init__(
        self,
        config: ModelConfig,
        use_covariate_guidance: bool = True,
        use_cross_patch: bool = True,
        use_inter_patch_attention: bool = True,
        use_layer_norm: bool = False,
        use_ffn: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        self.base_predictor = BasePredictor(
            config,
            use_cross_patch=use_cross_patch,
            use_inter_patch_attention=use_inter_patch_attention,
            use_layer_norm=use_layer_norm,
            use_ffn=use_ffn,
            rng=generator,
        )
        self.use_covariate_guidance = use_covariate_guidance and config.has_covariates
        self.covariate_encoder: Optional[CovariateEncoder] = None
        self.vector_mapping: Optional[Linear] = None
        self._covariate_encoder_frozen = False
        if self.use_covariate_guidance:
            self.covariate_encoder = CovariateEncoder(
                horizon=config.horizon,
                numerical_dim=config.covariate_numerical_dim,
                categorical_cardinalities=config.covariate_categorical_cardinalities,
                embed_dim=config.covariate_embed_dim,
                hidden_dim=config.covariate_hidden_dim,
                rng=generator,
            )
            self.vector_mapping = Linear(config.horizon, config.horizon, rng=generator)
            # Start with no covariate guidance: the Vector Mapping layer learns
            # how much of the (frozen) Covariate Encoder signal to inject.
            self.vector_mapping.weight.data[...] = 0.0

    # ------------------------------------------------------------------ #
    # Pre-training support
    # ------------------------------------------------------------------ #
    def build_dual_encoder(self, rng: Optional[np.random.Generator] = None) -> DualEncoder:
        """Create the dual encoder used for contrastive pre-training.

        The returned object shares this model's Covariate Encoder, so
        pre-training it updates the weights the forecaster will later use.
        """
        if self.covariate_encoder is None:
            raise RuntimeError("this LiPFormer instance was built without covariate guidance")
        target_encoder = TargetEncoder(
            horizon=self.config.horizon,
            n_channels=self.config.n_channels,
            hidden_dim=self.config.covariate_hidden_dim,
            rng=rng if rng is not None else np.random.default_rng(self.config.seed + 1),
        )
        return DualEncoder(self.covariate_encoder, target_encoder)

    def freeze_covariate_encoder(self) -> None:
        """Freeze the Covariate Encoder (called after pre-training).

        Freeze ordering: this only changes what :meth:`optimizer_parameters`
        returns.  ``Trainer`` re-resolves that list at ``fit()`` time, so the
        freeze takes effect even when the trainer (and its AdamW) was built
        before this call — the standard two-stage flow of
        ``pretrain_covariate_encoder`` followed by ``Trainer.fit``.
        """
        self._covariate_encoder_frozen = True

    @property
    def covariate_encoder_frozen(self) -> bool:
        return self._covariate_encoder_frozen

    def optimizer_parameters(self) -> List[Parameter]:
        """Parameters the prediction-oriented training should update.

        Excludes the Covariate Encoder once it has been frozen, per the
        paper's two-stage training procedure.
        """
        if not self._covariate_encoder_frozen or self.covariate_encoder is None:
            return self.parameters()
        frozen = {id(p) for p in self.covariate_encoder.parameters()}
        return [p for p in self.parameters() if id(p) not in frozen]

    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        base_forecast = self.base_predictor(x)
        if not self.use_covariate_guidance or self.covariate_encoder is None:
            return base_forecast
        if future_numerical is None and future_categorical is None:
            return base_forecast
        covariate_vector = self.covariate_encoder(future_numerical, future_categorical)  # [b, L]
        guidance = self.vector_mapping(covariate_vector)                                  # [b, L]
        # Repeat across channels (Figure 1: "b x L -> repeat [b x L x c]").
        return base_forecast + guidance.unsqueeze(-1)
