"""Plug the Covariate Encoder into arbitrary forecasting models.

Paper Section IV-E6 / Table XII demonstrates that the weak-data-enriching
architecture "can be seamlessly transplanted into existing time series
forecasting frameworks": Transformer, Informer and Autoformer all improve
when the pre-trained Covariate Encoder output is added through a Vector
Mapping layer.  :class:`CovariateEnrichedModel` implements that wrapper for
any :class:`~repro.core.base.ForecastModel`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import ModelConfig
from ..nn import Linear, Parameter, Tensor
from .base import ForecastModel
from .covariate_encoder import CovariateEncoder, TargetEncoder
from .dual_encoder import DualEncoder

__all__ = ["CovariateEnrichedModel"]


class CovariateEnrichedModel(ForecastModel):
    """Wrap a base forecaster with Covariate Encoder guidance (Eq. 8)."""

    supports_covariates = True

    def __init__(
        self,
        base_model: ForecastModel,
        config: Optional[ModelConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        config = config or base_model.config
        super().__init__(config)
        if not config.has_covariates:
            raise ValueError("CovariateEnrichedModel requires covariate dimensions in the config")
        generator = rng if rng is not None else np.random.default_rng(config.seed + 7)
        self.base_model = base_model
        self.covariate_encoder = CovariateEncoder(
            horizon=config.horizon,
            numerical_dim=config.covariate_numerical_dim,
            categorical_cardinalities=config.covariate_categorical_cardinalities,
            embed_dim=config.covariate_embed_dim,
            hidden_dim=config.covariate_hidden_dim,
            rng=generator,
        )
        self.vector_mapping = Linear(config.horizon, config.horizon, rng=generator)
        # As in LiPFormer, guidance starts at zero and is learned.
        self.vector_mapping.weight.data[...] = 0.0
        self._covariate_encoder_frozen = False

    # ------------------------------------------------------------------ #
    def build_dual_encoder(self, rng: Optional[np.random.Generator] = None) -> DualEncoder:
        """Dual encoder for contrastive pre-training of the wrapped encoder."""
        target_encoder = TargetEncoder(
            horizon=self.config.horizon,
            n_channels=self.config.n_channels,
            hidden_dim=self.config.covariate_hidden_dim,
            rng=rng if rng is not None else np.random.default_rng(self.config.seed + 11),
        )
        return DualEncoder(self.covariate_encoder, target_encoder)

    def freeze_covariate_encoder(self) -> None:
        """Freeze the transplanted encoder; ``Trainer.fit`` re-resolves
        :meth:`optimizer_parameters`, so calling this after trainer
        construction still excludes the encoder from optimisation."""
        self._covariate_encoder_frozen = True

    @property
    def covariate_encoder_frozen(self) -> bool:
        return self._covariate_encoder_frozen

    def optimizer_parameters(self) -> List[Parameter]:
        if not self._covariate_encoder_frozen:
            return self.parameters()
        frozen = {id(p) for p in self.covariate_encoder.parameters()}
        return [p for p in self.parameters() if id(p) not in frozen]

    # ------------------------------------------------------------------ #
    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        base_forecast = self.base_model(x)
        if future_numerical is None and future_categorical is None:
            return base_forecast
        covariate_vector = self.covariate_encoder(future_numerical, future_categorical)
        guidance = self.vector_mapping(covariate_vector)
        return base_forecast + guidance.unsqueeze(-1)
