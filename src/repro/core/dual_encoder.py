"""Dual-encoder contrastive pre-training (paper Section III-B, Figure 1 top).

Given a batch of ``(future covariates, target sequence)`` pairs, the
Covariate Encoder and the Target Encoder each produce a ``[batch, horizon]``
representation; a CLIP-style symmetric cross-entropy pulls the ``b``
matching pairs together and pushes the ``b^2 - b`` mismatched pairs apart.
After pre-training the Target Encoder is discarded and the frozen Covariate
Encoder guides the Base Predictor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Module, SymmetricContrastiveLoss, Tensor
from .covariate_encoder import CovariateEncoder, TargetEncoder

__all__ = ["DualEncoder"]


class DualEncoder(Module):
    """Covariate Encoder + Target Encoder + symmetric contrastive loss."""

    def __init__(
        self,
        covariate_encoder: CovariateEncoder,
        target_encoder: TargetEncoder,
        temperature: float = 0.07,
    ) -> None:
        super().__init__()
        self.covariate_encoder = covariate_encoder
        self.target_encoder = target_encoder
        self.loss_fn = SymmetricContrastiveLoss(temperature=temperature)

    def forward(
        self,
        targets: np.ndarray,
        future_numerical: Optional[np.ndarray],
        future_categorical: Optional[np.ndarray],
    ) -> Tensor:
        """Return the contrastive loss for one batch of covariate-target pairs."""
        covariate_embeddings = self.covariate_encoder(future_numerical, future_categorical)
        target_embeddings = self.target_encoder(targets)
        return self.loss_fn(target_embeddings, covariate_embeddings)

    def logits_matrix(
        self,
        targets: np.ndarray,
        future_numerical: Optional[np.ndarray],
        future_categorical: Optional[np.ndarray],
    ) -> np.ndarray:
        """Return the ``[b, b]`` similarity matrix visualised in paper Figure 7."""
        covariate_embeddings = self.covariate_encoder(future_numerical, future_categorical)
        target_embeddings = self.target_encoder(targets)
        return self.loss_fn.logits(target_embeddings, covariate_embeddings).data
