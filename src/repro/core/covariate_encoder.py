"""Covariate Encoder and Target Encoder (paper Figure 5, Eqs. 3-7).

The Covariate Encoder turns explicit (weather forecasts, load forecasts,
holiday flags, ...) or implicit (calendar) future covariates into a single
``[batch, horizon]`` representation vector; the Target Encoder does the same
for ground-truth future sequences.  The two are trained jointly with a
CLIP-style contrastive objective (see :mod:`repro.core.dual_encoder`) and the
frozen Covariate Encoder then guides the Base Predictor through the Vector
Mapping layer.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..nn import Embedding, Linear, Module, ModuleList, ResidualSelfAttention, Tensor, as_tensor
from ..nn import concatenate

__all__ = ["CovariateEncoder", "TargetEncoder"]


class CovariateEncoder(Module):
    """Encode future covariates into a ``[batch, horizon]`` vector.

    Textual / categorical covariates are embedded and concatenated with the
    numerical covariates (Eq. 3); the result is projected to the hidden size
    (Eq. 4), passed through a residual self-attention over the horizon
    (Eq. 5), flattened and projected down to ``horizon`` values (Eq. 6).
    """

    def __init__(
        self,
        horizon: int,
        numerical_dim: int,
        categorical_cardinalities: Sequence[int],
        embed_dim: int = 8,
        hidden_dim: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if numerical_dim < 0:
            raise ValueError("numerical_dim must be non-negative")
        if numerical_dim == 0 and not categorical_cardinalities:
            raise ValueError("the covariate encoder needs at least one covariate channel")
        generator = rng if rng is not None else np.random.default_rng(0)
        self.horizon = horizon
        self.numerical_dim = numerical_dim
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.embeddings = ModuleList(
            [Embedding(cardinality, embed_dim, rng=generator) for cardinality in categorical_cardinalities]
        )
        total_dim = numerical_dim + len(categorical_cardinalities) * embed_dim
        self.input_projection = Linear(total_dim, hidden_dim, rng=generator)
        self.attention = ResidualSelfAttention(hidden_dim, rng=generator)
        self.output_projection = Linear(horizon * hidden_dim, horizon, rng=generator)

    # ------------------------------------------------------------------ #
    def _concatenate_inputs(
        self,
        numerical: Optional[np.ndarray],
        categorical: Optional[np.ndarray],
    ) -> Tensor:
        pieces = []
        if self.numerical_dim:
            if numerical is None:
                raise ValueError("numerical covariates are required but missing")
            numerical = np.asarray(numerical, dtype=np.float32)
            if numerical.shape[-1] != self.numerical_dim:
                raise ValueError(
                    f"expected {self.numerical_dim} numerical covariates, got {numerical.shape[-1]}"
                )
            pieces.append(as_tensor(numerical))
        if len(self.embeddings):
            if categorical is None:
                raise ValueError("categorical covariates are required but missing")
            categorical = np.asarray(categorical, dtype=np.int64)
            if categorical.shape[-1] != len(self.embeddings):
                raise ValueError(
                    f"expected {len(self.embeddings)} categorical covariates, "
                    f"got {categorical.shape[-1]}"
                )
            for column, embedding in enumerate(self.embeddings):
                pieces.append(embedding(categorical[..., column]))
        return concatenate(pieces, axis=-1) if len(pieces) > 1 else pieces[0]

    def forward(
        self,
        numerical: Optional[np.ndarray],
        categorical: Optional[np.ndarray],
    ) -> Tensor:
        combined = self._concatenate_inputs(numerical, categorical)  # [b, L, cf']
        if combined.shape[1] != self.horizon:
            raise ValueError(
                f"covariates must cover the forecast horizon {self.horizon}, got {combined.shape[1]}"
            )
        hidden = self.input_projection(combined)                     # [b, L, hd]
        attended = self.attention(hidden)                            # [b, L, hd]
        batch = attended.shape[0]
        flattened = attended.reshape(batch, self.horizon * self.hidden_dim)
        return self.output_projection(flattened)                     # [b, L]


class TargetEncoder(Module):
    """Encode ground-truth future sequences into a ``[batch, horizon]`` vector.

    Mirrors the Covariate Encoder but skips the embedding / concatenation
    step (Eq. 7): the target channels are projected straight to the hidden
    size.
    """

    def __init__(
        self,
        horizon: int,
        n_channels: int,
        hidden_dim: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng(0)
        self.horizon = horizon
        self.hidden_dim = hidden_dim
        self.input_projection = Linear(n_channels, hidden_dim, rng=generator)
        self.attention = ResidualSelfAttention(hidden_dim, rng=generator)
        self.output_projection = Linear(horizon * hidden_dim, horizon, rng=generator)

    def forward(self, targets) -> Tensor:
        targets = as_tensor(np.asarray(targets, dtype=np.float32) if isinstance(targets, np.ndarray) else targets)
        if targets.shape[1] != self.horizon:
            raise ValueError(
                f"targets must cover the forecast horizon {self.horizon}, got {targets.shape[1]}"
            )
        hidden = self.input_projection(targets)
        attended = self.attention(hidden)
        batch = attended.shape[0]
        flattened = attended.reshape(batch, self.horizon * self.hidden_dim)
        return self.output_projection(flattened)
