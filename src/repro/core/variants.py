"""Named LiPFormer variants used by the paper's ablation studies.

Table X (lightweight-architecture ablation) adds back the components
LiPFormer removed from the Transformer:

* ``lipformer_with_ffn``        — "+FFNs"
* ``lipformer_with_layernorm``  — "+LN"
* ``lipformer_with_ffn_and_layernorm`` — "+FFNs+LN"

Table XI (patch-wise attention ablation) removes the new attention blocks:

* ``lipformer_without_cross_patch``  — Cross-Patch attention replaced by a linear layer
* ``lipformer_without_inter_patch``  — Inter-Patch attention replaced by a linear layer
* ``lipformer_without_both``         — only the traditional patching technique
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..config import ModelConfig
from .lipformer import LiPFormer

__all__ = [
    "lipformer_full",
    "lipformer_with_ffn",
    "lipformer_with_layernorm",
    "lipformer_with_ffn_and_layernorm",
    "lipformer_without_cross_patch",
    "lipformer_without_inter_patch",
    "lipformer_without_both",
    "lipformer_without_covariate_guidance",
    "ABLATION_VARIANTS",
]


def lipformer_full(config: ModelConfig, rng: Optional[np.random.Generator] = None) -> LiPFormer:
    """The published LiPFormer configuration."""
    return LiPFormer(config, rng=rng)


def lipformer_with_ffn(config: ModelConfig, rng: Optional[np.random.Generator] = None) -> LiPFormer:
    """Ablation "+FFNs": add a Transformer feed-forward block back."""
    return LiPFormer(config, use_ffn=True, rng=rng)


def lipformer_with_layernorm(config: ModelConfig, rng: Optional[np.random.Generator] = None) -> LiPFormer:
    """Ablation "+LN": add Layer Normalization back."""
    return LiPFormer(config, use_layer_norm=True, rng=rng)


def lipformer_with_ffn_and_layernorm(
    config: ModelConfig, rng: Optional[np.random.Generator] = None
) -> LiPFormer:
    """Ablation "+FFNs+LN": add both heavy components back."""
    return LiPFormer(config, use_ffn=True, use_layer_norm=True, rng=rng)


def lipformer_without_cross_patch(
    config: ModelConfig, rng: Optional[np.random.Generator] = None
) -> LiPFormer:
    """Ablation: Cross-Patch attention replaced by a linear layer."""
    return LiPFormer(config, use_cross_patch=False, rng=rng)


def lipformer_without_inter_patch(
    config: ModelConfig, rng: Optional[np.random.Generator] = None
) -> LiPFormer:
    """Ablation: Inter-Patch attention replaced by a linear layer."""
    return LiPFormer(config, use_inter_patch_attention=False, rng=rng)


def lipformer_without_both(config: ModelConfig, rng: Optional[np.random.Generator] = None) -> LiPFormer:
    """Ablation: only the traditional patching technique remains."""
    return LiPFormer(config, use_cross_patch=False, use_inter_patch_attention=False, rng=rng)


def lipformer_without_covariate_guidance(
    config: ModelConfig, rng: Optional[np.random.Generator] = None
) -> LiPFormer:
    """LiPFormer with the Covariate Encoder disabled (Figure 6 ablation)."""
    return LiPFormer(config, use_covariate_guidance=False, rng=rng)


ABLATION_VARIANTS: Dict[str, Callable[..., LiPFormer]] = {
    "LiPFormer": lipformer_full,
    "LiPFormer+FFNs": lipformer_with_ffn,
    "LiPFormer+LN": lipformer_with_layernorm,
    "LiPFormer+FFNs+LN": lipformer_with_ffn_and_layernorm,
    "w/o Cross-Patch": lipformer_without_cross_patch,
    "w/o Inter-Patch": lipformer_without_inter_patch,
    "Neither": lipformer_without_both,
    "w/o Covariate Encoder": lipformer_without_covariate_guidance,
}
