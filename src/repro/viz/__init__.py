"""``repro.viz`` — dependency-free rendering of matrices, forecasts and curves."""

from .heatmap import ascii_heatmap, normalise_matrix, save_pgm
from .plots import forecast_plot, loss_curve, sparkline

__all__ = [
    "ascii_heatmap",
    "normalise_matrix",
    "save_pgm",
    "forecast_plot",
    "loss_curve",
    "sparkline",
]
