"""Terminal plotting helpers for forecasts and training curves."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = ["sparkline", "forecast_plot", "loss_curve"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence as a unicode sparkline."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    low, high = values.min(), values.max()
    if high - low < 1e-12:
        return _SPARK_LEVELS[0] * values.size
    scaled = (values - low) / (high - low)
    indices = np.minimum((scaled * len(_SPARK_LEVELS)).astype(int), len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[index] for index in indices)


def forecast_plot(
    history: np.ndarray,
    forecast: np.ndarray,
    actual: Optional[np.ndarray] = None,
    channel: int = 0,
    label: str = "forecast",
) -> str:
    """Render history / forecast / actual for one channel as sparklines."""
    history = np.asarray(history, dtype=np.float64)
    forecast = np.asarray(forecast, dtype=np.float64)
    if history.ndim == 2:
        history = history[:, channel]
    if forecast.ndim == 2:
        forecast = forecast[:, channel]
    lines = [
        f"history  ({len(history):3d} steps): {sparkline(history)}",
        f"{label:<9s}({len(forecast):3d} steps): {sparkline(forecast)}",
    ]
    if actual is not None:
        actual = np.asarray(actual, dtype=np.float64)
        if actual.ndim == 2:
            actual = actual[:, channel]
        lines.append(f"actual   ({len(actual):3d} steps): {sparkline(actual)}")
    return "\n".join(lines)


def loss_curve(losses: Sequence[float], label: str = "loss") -> str:
    """Render a per-epoch loss curve as a sparkline with endpoints."""
    losses = list(losses)
    if not losses:
        return f"{label}: (no data)"
    return f"{label}: {sparkline(losses)}  first={losses[0]:.4f} last={losses[-1]:.4f}"
