"""Text and image-file rendering of matrices (Figure 7 logits heatmaps).

The environment has no plotting libraries, so two render paths are provided:

* :func:`ascii_heatmap` — a terminal-friendly rendering using a density
  character ramp, good enough to see the diagonal / stripe structure of the
  contrastive logits matrices;
* :func:`save_pgm` — a portable graymap (PGM) image file, viewable with any
  image viewer and produced without third-party dependencies.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

__all__ = ["ascii_heatmap", "save_pgm", "normalise_matrix"]

_DENSITY_RAMP = " .:-=+*#%@"


def normalise_matrix(matrix: np.ndarray) -> np.ndarray:
    """Scale a matrix to ``[0, 1]`` (constant matrices map to 0.5)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    low, high = matrix.min(), matrix.max()
    if high - low < 1e-12:
        return np.full_like(matrix, 0.5)
    return (matrix - low) / (high - low)


def ascii_heatmap(matrix: np.ndarray, max_size: int = 48, title: Optional[str] = None) -> str:
    """Render a matrix as an ASCII heatmap string.

    Large matrices are downsampled by block averaging to at most
    ``max_size`` rows/columns so the output fits in a terminal.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    if max_size < 2:
        raise ValueError("max_size must be at least 2")
    rows, cols = matrix.shape
    row_step = max(1, int(np.ceil(rows / max_size)))
    col_step = max(1, int(np.ceil(cols / max_size)))
    if row_step > 1 or col_step > 1:
        trimmed = matrix[: (rows // row_step) * row_step, : (cols // col_step) * col_step]
        matrix = trimmed.reshape(
            trimmed.shape[0] // row_step, row_step, trimmed.shape[1] // col_step, col_step
        ).mean(axis=(1, 3))
    scaled = normalise_matrix(matrix)
    indices = np.minimum((scaled * len(_DENSITY_RAMP)).astype(int), len(_DENSITY_RAMP) - 1)
    lines = ["".join(_DENSITY_RAMP[index] for index in row) for row in indices]
    if title:
        lines.insert(0, title)
    return "\n".join(lines)


def save_pgm(matrix: np.ndarray, path: str, invert: bool = False) -> None:
    """Write a matrix as an 8-bit binary PGM image."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    scaled = normalise_matrix(matrix)
    if invert:
        scaled = 1.0 - scaled
    pixels = (scaled * 255).astype(np.uint8)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    height, width = pixels.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        handle.write(pixels.tobytes())
