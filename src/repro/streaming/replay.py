"""Replay harness: drive synthetic tenants through the streaming stack.

``replay`` feeds per-tenant series into a :class:`StreamingForecaster` one
time step at a time — every global tick ingests one new observation per
live tenant and then forecasts *all* of them through one service flush, the
steady-state shape of multi-tenant online serving.  ``compare_to_backfill``
then checks the core correctness property of the subsystem: forecasts
produced incrementally from ring-buffer windows must be **bit-identical**
to :meth:`ForecastService.backfill` run offline over the same series
(window ``k`` of the stream is exactly window ``k`` of the offline
dataset, and model forward passes are row-deterministic regardless of
batch composition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..data.containers import MultivariateTimeSeries
from ..data.timefeatures import make_timestamps
from ..data.windows import SlidingWindowDataset
from .forecaster import StreamingForecaster

__all__ = ["ReplayResult", "ParityReport", "replay", "compare_to_backfill"]


@dataclass
class ReplayResult:
    """Everything the replay produced, plus the batching it achieved."""

    forecasts: Dict[str, np.ndarray]     # tenant -> [n_forecasts, horizon, C]
    steps: int                           # global ticks driven
    requests: int                        # forecasts submitted during replay
    forward_passes: int                  # service passes those coalesced into
    warmup: int                          # observations before a tenant's first forecast

    @property
    def mean_batch_size(self) -> float:
        """Requests per forward pass — > 1 means tenants actually coalesced."""
        return self.requests / self.forward_passes if self.forward_passes else 0.0


def replay(
    forecaster: StreamingForecaster,
    streams: Mapping[str, np.ndarray],
    warmup: Optional[int] = None,
) -> ReplayResult:
    """Stream per-tenant series through the forecaster tick by tick.

    Parameters
    ----------
    forecaster:
        the streaming stack under test (its service queue is flushed once
        per tick, after every live tenant has submitted).
    streams:
        ``tenant -> [T, C]`` raw observations; lengths may differ.
    warmup:
        observations a tenant must have before its first forecast (default:
        the model's ``input_length``, i.e. no cold-start padding).  After
        warmup, tick ``t`` forecasts from the window ending at row ``t`` —
        so tenant forecasts align one-to-one with the offline sliding
        windows of the same series.
    """
    warmup = forecaster.config.input_length if warmup is None else warmup
    if warmup < 1:
        raise ValueError(f"warmup must be positive, got {warmup}")
    arrays = {tenant: np.asarray(values, dtype=np.float32) for tenant, values in streams.items()}
    for tenant, values in arrays.items():
        if values.ndim != 2:
            raise ValueError(f"stream {tenant!r} must be [T, C], got shape {values.shape}")
    horizon_steps = max((len(v) for v in arrays.values()), default=0)
    collected: Dict[str, List[np.ndarray]] = {tenant: [] for tenant in arrays}

    stats = forecaster.service.stats
    requests_before = stats.requests
    passes_before = stats.forward_passes

    for step in range(horizon_steps):
        pending = []
        for tenant, values in arrays.items():
            if step >= len(values):
                continue
            forecaster.ingest(tenant, values[step])
            if step + 1 >= warmup:
                pending.append((tenant, forecaster.forecast(tenant)))
        forecaster.flush()
        for tenant, handle in pending:
            collected[tenant].append(handle.result())

    forecasts = {
        tenant: np.stack(rows) if rows else np.zeros(
            (0, forecaster.config.horizon, forecaster.config.n_channels), dtype=np.float32
        )
        for tenant, rows in collected.items()
    }
    return ReplayResult(
        forecasts=forecasts,
        steps=horizon_steps,
        requests=stats.requests - requests_before,
        forward_passes=stats.forward_passes - passes_before,
        warmup=warmup,
    )


@dataclass
class ParityReport:
    """Streaming-vs-offline comparison over every checkable window."""

    tenants: int
    windows_compared: int
    bit_identical: bool
    max_abs_error: float

    def raise_on_mismatch(self) -> "ParityReport":
        if self.windows_compared == 0:
            raise AssertionError(
                "parity check compared zero windows (every stream shorter "
                "than input_length + horizon?) — nothing was verified"
            )
        if not self.bit_identical:
            raise AssertionError(
                f"streaming forecasts diverge from offline backfill: "
                f"max |Δ| = {self.max_abs_error:.3e} over "
                f"{self.windows_compared} windows"
            )
        return self


def compare_to_backfill(
    forecaster: StreamingForecaster,
    streams: Mapping[str, np.ndarray],
    result: ReplayResult,
) -> ParityReport:
    """Check replayed streaming forecasts against offline ``backfill``.

    For each tenant the raw stream is wrapped in a
    :class:`SlidingWindowDataset` and pushed through the *same* service's
    ``backfill``; streaming forecast ``k`` (full-window forecasts only) must
    equal backfill row ``k`` bit for bit.  Streaming keeps forecasting past
    the last window that has targets, so only the overlapping prefix is
    compared.  Only ``normalization="none"`` replays are directly
    comparable — offline backfill has no per-tenant scaling.
    """
    if forecaster.normalization != "none":
        raise ValueError(
            "backfill parity is only defined for normalization='none'; "
            f"got {forecaster.normalization!r}"
        )
    config = forecaster.config
    # Forecasts issued before a full window accumulated are cold-start
    # (left-padded) and have no offline counterpart; skip past them.
    offset = max(0, config.input_length - result.warmup)
    compared = 0
    identical = True
    max_abs = 0.0
    for tenant, values in streams.items():
        values = np.asarray(values, dtype=np.float32)
        produced = result.forecasts[tenant][offset:]
        if len(values) < config.input_length + config.horizon:
            continue  # too short for any offline window
        series = MultivariateTimeSeries(
            values=values,
            timestamps=make_timestamps(len(values), freq_minutes=60),
            name=f"replay-{tenant}",
        )
        dataset = SlidingWindowDataset(series, config.input_length, config.horizon)
        offline = forecaster.service.backfill(dataset)
        n = min(len(offline), len(produced))
        compared += n
        if n == 0:
            continue
        diff = np.abs(offline[:n] - produced[:n])
        max_abs = max(max_abs, float(diff.max()))
        identical = identical and np.array_equal(offline[:n], produced[:n])
    return ParityReport(
        tenants=len(result.forecasts),
        windows_compared=compared,
        # Vacuous truth is not parity: with nothing compared, don't claim it.
        bit_identical=identical and compared > 0,
        max_abs_error=max_abs,
    )
