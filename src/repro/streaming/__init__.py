"""``repro.streaming`` — multi-tenant online forecasting.

PR 1's serving layer answers *"forecast this array"*; this subsystem
answers the workload the roadmap actually describes — observations arriving
continuously for many independent tenants, each wanting fresh forecasts:

* :class:`SeriesStore` / :class:`RingBuffer` — one bounded ring buffer per
  tenant (O(1) amortised append, no per-append reallocation) holding just
  enough history to assemble forecast windows;
* :class:`~repro.data.incremental.RollingScaler` (in ``repro.data``) —
  incremental per-channel Welford statistics, so new tenants never need an
  offline fit;
* :class:`StreamingForecaster` — assembles each tenant's latest
  ``input_length`` window, routes it through
  :meth:`ForecastService.submit` so concurrent tenants coalesce into
  micro-batches, and denormalises per tenant (rolling stats or the paper's
  last-value scheme);
* :func:`replay` / :func:`compare_to_backfill` — a harness that drives N
  synthetic tenants tick-by-tick and proves streaming output bit-identical
  to offline :meth:`ForecastService.backfill` over the same series.

See ``examples/streaming_quickstart.py`` for a tour and
``benchmarks/test_streaming_throughput.py`` for the measured coalescing win
over per-tenant sequential prediction.
"""

from .forecaster import StreamingForecast, StreamingForecaster, StreamingStats
from .replay import ParityReport, ReplayResult, compare_to_backfill, replay
from .store import RingBuffer, SeriesStore, StoreStats

__all__ = [
    "RingBuffer",
    "SeriesStore",
    "StoreStats",
    "StreamingForecast",
    "StreamingForecaster",
    "StreamingStats",
    "ReplayResult",
    "ParityReport",
    "replay",
    "compare_to_backfill",
]
