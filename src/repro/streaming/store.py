"""Bounded per-tenant observation storage for online forecasting.

A streaming forecaster only ever needs the most recent ``input_length``
steps per tenant, so holding full histories (or calling ``np.append``,
which reallocates the whole array on every arrival) would defeat the
point of online serving.  :class:`RingBuffer` keeps a fixed-capacity
``[capacity, channels]`` array and writes arrivals with at most two slice
assignments — O(rows) per ingest, O(1) amortised per observation, zero
reallocation after construction.  :class:`SeriesStore` maps tenant keys to
ring buffers and enforces per-tenant timestamp monotonicity.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from .. import obs
from ..runtime.annotations import guarded_by, requires_lock
from ..stats import CounterStats

__all__ = ["RingBuffer", "SeriesStore", "StoreStats"]


class RingBuffer:
    """Fixed-capacity chronological buffer of ``[capacity, channels]`` rows.

    ``extend`` never reallocates: rows are written into the preallocated
    array at a wrapping cursor, and chunks longer than the capacity keep
    only their most recent ``capacity`` rows (the older ones could never be
    read back anyway).

    Not thread-safe on its own — :class:`SeriesStore` serialises ``extend``
    and ``latest`` under its lock.
    """

    def __init__(self, capacity: int, n_channels: int, dtype=np.float32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if n_channels < 1:
            raise ValueError(f"n_channels must be positive, got {n_channels}")
        self.capacity = capacity
        self.n_channels = n_channels
        self._data = np.zeros((capacity, n_channels), dtype=dtype)
        self._write = 0          # next write position
        self._size = 0           # rows currently held (<= capacity)
        self._total = 0          # rows ever appended

    def __len__(self) -> int:
        return self._size

    @property
    def total_appended(self) -> int:
        """Rows ever appended, including those already overwritten."""
        return self._total

    def extend(self, values: np.ndarray) -> None:
        """Append ``[T, C]`` rows (or one ``[C]`` row), oldest first."""
        values = np.asarray(values, dtype=self._data.dtype)
        if values.ndim == 1:
            values = values[None, :]
        if values.ndim != 2 or values.shape[1] != self.n_channels:
            raise ValueError(
                f"expected [T, {self.n_channels}] rows, got shape {values.shape}"
            )
        rows = len(values)
        if rows == 0:
            return
        self._total += rows
        if rows >= self.capacity:
            # Only the newest `capacity` rows survive; restart the cursor.
            self._data[:] = values[-self.capacity:]
            self._write = 0
            self._size = self.capacity
            return
        first = min(rows, self.capacity - self._write)
        self._data[self._write:self._write + first] = values[:first]
        if rows > first:
            self._data[:rows - first] = values[first:]
        self._write = (self._write + rows) % self.capacity
        self._size = min(self._size + rows, self.capacity)

    def latest(self, n: int) -> np.ndarray:
        """The most recent ``min(n, len(self))`` rows, oldest→newest, as a copy."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        n = min(n, self._size)
        if n == 0:
            return self._data[:0].copy()
        start = (self._write - n) % self.capacity
        if start + n <= self.capacity:
            return self._data[start:start + n].copy()
        return np.concatenate([self._data[start:], self._data[:start + n - self.capacity]])

    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        """Serialisable snapshot: held rows in logical (oldest→newest) order.

        The cursor position is *not* part of the state — a ring holding rows
        ``[a, b, c]`` answers every ``latest`` query identically wherever
        its write head happens to sit, so the snapshot normalises to
        logical order and restore re-seats the cursor at ``size``.
        """
        return {
            "capacity": int(self.capacity),
            "n_channels": int(self.n_channels),
            "dtype": self._data.dtype.name,
            "data": self.latest(self._size),
            "total_appended": int(self._total),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RingBuffer":
        """Rebuild a buffer from :meth:`to_state` output (logical order)."""
        buffer = cls(
            int(state["capacity"]),
            int(state["n_channels"]),
            dtype=np.dtype(str(state["dtype"])),
        )
        data = np.asarray(state["data"], dtype=buffer._data.dtype)
        size = len(data)
        total = int(state["total_appended"])
        if size > buffer.capacity:
            raise ValueError(
                f"state holds {size} rows but capacity is {buffer.capacity}"
            )
        if total < size:
            raise ValueError(
                f"total_appended {total} is smaller than held rows {size}"
            )
        buffer._data[:size] = data
        buffer._write = size % buffer.capacity
        buffer._size = size
        buffer._total = total
        return buffer


@dataclass
class StoreStats(CounterStats):
    """Ingest-side counters for the whole store.

    ``reset``/``merge``/``as_dict`` come from
    :class:`repro.stats.CounterStats` (all fields sum on merge).
    """

    tenants: int = 0
    ingests: int = 0            # ingest() calls
    observations: int = 0       # rows appended across all tenants
    evicted: int = 0            # rows that have fallen off a ring


@guarded_by(
    "_buffers", "_last_timestamp", "stats", "_dirty", "_generations",
    "_tombstones", lock="_lock",
)
class SeriesStore:
    """One bounded :class:`RingBuffer` per tenant/series.

    ``ingest`` lazily creates the tenant's buffer on first sight, so new
    tenants need no registration step.  When timestamps are supplied they
    must be strictly increasing per tenant — out-of-order arrivals would
    silently corrupt the window a forecast is assembled from.
    """

    def __init__(self, capacity: int, n_channels: int, dtype=np.float32) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.n_channels = n_channels
        self._dtype = dtype
        self._buffers: Dict[str, RingBuffer] = {}
        self._last_timestamp: Dict[str, object] = {}
        self._lock = threading.Lock()
        self.stats = StoreStats()
        # Checkpoint bookkeeping.  An incremental snapshot is O(churn) only
        # if someone remembers the churn: every mutation a delta would need
        # to re-capture (ingest, adoption) marks the tenant dirty; drop
        # unmarks it (absence from the next checkpoint's tenant list is the
        # deletion record).  Generations disambiguate incarnations of a
        # reused tenant key: a drop tombstones the key so a re-created
        # tenant gets generation + 1, and failover can refuse to resurrect
        # a deleted incarnation from an older checkpoint.  Tombstones are
        # in-memory only — they bridge drop → re-create within a process
        # lifetime, which is the window checkpoints can confuse.
        self._dirty: Set[str] = set()
        self._generations: Dict[str, int] = {}
        self._tombstones: Dict[str, int] = {}
        # Weakly bound metrics-registry view over the ingest counters.
        obs.register_stats("repro_store", self.stats_snapshot)

    # ------------------------------------------------------------------ #
    def __contains__(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._buffers

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffers)

    def tenants(self) -> List[str]:
        """Tenant keys in first-seen order."""
        with self._lock:
            return list(self._buffers)

    @property
    def dtype(self) -> np.dtype:
        """The stored row dtype (every tenant buffer shares it)."""
        return np.dtype(self._dtype)

    def buffer(self, tenant: str) -> RingBuffer:
        """The tenant's ring (the lookup is locked; the ring itself is
        not thread-safe — callers mutating it hold no protection)."""
        with self._lock:
            return self._buffer_locked(tenant)

    @requires_lock("_lock")
    def _buffer_locked(self, tenant: str) -> RingBuffer:
        # The store's internal locked paths (latest, tenant_state) resolve
        # buffers through this: self._lock is a plain non-reentrant mutex,
        # so calling the public buffer() from under it would self-deadlock.
        try:
            return self._buffers[tenant]
        except KeyError:
            raise KeyError(f"unknown tenant {tenant!r}") from None

    def observed(self, tenant: str) -> int:
        """Total observations ever ingested for a tenant (0 if unknown)."""
        with self._lock:
            buffer = self._buffers.get(tenant)
        return 0 if buffer is None else buffer.total_appended

    # ------------------------------------------------------------------ #
    def ingest(self, tenant: str, values: np.ndarray, timestamp=None) -> int:
        """Append observations for a tenant; returns its total observed rows."""
        # Validate before touching any state: a rejected ingest must not
        # leave a phantom empty tenant behind (forecast_all over
        # store.tenants() would then fail every healthy tenant's tick).
        values = np.asarray(values, dtype=self._dtype)
        if values.ndim == 1:
            values = values[None, :]
        if values.ndim != 2 or values.shape[1] != self.n_channels:
            raise ValueError(
                f"expected [T, {self.n_channels}] rows, got shape {values.shape}"
            )
        with self._lock:
            buffer = self._buffers.get(tenant)
            if buffer is None:
                buffer = RingBuffer(self.capacity, self.n_channels, dtype=self._dtype)
                self._buffers[tenant] = buffer
                self._generations[tenant] = self._tombstones.pop(tenant, 0)
                self.stats.tenants += 1
            if timestamp is not None:
                last = self._last_timestamp.get(tenant)
                if last is not None and not timestamp > last:
                    raise ValueError(
                        f"tenant {tenant!r}: timestamp {timestamp!r} is not after "
                        f"the last ingested timestamp {last!r}"
                    )
            total_before = buffer.total_appended
            dropped_before = total_before - len(buffer)
            buffer.extend(values)
            if timestamp is not None:
                self._last_timestamp[tenant] = timestamp
            self.stats.ingests += 1
            self.stats.observations += buffer.total_appended - total_before
            self.stats.evicted += (buffer.total_appended - len(buffer)) - dropped_before
            self._dirty.add(tenant)
            return buffer.total_appended

    def latest(self, tenant: str, n: int) -> np.ndarray:
        """The tenant's most recent ``min(n, held)`` rows, chronological.

        Taken under the store lock: a window copied while a concurrent
        ``ingest`` is mid-way through its (up to two) slice writes could
        otherwise mix old and new rows out of order.
        """
        with self._lock:
            return self._buffer_locked(tenant).latest(n)

    def last_timestamp(self, tenant: str):
        """The last ingested timestamp for a tenant, or ``None``."""
        with self._lock:
            return self._last_timestamp.get(tenant)

    def drop(self, tenant: str) -> None:
        """Forget a tenant entirely (buffer and timestamp watermark)."""
        with self._lock:
            self._buffers.pop(tenant, None)
            self._last_timestamp.pop(tenant, None)
            # A dropped tenant needs no delta payload — its absence from the
            # next checkpoint's tenant list is the deletion record.
            self._dirty.discard(tenant)
            generation = self._generations.pop(tenant, None)
            if generation is not None:
                self._tombstones[tenant] = generation + 1

    def generation(self, tenant: str) -> int:
        """Which incarnation of the key this tenant is (0 for the first).

        Bumped each time a key is re-created after :meth:`drop`; travels
        with the tenant's state, so a checkpoint of a *deleted*
        incarnation can be told apart from the live one however many rows
        either has.
        """
        with self._lock:
            return self._generations.get(tenant, 0)

    # ------------------------------------------------------------------ #
    # Checkpoint bookkeeping — incremental snapshots ride on it.
    # ------------------------------------------------------------------ #
    def dirty_tenants(self) -> List[str]:
        """Tenants mutated since :meth:`mark_clean`, in first-seen order."""
        with self._lock:
            return [tenant for tenant in self._buffers if tenant in self._dirty]

    def mark_clean(self) -> None:
        """Reset churn tracking (called when a checkpoint captures state)."""
        with self._lock:
            self._dirty.clear()

    def generations(self) -> Dict[str, int]:
        """Per-tenant incarnation numbers (live tenants only)."""
        with self._lock:
            return dict(self._generations)

    def stats_snapshot(self) -> StoreStats:
        """A consistent copy of the counters, taken under the store lock.

        Cluster-wide aggregation merges many stores while their traffic is
        still running; copying under the lock keeps each store's counters
        internally consistent (no torn ``ingests``/``observations`` pairs).
        """
        with self._lock:
            return StoreStats(**asdict(self.stats))

    # ------------------------------------------------------------------ #
    # State codec — snapshot/restore and shard migration both ride on it.
    # ------------------------------------------------------------------ #
    def tenant_state(self, tenant: str) -> dict:
        """One tenant's full state (ring contents, watermark, incarnation)."""
        with self._lock:
            return {
                "buffer": self._buffer_locked(tenant).to_state(),
                "last_timestamp": self._last_timestamp.get(tenant),
                "generation": self._generations.get(tenant, 0),
            }

    def restore_tenant(self, tenant: str, state: dict) -> None:
        """Adopt a tenant exported from another store (shard migration).

        The tenant must not already exist here, and the incoming buffer must
        match this store's geometry — silently re-bucketing rows across
        capacities could drop the very window the next forecast needs.

        ``StoreStats`` counters are deliberately untouched: they record what
        *this* store ingested, and the tenant's history was already counted
        once on the store that ingested it — bumping them again would
        double-count every migration in cluster-wide aggregation.
        """
        buffer = RingBuffer.from_state(state["buffer"])
        if buffer.capacity != self.capacity or buffer.n_channels != self.n_channels:
            raise ValueError(
                f"tenant state is [{buffer.capacity}, {buffer.n_channels}], "
                f"store is [{self.capacity}, {self.n_channels}]"
            )
        with self._lock:
            if tenant in self._buffers:
                raise ValueError(f"tenant {tenant!r} already exists in this store")
            self._buffers[tenant] = buffer
            if state.get("last_timestamp") is not None:
                self._last_timestamp[tenant] = state["last_timestamp"]
            self._generations[tenant] = int(state.get("generation", 0))
            # Adoption is churn: the next incremental checkpoint must record
            # this tenant's new placement and contents.
            self._dirty.add(tenant)

    def to_state(self) -> dict:
        """Serialisable snapshot of every tenant.

        The ``buffers`` dict carries tenant order implicitly — dicts, the
        JSON manifest and the snapshot codec all preserve insertion order,
        so first-seen order survives without a redundant key list.
        """
        with self._lock:
            return {
                "capacity": int(self.capacity),
                "n_channels": int(self.n_channels),
                "dtype": np.dtype(self._dtype).name,
                "buffers": {
                    tenant: buffer.to_state() for tenant, buffer in self._buffers.items()
                },
                "last_timestamps": dict(self._last_timestamp),
                "generations": dict(self._generations),
                "stats": {
                    "tenants": self.stats.tenants,
                    "ingests": self.stats.ingests,
                    "observations": self.stats.observations,
                    "evicted": self.stats.evicted,
                },
            }

    @classmethod
    def from_state(cls, state: dict) -> "SeriesStore":
        """Rebuild a store from :meth:`to_state` output, bit-identically.

        Tenant iteration order (and therefore ``forecast_all`` batch
        composition after restore) is preserved via the snapshot's ordered
        tenant list.
        """
        store = cls(
            int(state["capacity"]),
            int(state["n_channels"]),
            dtype=np.dtype(str(state["dtype"])),
        )
        generations = state.get("generations", {})
        for tenant, buffer_state in state["buffers"].items():
            store._buffers[tenant] = RingBuffer.from_state(buffer_state)
            timestamp = state["last_timestamps"].get(tenant)
            if timestamp is not None:
                store._last_timestamp[tenant] = timestamp
            store._generations[tenant] = int(generations.get(tenant, 0))
        store.stats = StoreStats(**state["stats"])
        return store
