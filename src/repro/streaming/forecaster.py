"""Multi-tenant online forecasting over the micro-batched serving layer.

:class:`StreamingForecaster` is the glue between arrivals and forecasts:
observations stream into a :class:`~repro.streaming.store.SeriesStore`
(``ingest``), and ``forecast`` assembles the tenant's latest
``input_length`` window and routes it through
:meth:`~repro.serving.service.ForecastService.submit` — so forecasts for
concurrent tenants queue on the service and coalesce into one padded
forward pass, exactly like any other submit-path traffic.  Short histories
(cold-start tenants) lean on the service's left-padding.

Per-tenant normalisation modes handle the distribution-shift story at the
serving boundary:

* ``"none"``      — values are already in model space (e.g. replaying an
  offline-scaled series); forecasts come back untouched.  This is the mode
  under which streaming output is bit-identical to offline ``backfill``.
* ``"rolling"``   — a per-tenant :class:`~repro.data.incremental.RollingScaler`
  is updated on every ingest (Welford), the window is standardised with the
  tenant's current statistics, and the forecast is mapped back through the
  same statistics.  New tenants never need an offline fit.
* ``"last_value"`` — the paper's Section III-C1 normalisation applied per
  tenant at the serving boundary: subtract the window's last observed value,
  add it back to the forecast (denormalisation).  Useful for models without
  an internal :class:`~repro.core.revin.LastValueNormalizer`.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .. import obs
from ..data.incremental import RollingScaler
from ..runtime.annotations import guarded_by
from ..stats import CounterStats
from ..serving.admission import DEFAULT_PRIORITY
from ..serving.batching import Forecast
from ..serving.service import ForecastService
from .store import SeriesStore

__all__ = ["StreamingForecast", "StreamingStats", "StreamingForecaster"]

_NORMALIZATIONS = ("none", "rolling", "last_value")


class StreamingForecast:
    """A :class:`~repro.serving.batching.Forecast` handle plus the tenant's
    denormalisation.

    The wrapped handle resolves in *model space* when the service flushes;
    :meth:`result` applies the per-tenant inverse mapping captured at
    submit time (identity, rolling inverse-standardise, or last-value
    add-back), so callers always receive original-scale forecasts.
    """

    __slots__ = ("tenant", "_inner", "_denormalize")

    def __init__(
        self,
        tenant: str,
        inner: Forecast,
        denormalize: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        self.tenant = tenant
        self._inner = inner
        self._denormalize = denormalize

    def done(self) -> bool:
        return self._inner.done()

    def result(self) -> np.ndarray:
        """The ``[horizon, channels]`` forecast in the tenant's scale."""
        return self._denormalize(self._inner.result())


@dataclass
class StreamingStats(CounterStats):
    """Forecast-side counters.

    Ingest-side counters (tenants, observations, evictions) live on the
    store's :class:`~repro.streaming.store.StoreStats`, and batching
    efficiency on the service's stats — no duplicate bookkeeping.
    ``reset``/``merge``/``as_dict`` come from
    :class:`repro.stats.CounterStats` (all fields sum on merge).
    """

    forecasts: int = 0
    cold_start_forecasts: int = 0    # windows shorter than input_length


@guarded_by("_scalers", "stats", lock="_lock")
class StreamingForecaster:
    """Append observations per tenant; serve micro-batched fresh forecasts.

    Parameters
    ----------
    service:
        the :class:`ForecastService` forecasts are routed through.  Sharing
        one service across forecasters (or with request-path traffic) is
        fine — coalescing happens in the service queue.
    store:
        optional pre-built :class:`SeriesStore`; by default a store sized at
        ``window_capacity`` (default ``4 * input_length``) windows is built.
    normalization:
        ``"none"`` | ``"rolling"`` | ``"last_value"`` (see module docstring).
    """

    def __init__(
        self,
        service: ForecastService,
        store: Optional[SeriesStore] = None,
        normalization: str = "none",
        window_capacity: Optional[int] = None,
    ) -> None:
        if normalization not in _NORMALIZATIONS:
            raise ValueError(
                f"unknown normalization {normalization!r}; use one of {_NORMALIZATIONS}"
            )
        self.service = service
        self.config = service.config
        capacity = 4 * self.config.input_length if window_capacity is None else window_capacity
        if capacity < self.config.input_length:
            raise ValueError(
                f"window_capacity {capacity} cannot hold one input window "
                f"of {self.config.input_length} steps"
            )
        if store is not None:
            if store.n_channels != self.config.n_channels:
                raise ValueError(
                    f"store has {store.n_channels} channels, model expects "
                    f"{self.config.n_channels}"
                )
            # A pre-built (e.g. restored) store must satisfy the same
            # geometry bound as a default-built one, or every forecast is
            # silently a left-padded cold start.
            if store.capacity < self.config.input_length:
                raise ValueError(
                    f"store capacity {store.capacity} cannot hold one input "
                    f"window of {self.config.input_length} steps"
                )
        self.store = store if store is not None else SeriesStore(capacity, self.config.n_channels)
        self.normalization = normalization
        self.stats = StreamingStats()
        self._scalers: Dict[str, RollingScaler] = {}
        self._lock = threading.Lock()
        # Weakly bound metrics-registry view over the forecast counters.
        obs.register_stats("repro_streaming", self.stats_snapshot)

    # ------------------------------------------------------------------ #
    def scaler(self, tenant: str) -> Optional[RollingScaler]:
        """The tenant's rolling scaler (``None`` outside ``"rolling"`` mode)."""
        with self._lock:
            return self._scalers.get(tenant)

    def ingest(self, tenant: str, values: np.ndarray, timestamp=None) -> int:
        """Append raw observations for a tenant; returns its total observed.

        In ``"rolling"`` mode the tenant's scaler statistics fold in the new
        rows before they can influence any forecast, so a window and the
        statistics it is normalised with always agree.
        """
        values = np.asarray(values, dtype=np.float32)
        if values.ndim == 1:
            values = values[None, :]
        total = self.store.ingest(tenant, values, timestamp=timestamp)
        if self.normalization == "rolling":
            with self._lock:
                scaler = self._scalers.get(tenant)
                if scaler is None:
                    scaler = self._scalers[tenant] = RollingScaler()
                scaler.update(values)
        return total

    # ------------------------------------------------------------------ #
    def forecast(
        self,
        tenant: str,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
        priority: str = DEFAULT_PRIORITY,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> StreamingForecast:
        """Queue a forecast from the tenant's latest window; non-blocking.

        The returned handle resolves when the service flushes (queue full,
        explicit :meth:`flush`, or ``result()`` on any handle) — submitting
        for many tenants before flushing is what turns concurrent-tenant
        traffic into micro-batches.

        ``future_numerical`` / ``future_categorical`` are this tenant's
        known-future covariates over the model horizon (``[horizon, c]``);
        they ride through :meth:`ForecastService.submit` untouched by the
        tenant's normalisation mode (covariates live in their own scale —
        only the history window and the returned forecast are mapped).

        ``priority`` / ``timeout`` / ``deadline`` ride through to the
        service's admission control unchanged — an over-capacity or
        expired submit raises :class:`~repro.serving.Overloaded` /
        :class:`~repro.serving.DeadlineExceeded` here, before any
        streaming counters move.
        """
        window = self.store.latest(tenant, self.config.input_length)
        if len(window) == 0:
            raise ValueError(f"tenant {tenant!r} has no observations to forecast from")
        normalized, denormalize = self._normalize(tenant, window)
        handle = self.service.submit(
            normalized,
            future_numerical=future_numerical,
            future_categorical=future_categorical,
            priority=priority,
            timeout=timeout,
            deadline=deadline,
        )
        with self._lock:
            self.stats.forecasts += 1
            if len(window) < self.config.input_length:
                self.stats.cold_start_forecasts += 1
        return StreamingForecast(tenant, handle, denormalize)

    def forecast_all(
        self,
        tenants: Optional[Sequence[str]] = None,
        flush: bool = True,
        future_numerical: Optional[Mapping[str, np.ndarray]] = None,
        future_categorical: Optional[Mapping[str, np.ndarray]] = None,
        priority: str = DEFAULT_PRIORITY,
        timeout: Optional[float] = None,
    ) -> Dict[str, StreamingForecast]:
        """Queue one forecast per tenant, then (by default) flush once.

        This is the steady-state serving shape: N live tenants produce N
        queued requests that the service coalesces into ``ceil(N /
        max_batch_size)`` forward passes instead of N model calls.

        Per-tenant future covariates are passed as ``tenant -> [horizon, c]``
        mappings; tenants absent from a mapping submit history-only.
        ``priority`` / ``timeout`` apply to every tenant in the sweep (the
        timeout is re-anchored per submit).
        """
        keys: List[str] = list(tenants) if tenants is not None else self.store.tenants()
        future_numerical = future_numerical or {}
        future_categorical = future_categorical or {}
        handles = {
            tenant: self.forecast(
                tenant,
                future_numerical=future_numerical.get(tenant),
                future_categorical=future_categorical.get(tenant),
                priority=priority,
                timeout=timeout,
            )
            for tenant in keys
        }
        if flush:
            self.service.flush()
        return handles

    def ingest_and_forecast(
        self, arrivals: Dict[str, np.ndarray], timestamp=None
    ) -> Dict[str, StreamingForecast]:
        """One streaming tick: ingest a batch of arrivals, forecast each tenant."""
        for tenant, values in arrivals.items():
            self.ingest(tenant, values, timestamp=timestamp)
        return self.forecast_all(list(arrivals))

    def flush(self) -> int:
        """Flush the underlying service queue; returns requests resolved."""
        return self.service.flush()

    def warmup(self, batch_sizes: Optional[Sequence[int]] = None) -> int:
        """Pre-trace the service's compiled plans (see
        :meth:`~repro.serving.service.ForecastService.warmup`).

        Useful right after building or restoring a forecaster, so the
        first live tick doesn't pay the plan-tracing latency.
        """
        return self.service.warmup(batch_sizes)

    def drop(self, tenant: str) -> None:
        """Forget a tenant entirely: ring buffer, timestamp AND scaler.

        Dropping only the store entry would leak the tenant's rolling
        statistics — a re-ingested tenant of the same name would then be
        normalised with a dead tenant's history.
        """
        self.store.drop(tenant)
        with self._lock:
            self._scalers.pop(tenant, None)

    # ------------------------------------------------------------------ #
    # Checkpoint bookkeeping and consistent stat reads.
    # ------------------------------------------------------------------ #
    def dirty_tenants(self) -> List[str]:
        """Tenants whose state changed since the last checkpoint.

        Scaler statistics only ever move on ``ingest`` (which also dirties
        the store entry) or tenant adoption (likewise), so the store's
        churn set covers the whole per-tenant state — no separate scaler
        tracking needed.
        """
        return self.store.dirty_tenants()

    def clear_dirty(self) -> None:
        """Reset churn tracking after a checkpoint captured this shard."""
        self.store.mark_clean()

    def stats_snapshot(self) -> StreamingStats:
        """A consistent copy of the forecast counters."""
        with self._lock:
            return StreamingStats(**asdict(self.stats))

    # ------------------------------------------------------------------ #
    # State codec — process restarts (snapshot/restore) and shard
    # rebalancing (per-tenant migration) both ride on it.
    # ------------------------------------------------------------------ #
    def export_tenant(self, tenant: str) -> dict:
        """One tenant's complete streaming state (window + scaler), portable."""
        with self._lock:
            scaler = self._scalers.get(tenant)
            scaler_state = None if scaler is None else scaler.to_state()
        return {"series": self.store.tenant_state(tenant), "scaler": scaler_state}

    def import_tenant(self, tenant: str, state: dict) -> None:
        """Adopt a tenant exported from another forecaster (same geometry)."""
        self.store.restore_tenant(tenant, state["series"])
        if state.get("scaler") is not None:
            with self._lock:
                self._scalers[tenant] = RollingScaler.from_state(state["scaler"])

    def to_state(self) -> dict:
        """Serialisable snapshot of all per-tenant streaming state.

        Covers everything a restarted process needs to keep forecasting
        bit-identically: ring contents in logical order, timestamp
        watermarks, Welford moments and the normalisation mode.  The model
        itself is *not* included — weights already have a persistence story
        (:mod:`repro.nn.serialization` / the registry spill path).
        """
        with self._lock:
            scalers = {tenant: scaler.to_state() for tenant, scaler in self._scalers.items()}
            stats = {
                "forecasts": self.stats.forecasts,
                "cold_start_forecasts": self.stats.cold_start_forecasts,
            }
        return {
            "normalization": self.normalization,
            "store": self.store.to_state(),
            "scalers": scalers,
            "stats": stats,
        }

    @classmethod
    def from_state(cls, service: ForecastService, state: dict) -> "StreamingForecaster":
        """Rebuild a forecaster around ``service`` from :meth:`to_state` output."""
        forecaster = cls(
            service,
            store=SeriesStore.from_state(state["store"]),
            normalization=str(state["normalization"]),
        )
        for tenant, scaler_state in state["scalers"].items():
            forecaster._scalers[tenant] = RollingScaler.from_state(scaler_state)
        forecaster.stats = StreamingStats(**state["stats"])
        return forecaster

    # ------------------------------------------------------------------ #
    def _normalize(self, tenant: str, window: np.ndarray):
        """Map a raw window into model space; return it plus the inverse."""
        if self.normalization == "none":
            return window, _identity
        if self.normalization == "rolling":
            # Freeze this window's statistics under the lock (a concurrent
            # ingest mutates count/mean/M2 across several statements), so
            # later ingests cannot change how an already-queued forecast is
            # denormalised.
            with self._lock:
                scaler = self._scalers.get(tenant)
                if scaler is None:  # pragma: no cover - forecast() requires ingest first
                    raise RuntimeError(f"tenant {tenant!r} has no rolling statistics yet")
                frozen = scaler.to_standard_scaler()
            return frozen.transform(window), frozen.inverse_transform
        # last_value: the paper's x' = x - x_T / ŷ = ŷ' + x_T, per tenant.
        anchor = window[-1:].astype(np.float32)
        return window - anchor, _AddAnchor(anchor)


def _identity(prediction: np.ndarray) -> np.ndarray:
    return prediction


class _AddAnchor:
    """Picklable closure adding a tenant's last observed value back."""

    __slots__ = ("anchor",)

    def __init__(self, anchor: np.ndarray) -> None:
        self.anchor = anchor

    def __call__(self, prediction: np.ndarray) -> np.ndarray:
        return prediction + self.anchor
