"""Process-backed cluster: shards as OS processes behind the wire codec.

Thread-backed shards (:class:`~repro.cluster.sharded.ShardedForecaster`)
escape the GIL only inside BLAS — the compiled-plan replay loop, window
assembly and normalisation all serialise on one interpreter.
:class:`ProcessCoordinator` removes that ceiling: each shard is a
:class:`ProcessShard` — a real OS process running a full streaming stack
(:mod:`repro.cluster.worker`) behind a length-prefixed, pickle-free
message protocol (:mod:`repro.wire`) over a socketpair.  ``forecast_all``
fans out by sending every shard its batch *before* collecting any reply,
so N shards compute on N cores with zero coordinator threads.

The coordinator keeps the same public surface as the thread backend
(routing on a :class:`~repro.cluster.ring.HashRing`, checkpoint chains,
``failover`` with exact lost/stale accounting, merged stats), so the
bit-parity harness (:mod:`repro.cluster.parity`) drives both unchanged.

What is genuinely different about real processes:

* **Replicas are specs, not closures.**  A ``service_factory`` cannot
  cross a process boundary without pickling it; a
  :class:`~repro.cluster.spec.ServiceSpec` is plain data, and replica
  weight parity falls out of seeded model construction.
* **Death is a signal, not a simulation.**  A ``kill -9``'d worker is
  detected by pipe-EOF / heartbeat timeout (:meth:`detect_failures`,
  :class:`WorkerDied`), never by a hang.
* **The dead shard's memory is actually gone.**  Thread-backend
  ``failover`` reads the dead shard's live watermarks to report exactly
  which rows were rolled back; a killed process can't be read.  The
  coordinator therefore mirrors a per-tenant **census** — (observed
  rows, generation) from every ingest/import ack — which survives the
  worker and keeps the :class:`~repro.cluster.sharded.FailoverReport`
  accounting exact.
* **Serving counters die with the replica.**  Stats polled from workers
  are cached; at failover the last-polled snapshot folds into the
  retired accumulators — counters accrued after the final poll are
  honestly lost (the thread backend loses nothing because "dead" shards
  are still readable objects).
* **Spans cross the boundary explicitly.**  When tracing is on, each
  request carries a trace flag; the worker returns its span subtree and
  the coordinator grafts it under the live span via
  :func:`repro.obs.import_spans`, rebased onto the local clock.
"""

from __future__ import annotations

import itertools
import os
import signal
import subprocess
import uuid
from dataclasses import asdict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs, wire
from ..errors import CircuitOpen, DeadlineExceeded, TransientWireError
from ..runtime.annotations import guarded_by, requires_lock, unguarded
from ..runtime.locks import TrackedRLock
from ..runtime.resilience import CircuitBreaker, RetryPolicy
from ..serving.admission import DEFAULT_PRIORITY
from ..serving.service import ServiceStats
from ..testing import faults as _faults
from ..streaming.forecaster import StreamingStats
from ..streaming.store import StoreStats
from .ring import HashRing
from .sharded import _REBALANCE_SECONDS, FailoverReport, ShardedForecaster
from .snapshot import (
    _npz_path,
    compact_chain,
    read_snapshot,
    resolve_chain,
    resolve_tenant_payloads,
    write_snapshot,
)
from .spec import ClusterSpec, ServiceSpec, validate_cluster_timeouts

__all__ = [
    "ProcessShard",
    "ProcessCoordinator",
    "PendingForecast",
    "WorkerDied",
    "WorkerStalled",
    "build_cluster",
]

_SHARD_RETRIES = obs.counter(
    "repro_cluster_shard_retries_total",
    "transient-fault retries per process shard",
    labels=("shard",),
)


class WorkerDied(ConnectionError):
    """A worker process stopped answering (crash, kill -9, or hang)."""

    def __init__(self, shard_id: str, reason: str) -> None:
        super().__init__(f"worker {shard_id!r} died: {reason}")
        self.shard_id = shard_id
        self.reason = reason


class WorkerStalled(WorkerDied):
    """A worker missed its reply budget but the stream is still intact.

    Raised instead of permanently marking the shard dead: every frame
    carries a sequence number and the worker echoes it back, so when the
    overdue reply eventually arrives it is recognised as stale and
    drained — the request/reply stream resynchronises without tearing
    the worker down.  Subclasses :class:`WorkerDied` so existing
    "this call failed, settle and move on" handlers keep working; the
    shard's circuit breaker is what escalates *repeated* stalls into
    fail-fast rejection.
    """


class ProcessShard:
    """One worker process plus its request/reply socket.

    The protocol is strictly one reply per request, which is what makes
    the coordinator's send-all-then-collect fan-out safe without any
    coordinator-side threading: between a shard's ``send`` and its
    ``receive`` the worker is computing while the coordinator talks to
    other shards.

    Failure handling is graduated:

    * **EOF / reset** — the process is gone; the shard is marked dead
      permanently and every later call raises :class:`WorkerDied`.
    * **Reply timeout** — :class:`WorkerStalled`: the stream survives.
      Frames are sequence-stamped and echoed, so a late reply is drained
      as stale on the next receive instead of being mis-delivered.
    * **Transient wire hiccups** — :meth:`request` retries them under
      the shard's :class:`~repro.runtime.RetryPolicy` (send and receive
      are retried *separately*: a failed send never reached the worker,
      a failed receive never consumed the reply, so neither retry can
      double-execute a command).
    * **Repeated failures** — the shard's
      :class:`~repro.runtime.CircuitBreaker` trips and subsequent sends
      fail fast with :class:`~repro.errors.CircuitOpen` (zero I/O) until
      a half-open probe succeeds.
    """

    def __init__(
        self,
        shard_id: str,
        request_timeout: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {request_timeout}")
        self.shard_id = shard_id
        self.request_timeout = request_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker(shard_id)
        self._sock, self.process = wire.spawn_worker("repro.cluster.worker")
        self._dead: Optional[str] = None
        self._sent_parent: Optional[int] = None
        self._sent_at = 0.0
        self._seq_ids = itertools.count(1)
        self._pending_seq: Optional[int] = None

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        """Process running and stream not yet marked dead."""
        return self._dead is None and self.process.poll() is None

    # ------------------------------------------------------------------ #
    def send(self, command: str, **fields) -> None:
        """Write one sequence-stamped request frame (no reply collected yet).

        Gated by the shard's circuit breaker: while the breaker is open
        this raises :class:`~repro.errors.CircuitOpen` with zero I/O —
        a sick worker costs nothing per call instead of a timeout each.
        """
        if self._dead is not None:
            raise WorkerDied(self.shard_id, self._dead)
        self.breaker.allow()
        if _faults._STATE.schedule is not None:
            _faults.check("shard.send", shard=self.shard_id, cmd=command)
        message = dict(fields)
        message["cmd"] = command
        seq = next(self._seq_ids)
        message["seq"] = seq
        if obs.tracing_enabled():
            message["trace"] = True
            parent = obs.current_span()
            self._sent_parent = parent.span_id if parent is not None else None
            self._sent_at = obs.now()
        try:
            wire.send_message(self._sock, message)
        except TransientWireError:
            # Injected pre-write hiccup: nothing reached the worker, so a
            # retry of this send is sound and no reply is pending.
            raise
        except TimeoutError:
            self.breaker.record_failure()
            self._mark_dead(f"send timed out ({command})")
        except (ConnectionError, OSError) as error:
            self.breaker.record_failure()
            self._mark_dead(f"send failed ({command}): {error}")
        self._pending_seq = seq

    def receive(self, timeout: Optional[float] = None) -> dict:
        """Collect the pending reply frame; re-raises worker errors typed.

        Replies whose echoed ``seq`` predates the pending request are
        stale remnants of a timed-out call — drained and discarded, which
        is what lets a stalled shard resynchronise instead of staying
        dead forever.
        """
        if self._dead is not None:
            raise WorkerDied(self.shard_id, self._dead)
        if _faults._STATE.schedule is not None:
            _faults.check("shard.recv", shard=self.shard_id)
        budget = self.request_timeout if timeout is None else timeout
        deadline = obs.now() + budget
        while True:
            remaining = deadline - obs.now()
            if remaining <= 0:
                self.breaker.record_failure()
                raise WorkerStalled(self.shard_id, f"no reply within {budget:.1f}s")
            try:
                reply = wire.recv_message(self._sock, timeout=remaining)
            except wire.EndOfStream:
                self.breaker.record_failure()
                self._mark_dead("pipe EOF (worker process exited)")
            except TransientWireError:
                # Pre-read hiccup: the reply is still in the pipe, so the
                # caller may simply receive again — no resend, no
                # double-execution.
                raise
            except TimeoutError:
                self.breaker.record_failure()
                raise WorkerStalled(self.shard_id, f"no reply within {budget:.1f}s")
            except (ConnectionError, OSError) as error:
                self.breaker.record_failure()
                self._mark_dead(f"receive failed: {error}")
            reply_seq = reply.get("seq") if isinstance(reply, dict) else None
            if (
                self._pending_seq is not None
                and reply_seq is not None
                and reply_seq != self._pending_seq
            ):
                continue  # stale reply of a stalled earlier request — drain it
            break
        self._pending_seq = None
        spans = reply.pop("spans", None)
        if spans:
            rebase = 0.0
            for record in spans:
                if record.get("parent_id") is None:
                    rebase = self._sent_at - float(record.get("start", 0.0))
                    break
            obs.import_spans(spans, parent_id=self._sent_parent, rebase=rebase)
        self.breaker.record_success()
        if "error" in reply:
            wire.raise_remote(reply["error"])
        return reply

    def request(
        self,
        command: str,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        **fields,
    ) -> dict:
        """One full round trip, with transient faults retried under backoff.

        Send and receive retry *independently*: a transiently failed send
        wrote nothing (safe to resend, with a fresh seq), a transiently
        failed receive read nothing (safe to re-receive the same reply).
        ``deadline`` caps the whole retry budget — past it the policy
        raises :class:`~repro.errors.DeadlineExceeded` instead of backing
        off further.
        """
        self.retry.run(
            lambda: self.send(command, **fields),
            deadline=deadline,
            on_retry=self._count_retry,
        )
        return self.retry.run(
            lambda: self.receive(timeout=timeout),
            deadline=deadline,
            on_retry=self._count_retry,
        )

    def _count_retry(self, attempt: int, delay: float, error: BaseException) -> None:
        _SHARD_RETRIES.labels(shard=self.shard_id).inc()

    def _mark_dead(self, reason: str) -> None:
        self._dead = reason
        raise WorkerDied(self.shard_id, reason)

    # ------------------------------------------------------------------ #
    def kill(self) -> None:
        """SIGKILL the worker — the crash-drill primitive — and reap it."""
        if self.process.poll() is None:
            os.kill(self.process.pid, signal.SIGKILL)
        self.process.wait()

    def close(self, graceful: bool = True) -> None:
        """Tear the worker down: polite shutdown, then reap, then release.

        Closing the socket alone already terminates a healthy worker
        (its recv loop exits on EOF); SIGTERM/SIGKILL only back that up,
        and ``wait`` always runs so no zombie outlives the shard.
        """
        if graceful and self._dead is None and self.process.poll() is None:
            try:
                self.send("shutdown")
                self.receive(timeout=5.0)
            except (WorkerDied, CircuitOpen, TransientWireError, ValueError):
                pass  # already gone, breaker open, or stream garbage — reaped below
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck worker
                self.process.kill()
        self.process.wait()


class PendingForecast:
    """Coordinator-side handle for a forecast queued on a process shard.

    Mirrors :class:`~repro.streaming.forecaster.StreamingForecast`:
    ``result()`` flushes the owning shard if the value has not arrived
    yet, then returns the forecast (already denormalised worker-side) or
    re-raises the worker's error for this request.
    """

    __slots__ = ("tenant", "_coordinator", "_shard_id", "_request_id", "_value", "_error", "_resolved")

    def __init__(self, coordinator: "ProcessCoordinator", shard_id: str, request_id: str, tenant: str) -> None:
        self.tenant = tenant
        self._coordinator = coordinator
        self._shard_id = shard_id
        self._request_id = request_id
        self._value: Optional[np.ndarray] = None
        self._error: Optional[dict] = None
        self._resolved = False

    def done(self) -> bool:
        return self._resolved

    def result(self) -> np.ndarray:
        if not self._resolved:
            self._coordinator._flush_shard(self._shard_id)
        if not self._resolved:
            raise RuntimeError(
                f"forecast for {self.tenant!r} did not resolve on flush"
            )
        if self._error is not None:
            wire.raise_remote(self._error)
        return self._value

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value
        self._resolved = True

    def _fail(self, payload: dict) -> None:
        self._error = payload
        self._resolved = True


@guarded_by(
    "_shards", "ring", "_assign_cache", "_topology_version",
    "_census", "_pending", "_last_stats", "_stats_cache",
    "_chain", "_chain_id", "_seq", "_dropped_since_checkpoint",
    "_retired_service", "_retired_store", "_retired_streaming",
    "rebalances", "tenants_migrated", "rebalance_failures",
    lock="_lock",
)
class ProcessCoordinator:
    """Consistent-hash cluster whose shards are worker processes.

    Parameters
    ----------
    spec:
        the :class:`~repro.cluster.spec.ServiceSpec` every worker builds
        its replica from (weights deterministic in ``config.seed``).
    n_shards:
        initial worker count (named ``shard-0 .. shard-{n-1}``).
    normalization / window_capacity / vnodes:
        as on the thread backend, forwarded to every worker's stack.
    request_timeout:
        seconds a single request may take before the worker is declared
        stalled (generous: covers spawn + model build + plan warmup).
        Validated against ``heartbeat_timeout``
        (:func:`~repro.cluster.spec.validate_cluster_timeouts`).
    heartbeat_timeout:
        default ping budget for :meth:`detect_failures`; must be
        strictly smaller than ``request_timeout``.
    retry_attempts / retry_base / retry_cap:
        per-shard :class:`~repro.runtime.RetryPolicy` knobs — transient
        wire faults are retried under decorrelated-jitter backoff.
    breaker_threshold / breaker_reset:
        per-shard :class:`~repro.runtime.CircuitBreaker` knobs — after
        ``breaker_threshold`` consecutive failures a shard fails fast
        with :class:`~repro.errors.CircuitOpen` until a probe succeeds
        ``breaker_reset`` seconds later.
    warmup:
        trace compiled plans in every worker right after spawn, so the
        first fan-out replays instead of tracing on the request path.
    """

    def __init__(
        self,
        spec: ServiceSpec,
        n_shards: int = 2,
        normalization: str = "none",
        window_capacity: Optional[int] = None,
        vnodes: int = 64,
        request_timeout: float = 120.0,
        heartbeat_timeout: float = 5.0,
        retry_attempts: int = 3,
        retry_base: float = 0.05,
        retry_cap: float = 2.0,
        breaker_threshold: int = 3,
        breaker_reset: float = 5.0,
        warmup: bool = True,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if not isinstance(spec, ServiceSpec):
            raise TypeError(
                "ProcessCoordinator needs a ServiceSpec (a factory closure "
                "cannot cross a process boundary without pickling it)"
            )
        validate_cluster_timeouts(request_timeout, heartbeat_timeout)
        self.spec = spec
        self.normalization = normalization
        self.window_capacity = window_capacity
        self.request_timeout = request_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.retry_attempts = retry_attempts
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self._init_runtime()
        self.ring = HashRing(vnodes=vnodes)
        shard_ids = [f"shard-{index}" for index in range(n_shards)]
        self._shards = self._spawn_and_init(shard_ids, warmup=warmup)
        for shard_id in shard_ids:
            self.ring.add(shard_id)

    @unguarded("constructor phase: the cluster is not visible to other threads yet")
    def _init_runtime(self) -> None:
        self._lock = TrackedRLock("process-cluster")
        self._shards: Dict[str, ProcessShard] = {}
        self._assign_cache: Dict[str, Tuple[int, str]] = {}
        self._topology_version = 0
        # The coordinator-side census: tenant -> (observed rows,
        # generation), refreshed from every ingest/import acknowledgement.
        # This is the failover ledger — after a kill -9 the dead worker's
        # store is unreadable, and the census is what keeps lost/stale
        # accounting exact.
        self._census: Dict[str, Tuple[int, int]] = {}
        # Unresolved forecast handles per shard, keyed by request id.
        self._pending: Dict[str, Dict[str, PendingForecast]] = {}
        self._request_ids = itertools.count(1)
        # Last stats reply per shard — the fold-in source when a worker
        # dies without a final poll.
        self._last_stats: Dict[str, dict] = {}
        self._stats_cache: Tuple[ServiceStats, StreamingStats, StoreStats] = (
            ServiceStats(),
            StreamingStats(),
            StoreStats(),
        )
        self.rebalances = 0
        self.tenants_migrated = 0
        self.rebalance_failures = 0
        self._retired_service = ServiceStats()
        self._retired_store = StoreStats()
        self._retired_streaming = StreamingStats()
        self._chain: List[str] = []
        self._chain_id: Optional[str] = None
        self._seq = 0
        self._dropped_since_checkpoint: set = set()
        # Merged per-worker metrics, coordinator-side: registry views over
        # the cached stats (weakly bound — they die with the coordinator).
        # Cache-backed, not RPC-backed, so a metrics export can never hang
        # on (or crash with) a dead worker; the cache refreshes on every
        # stats poll.
        obs.register_stats("repro_serving", self._cached_service_stats, maxed=ServiceStats.MAXED)
        obs.register_stats("repro_streaming", self._cached_streaming_stats)
        obs.register_stats("repro_store", self._cached_store_stats)

    @unguarded("reads one tuple slot: the cache is replaced wholesale, never mutated")
    def _cached_service_stats(self) -> ServiceStats:
        return self._stats_cache[0]

    @unguarded("reads one tuple slot: the cache is replaced wholesale, never mutated")
    def _cached_streaming_stats(self) -> StreamingStats:
        return self._stats_cache[1]

    @unguarded("reads one tuple slot: the cache is replaced wholesale, never mutated")
    def _cached_store_stats(self) -> StoreStats:
        return self._stats_cache[2]

    # ------------------------------------------------------------------ #
    # Worker lifecycle
    # ------------------------------------------------------------------ #
    def _spawn_and_init(self, shard_ids: Sequence[str], warmup: bool) -> Dict[str, ProcessShard]:
        """Spawn workers, then init them all before collecting any ack.

        Spawning first and initialising in a send-all/recv-all sweep means
        N interpreters start (and N replicas build + warm) concurrently —
        cluster construction costs one worker's startup, not N.
        """
        spawned: Dict[str, ProcessShard] = {}
        try:
            for shard_id in shard_ids:
                spawned[shard_id] = ProcessShard(
                    shard_id,
                    request_timeout=self.request_timeout,
                    retry=RetryPolicy(
                        max_attempts=self.retry_attempts,
                        base=self.retry_base,
                        cap=self.retry_cap,
                    ),
                    breaker=CircuitBreaker(
                        shard_id,
                        failure_threshold=self.breaker_threshold,
                        reset_timeout=self.breaker_reset,
                    ),
                )
            spec_state = self.spec.to_state()
            for shard_id, shard in spawned.items():
                shard.send(
                    "init",
                    spec=spec_state,
                    shard_id=shard_id,
                    normalization=self.normalization,
                    window_capacity=self.window_capacity,
                    warmup=warmup,
                )
            for shard in spawned.values():
                shard.receive()
        except BaseException:
            for shard in spawned.values():
                shard.close(graceful=False)
            raise
        return spawned

    def detect_failures(self, timeout: Optional[float] = None) -> List[str]:
        """Heartbeat sweep: shard ids whose workers are dead or unresponsive.

        Never hangs: an exited process is caught by ``poll``/pipe-EOF
        immediately, and a live-but-wedged one by the ping budget
        (``heartbeat_timeout`` unless overridden).  Detected shards stay
        in the topology — marked dead or stalled — until :meth:`failover`
        disposes of them, so detection and recovery remain separate
        decisions.  A shard whose breaker is open is reported without
        paying any probe I/O at all.
        """
        with self._lock:
            budget = self.heartbeat_timeout if timeout is None else timeout
            dead: List[str] = []
            for shard_id, shard in self._shards.items():
                if not shard.alive():
                    dead.append(shard_id)
                    continue
                try:
                    shard.send("ping")
                    shard.receive(timeout=budget)
                except (WorkerDied, CircuitOpen):
                    dead.append(shard_id)
            return dead

    def worker_pid(self, shard_id: str) -> int:
        """The worker's OS pid (so a drill can ``kill -9`` it for real)."""
        with self._lock:
            return self._require_shard(shard_id).pid

    def kill_worker(self, shard_id: str) -> int:
        """SIGKILL a worker in place; returns its pid.  Drill convenience —
        the shard stays in the topology for :meth:`detect_failures` /
        :meth:`failover` to find, exactly as an external ``kill -9`` would
        leave it."""
        with self._lock:
            shard = self._require_shard(shard_id)
            shard.kill()
            return shard.pid

    def inject_stall(self, shard_id: str, seconds: float, count: int = 1) -> None:
        """Arm a worker-side stall: the next ``count`` commands sleep first.

        Drill convenience for degradation tests — the stall happens in the
        worker process (deterministically, before dispatch), so the
        coordinator's receive genuinely times out the way a wedged worker
        would make it.  The arming request itself replies immediately.
        """
        with self._lock:
            self._require_shard(shard_id).request(
                "fault", stall=float(seconds), count=int(count)
            )

    def breaker_states(self) -> Dict[str, dict]:
        """Each shard's circuit-breaker snapshot (state, failures, trips)."""
        with self._lock:
            return {
                shard_id: {
                    "state": shard.breaker.state,
                    "consecutive_failures": shard.breaker.consecutive_failures,
                    "trips": shard.breaker.trips,
                }
                for shard_id, shard in self._shards.items()
            }

    def close(self) -> None:
        """Shut every worker down and reap it.  Idempotent."""
        with self._lock:
            for shard_id, shard in list(self._shards.items()):
                self._fail_pending_locked(shard_id, "cluster closed")
                shard.close()
            self._shards.clear()

    def __enter__(self) -> "ProcessCoordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def shard_ids(self) -> List[str]:
        with self._lock:
            return list(self._shards)

    def shard_for(self, tenant: str) -> str:
        """Which shard serves a tenant (memoised ring lookup)."""
        with self._lock:
            return self._assign_locked(tenant)

    @requires_lock("_lock")
    def _assign_locked(self, tenant: str) -> str:
        cached = self._assign_cache.get(tenant)
        if cached is not None and cached[0] == self._topology_version:
            return cached[1]
        shard_id = self.ring.assign(tenant)
        self._assign_cache[tenant] = (self._topology_version, shard_id)
        return shard_id

    @requires_lock("_lock")
    def _bump_topology_locked(self) -> None:
        self._topology_version += 1
        self._assign_cache = {}

    @requires_lock("_lock")
    def _require_shard(self, shard_id: str) -> ProcessShard:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise KeyError(f"unknown shard {shard_id!r}") from None

    def tenants(self) -> List[str]:
        """Every tenant across the cluster (shard order, then first-seen)."""
        with self._lock:
            keys: List[str] = []
            for shard in self._shards.values():
                keys.extend(shard.request("tenants")["tenants"])
            return keys

    def tenant_count(self) -> int:
        with self._lock:
            return len(self._census)

    # ------------------------------------------------------------------ #
    # Routed traffic
    # ------------------------------------------------------------------ #
    def ingest(self, tenant: str, values: np.ndarray, timestamp=None) -> int:
        """Append observations on the tenant's worker; returns its total.

        The acknowledgement carries the worker's (total, generation)
        watermark, which updates the census — every successfully ingested
        row is accounted for even if the worker later dies taking the
        rows with it.
        """
        with self._lock:
            shard = self._shards[self._assign_locked(tenant)]
            reply = shard.request(
                "ingest", tenant=tenant, values=np.asarray(values), timestamp=timestamp
            )
            self._census[tenant] = (int(reply["total"]), int(reply["generation"]))
            return int(reply["total"])

    def forecast(
        self,
        tenant: str,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
        priority: str = DEFAULT_PRIORITY,
        timeout: Optional[float] = None,
    ) -> PendingForecast:
        """Queue a forecast on the tenant's worker; non-blocking handle.

        ``priority`` and ``timeout`` cross the wire as a class name plus
        a *relative* budget — absolute deadlines cannot cross a process
        boundary (each process has its own monotonic clock), so the
        worker re-anchors the budget on its own clock at admission.  A
        worker-side shed comes back typed (:class:`Overloaded` /
        :class:`DeadlineExceeded`) and raises here.
        """
        with self._lock:
            shard_id = self._assign_locked(tenant)
            request_id = str(next(self._request_ids))
            self._shards[shard_id].request(
                "submit",
                id=request_id,
                tenant=tenant,
                future_numerical=future_numerical,
                future_categorical=future_categorical,
                priority=priority,
                budget=timeout,
            )
            handle = PendingForecast(self, shard_id, request_id, tenant)
            self._pending.setdefault(shard_id, {})[request_id] = handle
            return handle

    def forecast_all(
        self,
        tenants: Optional[Sequence[str]] = None,
        flush: bool = True,
        future_numerical: Optional[Mapping[str, np.ndarray]] = None,
        future_categorical: Optional[Mapping[str, np.ndarray]] = None,
        priority: str = DEFAULT_PRIORITY,
        timeout: Optional[float] = None,
    ) -> Dict[str, PendingForecast]:
        """Queue one forecast per tenant, fanned out worker by worker.

        The truly-parallel path: every shard receives its whole batch in
        one ``forecast_many`` frame before any reply is collected, so S
        workers assemble windows, replay compiled plans and denormalise
        simultaneously on S cores — no GIL, no coordinator threads.
        Failures settle before raising: every healthy shard's results are
        applied (its handles resolve) even when another shard died, was
        breaker-rejected, or stalled mid-fan-out.

        ``timeout`` bounds the *whole* fan-out on the caller's clock:
        each entry carries the remaining budget (relative — monotonic
        clocks don't cross process boundaries), and each collect leg's
        receive budget is clamped to what is left, floored at a small
        epsilon so already-computed replies from healthy shards still
        drain after a stalled shard burned the deadline.
        """
        future_numerical = future_numerical or {}
        future_categorical = future_categorical or {}
        with self._lock:
            deadline = None if timeout is None else obs.now() + timeout
            keys = self.tenants() if tenants is None else list(tenants)
            by_shard: Dict[str, List[str]] = {}
            for tenant in keys:
                by_shard.setdefault(self._assign_locked(tenant), []).append(tenant)
            handles: Dict[str, PendingForecast] = {}
            first_error: Optional[BaseException] = None
            with obs.span(
                "cluster.forecast_all",
                tenants=len(keys),
                shards=len(by_shard),
                backend="process",
            ):
                sent: List[str] = []
                for shard_id, members in by_shard.items():
                    budget = None if deadline is None else deadline - obs.now()
                    entries = []
                    for tenant in members:
                        request_id = str(next(self._request_ids))
                        entries.append(
                            {
                                "id": request_id,
                                "tenant": tenant,
                                "fn": future_numerical.get(tenant),
                                "fc": future_categorical.get(tenant),
                                "priority": priority,
                                "budget": budget,
                            }
                        )
                        handle = PendingForecast(self, shard_id, request_id, tenant)
                        self._pending.setdefault(shard_id, {})[request_id] = handle
                        handles[tenant] = handle
                    if budget is not None and budget <= 0:
                        # The deadline burned before this shard's frame went
                        # out — shed locally, typed, without any wire I/O.
                        self._fail_pending_locked(
                            shard_id, "fan-out deadline exhausted before dispatch",
                            error_type="DeadlineExceeded",
                        )
                        continue
                    try:
                        self._shards[shard_id].send(
                            "forecast_many", entries=entries, flush=flush
                        )
                        sent.append(shard_id)
                    except CircuitOpen as error:
                        if deadline is not None:
                            # A tripped breaker under a deadline is typed
                            # load-shedding, not a cluster failure: the sick
                            # shard's handles fail Overloaded and the rest of
                            # the fan-out proceeds.
                            self._fail_pending_locked(
                                shard_id, str(error), error_type="Overloaded"
                            )
                            continue
                        self._fail_pending_locked(shard_id, str(error))
                        first_error = first_error if first_error is not None else error
                    except WorkerDied as error:
                        self._fail_pending_locked(shard_id, str(error))
                        first_error = first_error if first_error is not None else error
                for shard_id in sent:
                    receive_budget: Optional[float] = None
                    if deadline is not None:
                        # Floor at a drain epsilon: replies a healthy worker
                        # already computed should resolve even when a slow
                        # sibling spent the deadline.
                        receive_budget = min(
                            self.request_timeout, max(deadline - obs.now(), 0.05)
                        )
                    try:
                        reply = self._shards[shard_id].receive(timeout=receive_budget)
                    except WorkerStalled as error:
                        if deadline is not None:
                            # Graceful degradation, not cluster failure: the
                            # slow shard's handles fail typed while the
                            # healthy shards' results still return.  Its late
                            # reply drains on the next seq-stamped receive.
                            self._fail_pending_locked(
                                shard_id, str(error), error_type="DeadlineExceeded"
                            )
                            continue
                        self._fail_pending_locked(shard_id, str(error))
                        first_error = first_error if first_error is not None else error
                        continue
                    except WorkerDied as error:
                        self._fail_pending_locked(shard_id, str(error))
                        first_error = first_error if first_error is not None else error
                        continue
                    except Exception as error:
                        # Remote command error (e.g. unknown tenant) —
                        # recorded and re-raised after the fan-out settles,
                        # keeping thread-backend exception parity.
                        first_error = first_error if first_error is not None else error
                        continue
                    self._apply_flush_reply_locked(shard_id, reply)
            if first_error is not None:
                raise first_error
            return {tenant: handles[tenant] for tenant in keys if tenant in handles}

    def ingest_and_forecast(
        self, arrivals: Mapping[str, np.ndarray], timestamp=None
    ) -> Dict[str, PendingForecast]:
        """One cluster tick: ingest a batch of arrivals, forecast each tenant."""
        for tenant, values in arrivals.items():
            self.ingest(tenant, values, timestamp=timestamp)
        return self.forecast_all(list(arrivals))

    def flush(self) -> int:
        """Flush every worker's service queue (concurrently); returns
        requests resolved.  Settles all shards before raising a failure."""
        with self._lock:
            sent: List[str] = []
            first_error: Optional[BaseException] = None
            for shard_id, shard in self._shards.items():
                try:
                    shard.send("flush")
                    sent.append(shard_id)
                except (WorkerDied, CircuitOpen) as error:
                    self._fail_pending_locked(shard_id, str(error))
                    first_error = first_error if first_error is not None else error
            total = 0
            for shard_id in sent:
                try:
                    reply = self._shards[shard_id].receive()
                except WorkerDied as error:
                    self._fail_pending_locked(shard_id, str(error))
                    first_error = first_error if first_error is not None else error
                    continue
                total += self._apply_flush_reply_locked(shard_id, reply)
            if first_error is not None:
                raise first_error
            return total

    def _flush_shard(self, shard_id: str) -> int:
        """Flush one shard (a handle's ``result()`` pulls this)."""
        with self._lock:
            shard = self._shards.get(shard_id)
            if shard is None:
                return 0  # shard retired; its handles were settled then
            try:
                reply = shard.request("flush")
            except (WorkerDied, CircuitOpen) as error:
                self._fail_pending_locked(shard_id, str(error))
                raise
            return self._apply_flush_reply_locked(shard_id, reply)

    @requires_lock("_lock")
    def _apply_flush_reply_locked(self, shard_id: str, reply: dict) -> int:
        pending = self._pending.get(shard_id, {})
        for request_id, value in reply["results"].items():
            handle = pending.pop(request_id, None)
            if handle is not None:
                handle._resolve(value)
        for request_id, payload in reply["errors"].items():
            handle = pending.pop(request_id, None)
            if handle is not None:
                handle._fail(payload)
        return int(reply["flushed"])

    @requires_lock("_lock")
    def _fail_pending_locked(
        self, shard_id: str, reason: str, error_type: str = "RuntimeError"
    ) -> None:
        verb = {
            "DeadlineExceeded": "missed its deadline",
            "Overloaded": "shed its queue",
        }.get(error_type, "died")
        for handle in self._pending.pop(shard_id, {}).values():
            handle._fail(
                {
                    "type": error_type,
                    "message": (
                        f"shard {shard_id!r} {verb} before the forecast for "
                        f"{handle.tenant!r} resolved: {reason}"
                    ),
                }
            )

    def warmup(self, batch_sizes: Optional[Sequence[int]] = None) -> int:
        """Pre-trace compiled plans in every worker (concurrently)."""
        with self._lock:
            return self._warmup_locked(list(self._shards), batch_sizes)

    @requires_lock("_lock")
    def _warmup_locked(
        self, shard_ids: Sequence[str], batch_sizes: Optional[Sequence[int]] = None
    ) -> int:
        for shard_id in shard_ids:
            self._shards[shard_id].send(
                "warmup",
                batch_sizes=None if batch_sizes is None else [int(s) for s in batch_sizes],
            )
        total = 0
        first_error: Optional[BaseException] = None
        for shard_id in shard_ids:
            try:
                total += int(self._shards[shard_id].receive()["traced"])
            except Exception as error:
                # Settle every shard's reply before raising: an unread
                # reply would desynchronise the request/reply stream.
                first_error = first_error if first_error is not None else error
        if first_error is not None:
            raise first_error
        return total

    def drop(self, tenant: str) -> None:
        """Forget a tenant cluster-wide (buffer, watermark and scaler)."""
        with self._lock:
            shard = self._shards[self._assign_locked(tenant)]
            shard.request("drop", tenant=tenant)
            self._census.pop(tenant, None)
            self._assign_cache.pop(tenant, None)
            self._dropped_since_checkpoint.add(tenant)

    # ------------------------------------------------------------------ #
    # Rebalancing & failover
    # ------------------------------------------------------------------ #
    def add_shard(self, shard_id: Optional[str] = None) -> List[str]:
        """Grow the ring by one worker; migrate only tenants it now owns."""
        with self._lock:
            started = obs.now() if obs.metrics_enabled() else 0.0
            if shard_id is None:
                index = len(self._shards)
                while f"shard-{index}" in self._shards:
                    index += 1
                shard_id = f"shard-{index}"
            if shard_id in self._shards:
                raise ValueError(f"shard {shard_id!r} already exists")
            incoming = self._spawn_and_init([shard_id], warmup=True)[shard_id]
            owners = {tenant: self._assign_locked(tenant) for tenant in self._census}
            self.ring.add(shard_id)
            moved: List[Tuple[str, str]] = []
            try:
                for tenant, source_id in owners.items():
                    if self.ring.assign(tenant) != shard_id:
                        continue
                    payload = self._shards[source_id].request(
                        "export_tenant", tenant=tenant
                    )["payload"]
                    reply = incoming.request("import_tenant", tenant=tenant, payload=payload)
                    self._shards[source_id].request("drop", tenant=tenant)
                    self._census[tenant] = (int(reply["observed"]), int(reply["generation"]))
                    moved.append((tenant, source_id))
            except Exception:
                # Deliberately broad, mirroring the thread backend: a
                # half-done rebalance must not leave a phantom ring node.
                # Unwind, count the failure, re-raise unchanged.
                self.rebalance_failures += 1
                self.ring.remove(shard_id)
                for tenant, source_id in moved:
                    payload = incoming.request("export_tenant", tenant=tenant)["payload"]
                    reply = self._shards[source_id].request(
                        "import_tenant", tenant=tenant, payload=payload
                    )
                    self._census[tenant] = (int(reply["observed"]), int(reply["generation"]))
                incoming.close()
                raise
            self._shards[shard_id] = incoming
            self._bump_topology_locked()
            self.rebalances += 1
            self.tenants_migrated += len(moved)
            if started:
                _REBALANCE_SECONDS.labels(op="add_shard").observe(obs.now() - started)
            return [tenant for tenant, _ in moved]

    def remove_shard(self, shard_id: str) -> List[str]:
        """Retire a worker gracefully; its tenants (and only its) re-home."""
        with self._lock:
            started = obs.now() if obs.metrics_enabled() else 0.0
            source = self._require_shard(shard_id)
            if len(self._shards) == 1:
                raise ValueError("cannot remove the last shard of a cluster")
            # Flush its queue first so already-submitted forecasts resolve
            # against the state they were assembled from.
            self._apply_flush_reply_locked(shard_id, source.request("flush"))
            del self._shards[shard_id]
            self.ring.remove(shard_id)
            tenants = source.request("tenants")["tenants"]
            moved: List[str] = []
            try:
                for tenant in tenants:
                    payload = source.request("export_tenant", tenant=tenant)["payload"]
                    target = self._shards[self.ring.assign(tenant)]
                    reply = target.request("import_tenant", tenant=tenant, payload=payload)
                    self._census[tenant] = (int(reply["observed"]), int(reply["generation"]))
                    moved.append(tenant)
            except Exception:
                # Deliberately broad, same unwind contract as add_shard:
                # the source still holds every tenant (export copies), so
                # drop the partial imports, restore the topology, count
                # the failure and re-raise unchanged.
                self.rebalance_failures += 1
                for tenant in moved:
                    self._shards[self.ring.assign(tenant)].request("drop", tenant=tenant)
                self.ring.add(shard_id)
                self._shards[shard_id] = source
                raise
            self._fold_shard_stats_locked(shard_id, source)
            source.close()
            self._bump_topology_locked()
            self.rebalances += 1
            self.tenants_migrated += len(moved)
            if started:
                _REBALANCE_SECONDS.labels(op="remove_shard").observe(obs.now() - started)
            return moved

    def failover(
        self, shard_id: str, checkpoint_paths: Optional[Sequence[str]] = None
    ) -> FailoverReport:
        """Recover from a dead worker: re-route its arc, restore its tenants.

        The semantic twin of the thread backend's ``failover`` — same
        refusal rules, same :class:`FailoverReport` accounting — driven
        from the census instead of the (gone) replica memory:

        * never checkpointed → **lost**;
        * dropped since the checkpoint, generation mismatch, or census
          watermark below the checkpoint's (a different incarnation of
          the key) → **lost**, never silently resurrected;
        * otherwise restored onto its new ring owner, with
          ``census − checkpoint`` rows reported **stale** (rolled back).

        Restored tenants' census entries roll back to the checkpoint
        watermark, and adopting workers are re-warmed.  Works equally on
        a ``kill -9``'d worker and a politely simulated death.
        """
        with self._lock:
            started = obs.now() if obs.metrics_enabled() else 0.0
            dead = self._require_shard(shard_id)
            if len(self._shards) == 1:
                raise ValueError("cannot fail over the last shard of a cluster")
            paths = list(checkpoint_paths) if checkpoint_paths is not None else list(self._chain)
            if not paths:
                raise RuntimeError(
                    "failover needs a checkpoint to restore from; call save() "
                    "(and save_incremental()) before shards can die safely"
                )
            checkpointed = resolve_tenant_payloads(resolve_chain(paths))
            victims = [
                tenant
                for tenant in self._census
                if self._assign_locked(tenant) == shard_id
            ]
            del self._shards[shard_id]
            self._fold_shard_stats_locked(shard_id, dead)
            self._fail_pending_locked(shard_id, "shard failed over")
            dead.close(graceful=False)
            self.ring.remove(shard_id)
            self._bump_topology_locked()
            report = FailoverReport(shard_id=shard_id)
            for tenant in victims:
                payload = checkpointed.get(tenant)
                if payload is None:
                    # Born after the last checkpoint, died with the worker.
                    report.lost.append(tenant)
                    self._census.pop(tenant, None)
                    continue
                observed, generation = self._census[tenant]
                checkpoint_rows = int(payload["series"]["buffer"]["total_appended"])
                checkpoint_generation = int(payload["series"].get("generation", 0))
                if (
                    tenant in self._dropped_since_checkpoint
                    or generation != checkpoint_generation
                    or observed < checkpoint_rows
                ):
                    # A different incarnation of this key (dropped and
                    # re-created since the checkpoint): restoring would
                    # resurrect deleted history, so it is honestly lost.
                    report.lost.append(tenant)
                    self._census.pop(tenant, None)
                    continue
                target_id = self._assign_locked(tenant)
                reply = self._shards[target_id].request(
                    "import_tenant", tenant=tenant, payload=payload
                )
                report.restored[tenant] = target_id
                if observed > checkpoint_rows:
                    report.stale[tenant] = observed - checkpoint_rows
                self._census[tenant] = (int(reply["observed"]), int(reply["generation"]))
            self.rebalances += 1
            self.tenants_migrated += len(report.restored)
            self._warmup_locked(sorted(set(report.restored.values())))
            if started:
                _REBALANCE_SECONDS.labels(op="failover").observe(obs.now() - started)
            return report

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    @requires_lock("_lock")
    def _collect_stats_locked(self) -> Tuple[ServiceStats, StreamingStats, StoreStats]:
        for shard_id, shard in self._shards.items():
            try:
                self._last_stats[shard_id] = shard.request("stats")
            except (WorkerDied, CircuitOpen):
                # Graceful degradation: a sick shard contributes its last
                # polled snapshot instead of failing the whole merge —
                # stats reads must keep working *during* an incident.
                continue
        live = [
            self._last_stats[shard_id]
            for shard_id in self._shards
            if shard_id in self._last_stats
        ]
        service = ServiceStats.merge(
            [self._retired_service] + [ServiceStats(**s["service"]) for s in live]
        )
        streaming = StreamingStats.merge(
            [self._retired_streaming] + [StreamingStats(**s["streaming"]) for s in live]
        )
        store = StoreStats.merge(
            [self._retired_store] + [StoreStats(**s["store"]) for s in live]
        )
        self._stats_cache = (service, streaming, store)
        return service, streaming, store

    @requires_lock("_lock")
    def _fold_shard_stats_locked(self, shard_id: str, shard: ProcessShard) -> None:
        """Fold a departing worker's counters into the retired accumulators.

        Polls live workers for their final numbers; for a crashed worker
        the last cached poll is folded instead — counters accrued between
        the final poll and the crash died with the process (the honest
        cost of real processes; the thread backend can still read its
        "dead" objects).
        """
        try:
            stats = shard.request("stats")
        except (WorkerDied, CircuitOpen):
            stats = self._last_stats.get(shard_id)
        self._last_stats.pop(shard_id, None)
        if stats is None:
            return
        self._retired_service = ServiceStats.merge(
            [self._retired_service, ServiceStats(**stats["service"])]
        )
        self._retired_streaming = StreamingStats.merge(
            [self._retired_streaming, StreamingStats(**stats["streaming"])]
        )
        self._retired_store = StoreStats.merge(
            [self._retired_store, StoreStats(**stats["store"])]
        )

    def service_stats(self) -> ServiceStats:
        """Cluster-wide serving counters (merged live polls + retired)."""
        with self._lock:
            return self._collect_stats_locked()[0]

    def streaming_stats(self) -> StreamingStats:
        with self._lock:
            return self._collect_stats_locked()[1]

    def store_stats(self) -> StoreStats:
        with self._lock:
            return self._collect_stats_locked()[2]

    def reset_service_stats(self) -> None:
        """Zero every worker's serving counters (between benchmark phases)."""
        with self._lock:
            self._retired_service.reset()
            for shard in self._shards.values():
                shard.request("reset_stats")
            self._collect_stats_locked()

    def worker_metrics(self) -> Dict[str, dict]:
        """Each worker's full metrics-registry snapshot, by shard id."""
        with self._lock:
            return {
                shard_id: shard.request("metrics")["snapshot"]
                for shard_id, shard in self._shards.items()
            }

    def as_dict(self) -> dict:
        """One observability payload: topology, balance and merged stats."""
        with self._lock:
            per_shard: Dict[str, int] = {shard_id: 0 for shard_id in self._shards}
            for tenant in self._census:
                per_shard[self._assign_locked(tenant)] += 1
            return {
                "backend": "process",
                "shards": len(self._shards),
                "tenants": len(self._census),
                "tenants_per_shard": per_shard,
                "rebalances": self.rebalances,
                "tenants_migrated": self.tenants_migrated,
                "rebalance_failures": self.rebalance_failures,
                "service": self._collect_stats_locked()[0].as_dict(),
            }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        """Serialisable snapshot of the whole cluster (ring + every shard).

        Same shape as the thread backend's ``to_state`` — the two
        deployments share one snapshot format, one chain resolver, one
        ``from_state`` each way.
        """
        with self._lock:
            return self._to_state_locked()

    @requires_lock("_lock")
    def _to_state_locked(self) -> dict:
        for shard in self._shards.values():
            shard.send("state")
        shard_states = {
            shard_id: shard.receive()["state"]
            for shard_id, shard in self._shards.items()
        }
        service = self._collect_stats_locked()[0]
        return {
            "kind": "full",
            "chain_id": self._chain_id,
            "seq": int(self._seq),
            "vnodes": int(self.ring.vnodes),
            "normalization": self.normalization,
            "rebalances": int(self.rebalances),
            "tenants_migrated": int(self.tenants_migrated),
            "retired": {
                "service": asdict(service),
                "store": asdict(self._retired_store),
                "streaming": asdict(self._retired_streaming),
            },
            "shards": shard_states,
        }

    @requires_lock("_lock")
    def _delta_state_locked(self, seq: int) -> dict:
        for shard in self._shards.values():
            shard.send("delta")
        collected = {
            shard_id: shard.receive()
            for shard_id, shard in self._shards.items()
        }
        first = next(iter(collected.values()))
        service = self._collect_stats_locked()[0]
        return {
            "kind": "delta",
            "chain_id": self._chain_id,
            "seq": int(seq),
            "parent_seq": int(self._seq),
            "vnodes": int(self.ring.vnodes),
            "normalization": self.normalization,
            "store": first["store"],
            "rebalances": int(self.rebalances),
            "tenants_migrated": int(self.tenants_migrated),
            "retired": {
                "service": asdict(service),
                "store": asdict(self._retired_store),
                "streaming": asdict(self._retired_streaming),
            },
            "shards": {
                shard_id: {
                    "order": entry["order"],
                    "dirty": entry["dirty"],
                    "stats": entry["stats"],
                    "store_stats": entry["store_stats"],
                }
                for shard_id, entry in collected.items()
            },
        }

    @requires_lock("_lock")
    def _clear_dirty_locked(self) -> None:
        for shard in self._shards.values():
            shard.send("clear_dirty")
        for shard in self._shards.values():
            shard.receive()

    def save(self, path: str) -> None:
        """Write a full cluster snapshot; starts a new checkpoint chain."""
        with self._lock:
            previous = (self._chain_id, self._seq)
            self._chain_id = uuid.uuid4().hex
            self._seq = 0
            try:
                write_snapshot(self._to_state_locked(), path)
            except BaseException:
                self._chain_id, self._seq = previous
                raise
            self._clear_dirty_locked()
            self._dropped_since_checkpoint.clear()
            self._chain = [path]

    def save_incremental(self, path: str) -> None:
        """Write a delta checkpoint: only tenants touched since the last one."""
        with self._lock:
            if not self._chain:
                raise RuntimeError(
                    "no checkpoint chain to extend: call save() for a full "
                    "base snapshot before save_incremental()"
                )
            if self._resolve_snapshot_file(path) in {
                self._resolve_snapshot_file(link) for link in self._chain
            }:
                raise ValueError(
                    f"{path!r} is already a link of the current checkpoint "
                    "chain; each incremental snapshot needs a fresh path"
                )
            delta = self._delta_state_locked(seq=self._seq + 1)
            write_snapshot(delta, path)
            self._clear_dirty_locked()
            self._dropped_since_checkpoint.clear()
            self._seq += 1
            self._chain.append(path)

    @staticmethod
    def _resolve_snapshot_file(path: str) -> str:
        return os.path.abspath(_npz_path(path))

    def checkpoint_chain(self) -> List[str]:
        """The snapshot paths a restore (or :meth:`failover`) would replay."""
        with self._lock:
            return list(self._chain)

    def compact(self, path: Optional[str] = None) -> str:
        """Fold the recorded checkpoint chain into one full snapshot
        (see :meth:`ShardedForecaster.compact` — identical semantics)."""
        with self._lock:
            if not self._chain:
                raise RuntimeError("no checkpoint chain to compact: call save() first")
            output = compact_chain(self._chain, output=path)
            self._chain = [output]
            return output

    @classmethod
    def from_state(
        cls,
        spec: ServiceSpec,
        state: dict,
        request_timeout: float = 120.0,
        heartbeat_timeout: float = 5.0,
        retry_attempts: int = 3,
        retry_base: float = 0.05,
        retry_cap: float = 2.0,
        breaker_threshold: int = 3,
        breaker_reset: float = 5.0,
    ) -> "ProcessCoordinator":
        """Rebuild a cluster from :meth:`to_state` output (either backend's).

        Workers spawn with fresh replicas from ``spec``, then each
        restores its shard's streaming state over the wire; the census
        seeds from every worker's restore acknowledgement.
        """
        if not state["shards"]:
            raise ValueError("cluster state holds no shards")
        validate_cluster_timeouts(request_timeout, heartbeat_timeout)
        cluster = cls.__new__(cls)
        cluster.spec = spec
        cluster.normalization = str(state["normalization"])
        first_shard = next(iter(state["shards"].values()))
        cluster.window_capacity = int(first_shard["store"]["capacity"])
        cluster.request_timeout = request_timeout
        cluster.heartbeat_timeout = heartbeat_timeout
        cluster.retry_attempts = retry_attempts
        cluster.retry_base = retry_base
        cluster.retry_cap = retry_cap
        cluster.breaker_threshold = breaker_threshold
        cluster.breaker_reset = breaker_reset
        cluster._init_runtime()
        cluster.ring = HashRing(vnodes=int(state["vnodes"]))
        cluster.rebalances = int(state["rebalances"])
        cluster.tenants_migrated = int(state["tenants_migrated"])
        cluster._retired_service = ServiceStats(**state["retired"]["service"])
        cluster._retired_store = StoreStats(**state["retired"]["store"])
        cluster._retired_streaming = StreamingStats(**state["retired"]["streaming"])
        chain_id = state.get("chain_id")
        cluster._chain_id = None if chain_id is None else str(chain_id)
        cluster._seq = int(state.get("seq", 0))
        shard_ids = list(state["shards"])
        cluster._shards = cluster._spawn_and_init(shard_ids, warmup=False)
        try:
            for shard_id in shard_ids:
                cluster.ring.add(shard_id)
                cluster._shards[shard_id].send("restore", state=state["shards"][shard_id])
            for shard_id in shard_ids:
                census = cluster._shards[shard_id].receive()["census"]
                for tenant, entry in census.items():
                    cluster._census[tenant] = (
                        int(entry["observed"]),
                        int(entry["generation"]),
                    )
        except BaseException:
            for shard in cluster._shards.values():
                shard.close(graceful=False)
            raise
        return cluster

    @classmethod
    def load(
        cls, spec: ServiceSpec, path: str, **kwargs
    ) -> "ProcessCoordinator":
        """Restore a :meth:`save` archive; workers come back pre-warmed."""
        cluster = cls.from_state(spec, read_snapshot(path), **kwargs)
        if cluster._chain_id is not None:
            cluster._chain = [path]
        cluster.warmup()
        return cluster

    @classmethod
    def load_chain(
        cls, spec: ServiceSpec, paths: Sequence[str], **kwargs
    ) -> "ProcessCoordinator":
        """Restore a full + incremental snapshot chain, deterministically."""
        paths = list(paths)
        cluster = cls.from_state(spec, resolve_chain(paths), **kwargs)
        if cluster._chain_id is not None:
            cluster._chain = paths
        cluster.warmup()
        return cluster


# ---------------------------------------------------------------------- #
_UNSET = object()


def build_cluster(
    spec: ServiceSpec,
    n_shards=_UNSET,
    backend=_UNSET,
    normalization=_UNSET,
    window_capacity=_UNSET,
    vnodes=_UNSET,
    executor=None,
    cluster: Optional[ClusterSpec] = None,
    **kwargs,
):
    """One replica recipe, two deployments.

    ``backend="thread"`` builds the in-process
    :class:`~repro.cluster.sharded.ShardedForecaster` (the spec is its
    service factory; pass ``executor`` to parallelise fan-outs across
    threads); ``backend="process"`` builds a :class:`ProcessCoordinator`
    with one OS process per shard.  Both expose the same API and produce
    bit-identical forecasts, so the choice is purely operational:
    threads for cheap shards sharing one heap, processes to escape the
    GIL and survive real crashes.

    Passing a validated :class:`~repro.cluster.spec.ClusterSpec` as
    ``cluster`` takes the deployment shape — shard count, backend,
    timeouts and the process backend's retry/breaker knobs — from one
    object instead of loose keyword arguments (which must not be mixed
    in alongside it).
    """
    explicit = {
        name
        for name, value in (
            ("n_shards", n_shards),
            ("backend", backend),
            ("normalization", normalization),
            ("window_capacity", window_capacity),
            ("vnodes", vnodes),
        )
        if value is not _UNSET
    }
    if cluster is not None:
        if kwargs or explicit:
            raise ValueError(
                "pass deployment knobs either through ClusterSpec or as "
                f"keywords, not both: unexpected {sorted(kwargs) + sorted(explicit)}"
            )
        n_shards = cluster.n_shards
        backend = cluster.backend
        normalization = cluster.normalization
        window_capacity = cluster.window_capacity
        vnodes = cluster.vnodes
        if backend == "process":
            kwargs = {
                "request_timeout": cluster.request_timeout,
                "heartbeat_timeout": cluster.heartbeat_timeout,
                "retry_attempts": cluster.retry_attempts,
                "retry_base": cluster.retry_base,
                "retry_cap": cluster.retry_cap,
                "breaker_threshold": cluster.breaker_threshold,
                "breaker_reset": cluster.breaker_reset,
            }
    else:
        n_shards = 2 if n_shards is _UNSET else n_shards
        backend = "thread" if backend is _UNSET else backend
        normalization = "none" if normalization is _UNSET else normalization
        window_capacity = None if window_capacity is _UNSET else window_capacity
        vnodes = 64 if vnodes is _UNSET else vnodes
    if backend == "thread":
        return ShardedForecaster(
            spec,
            n_shards=n_shards,
            normalization=normalization,
            window_capacity=window_capacity,
            vnodes=vnodes,
            executor=executor,
        )
    if backend == "process":
        if executor is not None:
            raise ValueError(
                "the process backend manages its own workers; "
                "executor applies to the thread backend only"
            )
        return ProcessCoordinator(
            spec,
            n_shards=n_shards,
            normalization=normalization,
            window_capacity=window_capacity,
            vnodes=vnodes,
            **kwargs,
        )
    raise ValueError(f"unknown backend {backend!r}; use 'thread' or 'process'")
