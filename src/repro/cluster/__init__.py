"""``repro.cluster`` — sharded, persistent multi-replica serving.

The streaming subsystem (:mod:`repro.streaming`) serves many tenants
through *one* model replica in *one* process; this subsystem is the step
past both limits:

* :class:`HashRing` — consistent hashing with virtual nodes: a
  deterministic (MD5-based, process-independent) tenant → shard map where
  changing the shard count reassigns only ≈ ``1/N`` of tenants;
* :class:`ShardedForecaster` — N independent streaming stacks (one
  :class:`~repro.serving.service.ForecastService` replica each) behind a
  single ``ingest`` / ``forecast`` / ``forecast_all`` façade, with live
  :meth:`~ShardedForecaster.add_shard` / :meth:`~ShardedForecaster.remove_shard`
  rebalancing that migrates exactly the tenants whose ring assignment
  changed, and cluster-wide stats via ``ServiceStats.merge``;
* :mod:`~repro.cluster.snapshot` — a pickle-free nested-state ↔ ``.npz``
  codec over the new ``to_state`` / ``from_state`` methods on
  :class:`~repro.streaming.store.RingBuffer`,
  :class:`~repro.streaming.store.SeriesStore`,
  :class:`~repro.data.incremental.RollingScaler` and
  :class:`~repro.streaming.forecaster.StreamingForecaster`, so a serving
  process (or a whole cluster) restarts without losing tenant state;
* :mod:`~repro.cluster.parity` — the correctness harness: sharded,
  rebalanced and snapshot/restored deployments must forecast
  **bit-identically** to an uninterrupted single forecaster.

Built on :mod:`repro.runtime` (PR 4), the cluster also runs *parallel*:
routed traffic shares a reader/writer topology lock with per-shard locks
underneath, fan-outs drive S shards on S cores through a pluggable
executor, :meth:`~ShardedForecaster.save_incremental` writes O(churn)
delta checkpoints chained under :func:`resolve_chain`, and
:meth:`~ShardedForecaster.failover` re-routes a dead shard's ring arc to
the survivors, restoring its tenants from the last checkpoint chain with
an honest :class:`FailoverReport` of any data loss.

PR 9 takes shards out of the coordinator's process entirely:
:class:`ProcessCoordinator` (via :func:`build_cluster` with
``backend="process"``) runs each shard as a :class:`ProcessShard` — a
worker OS process speaking the length-prefixed pickle-free wire codec
(:mod:`repro.wire`) over a socketpair — so S shards use S cores with no
GIL in the way, worker death is a detectable event (``kill -9`` drills
in ``tests/cluster/test_crash_drill.py``), and
:meth:`ProcessCoordinator.failover` restores from the same checkpoint
chains bit-identically.  :class:`~repro.cluster.spec.ServiceSpec` is the
replica recipe both backends share, and
:func:`~repro.cluster.snapshot.compact_chain` folds a long checkpoint
chain back into one full snapshot.

See ``examples/cluster_quickstart.py`` and
``examples/cluster_process_quickstart.py`` for tours and
``benchmarks/test_cluster_scaling.py`` for throughput-vs-shards,
backend-vs-backend and rebalance-cost measurements.
"""

from .parity import compare_cluster_to_unsharded, replay_cluster
from .process import (
    PendingForecast,
    ProcessCoordinator,
    ProcessShard,
    WorkerDied,
    WorkerStalled,
    build_cluster,
)
from .ring import HashRing, stable_hash
from .sharded import FailoverReport, ShardedForecaster
from .snapshot import (
    compact_chain,
    decode_state,
    encode_state,
    load_forecaster,
    read_snapshot,
    resolve_chain,
    save_forecaster,
    write_snapshot,
)
from .spec import ClusterSpec, ServiceSpec, validate_cluster_timeouts

__all__ = [
    "HashRing",
    "stable_hash",
    "ShardedForecaster",
    "FailoverReport",
    "ServiceSpec",
    "ClusterSpec",
    "validate_cluster_timeouts",
    "ProcessCoordinator",
    "ProcessShard",
    "PendingForecast",
    "WorkerDied",
    "WorkerStalled",
    "build_cluster",
    "encode_state",
    "decode_state",
    "write_snapshot",
    "read_snapshot",
    "resolve_chain",
    "compact_chain",
    "save_forecaster",
    "load_forecaster",
    "replay_cluster",
    "compare_cluster_to_unsharded",
]
