"""Persistence for streaming state: nested state dicts ↔ ``.npz`` archives.

``to_state`` on the streaming classes returns plain nested Python dicts —
the natural shape for in-process shard migration, but not directly
writable as an ``.npz`` (whose namespace is a flat string → array map, and
whose member names would collide with tenant keys containing ``/``).  This
module provides the lossless bridge:

* :func:`encode_state` / :func:`decode_state` — flatten any nested state
  (dicts, lists, arrays, scalars, ``datetime64`` timestamps, ``None``)
  into numbered array entries plus one JSON manifest describing the
  structure, and back.  Tenant keys live inside the JSON manifest, so any
  string key round-trips; nothing is pickled.  The codec itself lives in
  :mod:`repro.wire` (it doubles as the process-shard message transport)
  and is re-exported here, where the ``.npz`` archive format wraps it.
* :func:`write_snapshot` / :func:`read_snapshot` — the same, through a
  compressed archive on disk via :mod:`repro.nn.serialization`.  Writes
  are **crash-atomic**: the archive lands in a temp file in the target
  directory and is :func:`os.replace`'d into place, so a crash
  mid-checkpoint leaves either the previous snapshot or the new one —
  never a truncated ``.npz``.
* :func:`resolve_chain` — replay an incremental checkpoint chain (one
  full snapshot plus zero or more delta snapshots written by
  ``ShardedForecaster.save_incremental``) into the equivalent full state
  dict, validating chain identity and sequence linkage.  Deltas carry
  per-tenant payloads only for tenants that churned, plus each shard's
  full tenant *order* — so a resolved chain reproduces tenant placement,
  iteration order and contents exactly.
* :func:`save_forecaster` / :func:`load_forecaster` — one-call
  persistence for a :class:`~repro.streaming.forecaster.StreamingForecaster`:
  a restored process keeps forecasting bit-identically to one that never
  restarted.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Sequence

import numpy as np

from ..nn.serialization import load_state, save_state
from ..serving.service import ForecastService
from ..streaming.forecaster import StreamingForecaster
from ..wire import decode_state, encode_state

__all__ = [
    "encode_state",
    "decode_state",
    "write_snapshot",
    "read_snapshot",
    "resolve_chain",
    "resolve_tenant_payloads",
    "compact_chain",
    "save_forecaster",
    "load_forecaster",
]

_MANIFEST_KEY = "__manifest__"

# The process umask, probed once at import (os.umask is the only portable
# read, and it is a process-wide mutation — doing the probe per write would
# race every other thread creating files mid-probe).
_UMASK = os.umask(0)
os.umask(_UMASK)


def _npz_path(path: str) -> str:
    """The archive file a snapshot path maps to (np.savez suffixes ``.npz``).

    The one suffix rule shared by the writer below and the cluster's
    duplicate-chain-link guard — they must agree on which file a path
    produces, or the guard stops protecting the file actually written.
    """
    return path if path.endswith(".npz") else path + ".npz"


def write_snapshot(state, path: str) -> None:
    """Serialise a nested state tree to a compressed ``.npz`` snapshot.

    Crash-atomic: the archive is written to a temp file *in the target
    directory* (same filesystem, so the final rename cannot fail with
    ``EXDEV``) and moved into place with :func:`os.replace`.  A crash or
    disk-full mid-write leaves the previous snapshot untouched instead of
    a truncated archive that ``read_snapshot`` would choke on.
    """
    manifest, arrays = encode_state(state)
    if _MANIFEST_KEY in arrays:  # pragma: no cover - numbered keys can't collide
        raise ValueError(f"array map may not use the reserved key {_MANIFEST_KEY!r}")
    payload = dict(arrays)
    payload[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    # Mirror np.savez's suffix behaviour up front so the tempfile already
    # carries the final ``.npz`` suffix (savez would append one otherwise,
    # and the rename below must target the exact written file).
    final = _npz_path(path)
    directory = os.path.dirname(os.path.abspath(final))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(final) + ".", suffix=".tmp.npz"
    )
    os.close(fd)
    # mkstemp creates 0600 files; the rename below would silently tighten
    # the published snapshot's permissions vs a plain open() (breaking e.g.
    # group-readable backup jobs), so restore the umask-derived mode.
    os.chmod(tmp_path, 0o666 & ~_UMASK)
    try:
        save_state(payload, tmp_path, compressed=True)
        os.replace(tmp_path, final)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def read_snapshot(path: str):
    """Load a snapshot written by :func:`write_snapshot`.

    ``np.savez`` appends ``.npz`` to extension-less paths on write, so the
    same courtesy applies on read — ``write_snapshot(x, p)`` followed by
    ``read_snapshot(p)`` round-trips for any ``p``.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    payload = load_state(path)
    if _MANIFEST_KEY not in payload:
        raise ValueError(f"{path!r} is not a snapshot archive (missing manifest)")
    manifest = json.loads(bytes(payload.pop(_MANIFEST_KEY)).decode("utf-8"))
    return decode_state(manifest, payload)


# ---------------------------------------------------------------------- #
# Incremental checkpoint chains.
# ---------------------------------------------------------------------- #
def resolve_chain(paths: Sequence[str]):
    """Replay ``[full, delta, delta, ...]`` snapshots into one full state.

    The first path must be a full cluster snapshot
    (``ShardedForecaster.save``); each subsequent path a delta
    (``save_incremental``) whose ``chain_id`` matches the base and whose
    ``parent_seq`` equals the sequence number of the state resolved so far
    — a delta applied out of order, twice, or against a foreign chain is a
    hard error, never a silently wrong cluster.

    Returns a state dict interchangeable with ``ShardedForecaster.to_state``
    output (feed it to ``from_state`` to revive the cluster).
    """
    paths = list(paths)
    if not paths:
        raise ValueError("checkpoint chain is empty")
    state = read_snapshot(paths[0])
    if state.get("kind", "full") != "full":
        raise ValueError(
            f"chain base {paths[0]!r} is a {state.get('kind')!r} snapshot; "
            "the first link must be a full save()"
        )
    for path in paths[1:]:
        delta = read_snapshot(path)
        if delta.get("kind") != "delta":
            raise ValueError(
                f"chain link {path!r} is not a delta snapshot "
                f"(kind={delta.get('kind')!r})"
            )
        if delta.get("chain_id") != state.get("chain_id"):
            raise ValueError(
                f"delta {path!r} belongs to chain {delta.get('chain_id')!r}, "
                f"not this chain {state.get('chain_id')!r}"
            )
        if int(delta.get("parent_seq", -1)) != int(state.get("seq", 0)):
            raise ValueError(
                f"delta {path!r} (parent_seq {delta.get('parent_seq')!r}) does "
                f"not follow checkpoint seq {state.get('seq')!r} — chain out of "
                "order or missing a link"
            )
        state = _apply_delta(state, delta)
    return state


def resolve_tenant_payloads(state: dict) -> Dict[str, dict]:
    """Flatten a (resolved) cluster state into per-tenant codec payloads.

    Returns ``tenant -> {"series": {...}, "scaler": ...}`` in exactly the
    shape ``StreamingForecaster.export_tenant`` produces, wherever the
    tenant lives — the one extraction both the chain replay (clean-tenant
    lookup) and ``ShardedForecaster.failover`` (checkpoint restore) share,
    so a new per-tenant field only has to be threaded through here.
    """
    payloads: Dict[str, dict] = {}
    for shard_state in state["shards"].values():
        store = shard_state["store"]
        generations = store.get("generations", {})
        for tenant, buffer_state in store["buffers"].items():
            payloads[tenant] = {
                "series": {
                    "buffer": buffer_state,
                    "last_timestamp": store["last_timestamps"].get(tenant),
                    "generation": int(generations.get(tenant, 0)),
                },
                "scaler": shard_state["scalers"].get(tenant),
            }
    return payloads


def compact_chain(paths: Sequence[str], output: str = None, remove: bool = True) -> str:
    """Fold ``[full, d1 … dn]`` into a fresh full snapshot and GC the links.

    Crash drills and long-running deployments grow chains one delta per
    checkpoint, and every restore/failover replays the whole chain —
    compaction bounds that replay cost.  The chain is resolved through
    :func:`resolve_chain` (so all identity/sequence validation applies),
    the resolved state is written as a single full snapshot, and the
    superseded links are deleted.

    ``output`` defaults to the chain base, which is overwritten in place
    (crash-atomically — :func:`write_snapshot` goes through a temp file,
    so a crash mid-compaction leaves the original chain intact and fully
    replayable).  The compacted snapshot keeps the chain's ``chain_id``
    and tip ``seq``, so a live cluster can keep appending deltas to it:
    ``save_incremental`` after ``compact`` chains onto the compacted base
    exactly as it would have onto the full original.

    Returns the output path (the new single-link chain).
    """
    paths = list(paths)
    state = resolve_chain(paths)
    if output is None:
        output = paths[0]
    write_snapshot(state, output)
    if remove:
        kept = os.path.abspath(_npz_path(output))
        for link in paths:
            file = os.path.abspath(_npz_path(link))
            if file != kept:
                os.remove(file)
    return output


def _apply_delta(state: dict, delta: dict) -> dict:
    """One chain step: rebuild every shard's state from base + churn.

    Deltas record, per shard, the full tenant *order* (cheap — names only)
    and per-tenant payloads for *dirty* tenants only.  A clean tenant's
    payload is looked up in the state resolved so far — wherever it lived
    (migrations move tenants between shards without touching their data).
    Tenants absent from every order list were dropped.  Rebuilding the
    dicts in recorded order keeps ``forecast_all`` batch composition (and
    any later re-snapshot) identical to the live cluster's.
    """
    lookup = resolve_tenant_payloads(state)
    geometry = delta["store"]
    shards: Dict[str, dict] = {}
    for shard_id, entry in delta["shards"].items():
        buffers: Dict[str, dict] = {}
        timestamps: Dict[str, object] = {}
        scalers: Dict[str, object] = {}
        generations: Dict[str, int] = {}
        dirty = entry["dirty"]
        for tenant in entry["order"]:
            if tenant in dirty:
                export = dirty[tenant]
            elif tenant in lookup:
                export = lookup[tenant]
            else:
                raise ValueError(
                    f"chain corruption: shard {shard_id!r} lists clean tenant "
                    f"{tenant!r} but no earlier checkpoint holds its state"
                )
            buffers[tenant] = export["series"]["buffer"]
            timestamp = export["series"].get("last_timestamp")
            if timestamp is not None:
                timestamps[tenant] = timestamp
            if export.get("scaler") is not None:
                scalers[tenant] = export["scaler"]
            generations[tenant] = int(export["series"].get("generation", 0))
        shards[shard_id] = {
            "normalization": delta["normalization"],
            "store": {
                "capacity": int(geometry["capacity"]),
                "n_channels": int(geometry["n_channels"]),
                "dtype": str(geometry["dtype"]),
                "buffers": buffers,
                "last_timestamps": timestamps,
                "generations": generations,
                "stats": dict(entry["store_stats"]),
            },
            "scalers": scalers,
            "stats": dict(entry["stats"]),
        }
    return {
        "kind": "full",
        "chain_id": delta["chain_id"],
        "seq": int(delta["seq"]),
        "vnodes": int(delta["vnodes"]),
        "normalization": delta["normalization"],
        "rebalances": int(delta["rebalances"]),
        "tenants_migrated": int(delta["tenants_migrated"]),
        "retired": delta["retired"],
        "shards": shards,
    }


# ---------------------------------------------------------------------- #
def save_forecaster(forecaster: StreamingForecaster, path: str) -> None:
    """Snapshot a streaming forecaster's full per-tenant state to disk."""
    write_snapshot(forecaster.to_state(), path)


def load_forecaster(service: ForecastService, path: str) -> StreamingForecaster:
    """Restore a :func:`save_forecaster` snapshot around a live service.

    The service (model replica) is supplied by the caller — weights have
    their own persistence path — and must match the geometry the snapshot
    was taken under; :class:`StreamingForecaster` validates on construction.
    """
    return StreamingForecaster.from_state(service, read_snapshot(path))


