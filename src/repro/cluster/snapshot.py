"""Persistence for streaming state: nested state dicts ↔ ``.npz`` archives.

``to_state`` on the streaming classes returns plain nested Python dicts —
the natural shape for in-process shard migration, but not directly
writable as an ``.npz`` (whose namespace is a flat string → array map, and
whose member names would collide with tenant keys containing ``/``).  This
module provides the lossless bridge:

* :func:`encode_state` / :func:`decode_state` — flatten any nested state
  (dicts, lists, arrays, scalars, ``datetime64`` timestamps, ``None``)
  into numbered array entries plus one JSON manifest describing the
  structure, and back.  Tenant keys live inside the JSON manifest, so any
  string key round-trips; nothing is pickled.
* :func:`write_snapshot` / :func:`read_snapshot` — the same, through a
  compressed archive on disk via :mod:`repro.nn.serialization`.
* :func:`save_forecaster` / :func:`load_forecaster` — one-call
  persistence for a :class:`~repro.streaming.forecaster.StreamingForecaster`:
  a restored process keeps forecasting bit-identically to one that never
  restarted.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Dict, Tuple

import numpy as np

from ..nn.serialization import load_state, save_state
from ..serving.service import ForecastService
from ..streaming.forecaster import StreamingForecaster

__all__ = [
    "encode_state",
    "decode_state",
    "write_snapshot",
    "read_snapshot",
    "save_forecaster",
    "load_forecaster",
]

_MANIFEST_KEY = "__manifest__"
#: formats understood by the codec; bumped on incompatible layout changes
_FORMAT_VERSION = 1


def encode_state(state) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Flatten a nested state tree into (JSON manifest, flat array map).

    Arrays (and array-like scalars such as ``np.datetime64`` timestamps)
    are pulled out into numbered entries; structure, strings, numbers,
    booleans and ``None`` live in the manifest.  Only npz-native dtypes
    are accepted — an object array would silently require pickling, so it
    raises instead.
    """
    arrays: Dict[str, np.ndarray] = {}
    tree = _encode(state, arrays)
    manifest = {"version": _FORMAT_VERSION, "tree": tree}
    return manifest, arrays


def decode_state(manifest: dict, arrays: Dict[str, np.ndarray]):
    """Invert :func:`encode_state`."""
    version = manifest.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot format version {version!r}")
    return _decode(manifest["tree"], arrays)


def write_snapshot(state, path: str) -> None:
    """Serialise a nested state tree to a compressed ``.npz`` snapshot."""
    manifest, arrays = encode_state(state)
    if _MANIFEST_KEY in arrays:  # pragma: no cover - numbered keys can't collide
        raise ValueError(f"array map may not use the reserved key {_MANIFEST_KEY!r}")
    payload = dict(arrays)
    payload[_MANIFEST_KEY] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    save_state(payload, path, compressed=True)


def read_snapshot(path: str):
    """Load a snapshot written by :func:`write_snapshot`.

    ``np.savez`` appends ``.npz`` to extension-less paths on write, so the
    same courtesy applies on read — ``write_snapshot(x, p)`` followed by
    ``read_snapshot(p)`` round-trips for any ``p``.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    payload = load_state(path)
    if _MANIFEST_KEY not in payload:
        raise ValueError(f"{path!r} is not a snapshot archive (missing manifest)")
    manifest = json.loads(bytes(payload.pop(_MANIFEST_KEY)).decode("utf-8"))
    return decode_state(manifest, payload)


# ---------------------------------------------------------------------- #
def save_forecaster(forecaster: StreamingForecaster, path: str) -> None:
    """Snapshot a streaming forecaster's full per-tenant state to disk."""
    write_snapshot(forecaster.to_state(), path)


def load_forecaster(service: ForecastService, path: str) -> StreamingForecaster:
    """Restore a :func:`save_forecaster` snapshot around a live service.

    The service (model replica) is supplied by the caller — weights have
    their own persistence path — and must match the geometry the snapshot
    was taken under; :class:`StreamingForecaster` validates on construction.
    """
    return StreamingForecaster.from_state(service, read_snapshot(path))


# ---------------------------------------------------------------------- #
def _encode(value, arrays: Dict[str, np.ndarray]):
    if value is None:
        return {"t": "none"}
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, (int, float, str)):
        return {"t": type(value).__name__, "v": value}
    # Timestamp watermarks: ingest accepts any orderable timestamp, so the
    # codec must at least cover the stdlib datetime types alongside
    # np.datetime64 (handled below as a numpy scalar).
    if isinstance(value, datetime.datetime):
        return {"t": "datetime", "v": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"t": "date", "v": value.isoformat()}
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise TypeError(f"state dict keys must be strings, got {key!r}")
        return {"t": "dict", "v": {k: _encode(v, arrays) for k, v in value.items()}}
    if isinstance(value, (list, tuple)):
        return {"t": "list", "v": [_encode(item, arrays) for item in value]}
    if isinstance(value, np.generic) or isinstance(value, np.ndarray):
        array = np.asarray(value)
        if array.dtype == object:
            raise TypeError(
                f"cannot snapshot object-dtype value {value!r} without pickling"
            )
        name = f"a{len(arrays)}"
        arrays[name] = array
        return {"t": "scalar" if isinstance(value, np.generic) else "array", "v": name}
    raise TypeError(
        f"cannot snapshot value of type {type(value).__name__}: {value!r} "
        "(supported: dict/list/str/int/float/bool/None and numpy arrays/scalars)"
    )


def _decode(node, arrays: Dict[str, np.ndarray]):
    kind = node["t"]
    if kind == "none":
        return None
    if kind in ("bool", "int", "float", "str"):
        return node["v"]
    if kind == "datetime":
        return datetime.datetime.fromisoformat(node["v"])
    if kind == "date":
        return datetime.date.fromisoformat(node["v"])
    if kind == "dict":
        return {key: _decode(child, arrays) for key, child in node["v"].items()}
    if kind == "list":
        return [_decode(child, arrays) for child in node["v"]]
    if kind == "array":
        return arrays[node["v"]]
    if kind == "scalar":
        return arrays[node["v"]][()]
    raise ValueError(f"unknown snapshot node type {kind!r}")
