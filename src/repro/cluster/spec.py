"""Declarative replica recipes: build identical model replicas anywhere.

Thread-backed shards take an arbitrary ``service_factory`` closure — fine
inside one process, but a closure cannot cross a process boundary without
pickling it, which the transport layer bans.  :class:`ServiceSpec` is the
declarative replacement: *data* describing how to build a replica (model
name, :class:`~repro.config.ModelConfig`, batching knobs, optional weights
path), codec-serialisable, with one :meth:`build` that produces the
:class:`~repro.serving.service.ForecastService`.

Replica parity across processes falls out of the registry's determinism:
``create_model`` seeds its RNG from ``config.seed`` when none is given, so
every process building the same spec holds bit-identical weights — the
property the cluster's bit-parity oracle rests on.  Training pipelines
pass ``weights_path`` to serve checkpointed weights instead.

A spec is also a valid ``service_factory`` for the thread backend (it is
callable), so one recipe drives both deployments.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from ..baselines.registry import create_model
from ..config import ModelConfig
from ..nn.serialization import load_module
from ..serving.service import ForecastService

__all__ = ["ServiceSpec"]


@dataclass(frozen=True)
class ServiceSpec:
    """Everything needed to construct one model replica, as plain data."""

    model: str = "LiPFormer"
    config: ModelConfig = field(default_factory=ModelConfig)
    max_batch_size: int = 32
    pad_mode: str = "edge"
    compiled: bool = True
    weights_path: Optional[str] = None

    def build(self) -> ForecastService:
        """Construct the replica this spec describes.

        Weights are deterministic in ``config.seed`` unless a
        ``weights_path`` overrides them, so two processes building the
        same spec serve bit-identical forecasts.
        """
        model = create_model(self.model, self.config)
        if self.weights_path is not None:
            load_module(model, self.weights_path)
        return ForecastService(
            model,
            max_batch_size=self.max_batch_size,
            pad_mode=self.pad_mode,
            compiled=self.compiled,
        )

    # Thread-backed shards accept any zero-arg service factory; a spec is
    # one, so ``ShardedForecaster(spec, ...)`` works unchanged.
    __call__ = build

    def to_state(self) -> dict:
        """Codec-compatible description (for the wire / snapshots)."""
        return {
            "model": self.model,
            "config": asdict(self.config),
            "max_batch_size": int(self.max_batch_size),
            "pad_mode": self.pad_mode,
            "compiled": bool(self.compiled),
            "weights_path": self.weights_path,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ServiceSpec":
        """Invert :meth:`to_state`."""
        config = dict(state["config"])
        # The codec renders tuples as lists; the config field is a tuple.
        config["covariate_categorical_cardinalities"] = tuple(
            int(c) for c in config.get("covariate_categorical_cardinalities", ())
        )
        return cls(
            model=str(state["model"]),
            config=ModelConfig(**{k: v for k, v in config.items()}),
            max_batch_size=int(state["max_batch_size"]),
            pad_mode=str(state["pad_mode"]),
            compiled=bool(state["compiled"]),
            weights_path=state.get("weights_path"),
        )
