"""Declarative replica recipes: build identical model replicas anywhere.

Thread-backed shards take an arbitrary ``service_factory`` closure — fine
inside one process, but a closure cannot cross a process boundary without
pickling it, which the transport layer bans.  :class:`ServiceSpec` is the
declarative replacement: *data* describing how to build a replica (model
name, :class:`~repro.config.ModelConfig`, batching knobs, optional weights
path), codec-serialisable, with one :meth:`build` that produces the
:class:`~repro.serving.service.ForecastService`.

Replica parity across processes falls out of the registry's determinism:
``create_model`` seeds its RNG from ``config.seed`` when none is given, so
every process building the same spec holds bit-identical weights — the
property the cluster's bit-parity oracle rests on.  Training pipelines
pass ``weights_path`` to serve checkpointed weights instead.

A spec is also a valid ``service_factory`` for the thread backend (it is
callable), so one recipe drives both deployments.

:class:`ClusterSpec` is the operational counterpart: where
:class:`ServiceSpec` describes one replica, :class:`ClusterSpec`
describes the deployment around it — shard count, backend, timeouts and
the resilience knobs (retry/backoff, circuit breaker).  Passing one to
:func:`~repro.cluster.process.build_cluster` replaces a pile of loose
keyword arguments with a single validated object.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from ..baselines.registry import create_model
from ..config import ModelConfig
from ..nn.serialization import load_module
from ..serving.admission import AdmissionPolicy
from ..serving.service import ForecastService

__all__ = ["ServiceSpec", "ClusterSpec", "validate_cluster_timeouts"]


def validate_cluster_timeouts(request_timeout: float, heartbeat_timeout: float) -> None:
    """Shared timeout sanity: both positive, heartbeat strictly tighter.

    A heartbeat budget at or above the request budget would make
    ``detect_failures`` the *slowest* way to notice a wedged worker —
    the opposite of its job.
    """
    if request_timeout <= 0:
        raise ValueError(f"request_timeout must be > 0, got {request_timeout}")
    if heartbeat_timeout <= 0:
        raise ValueError(f"heartbeat_timeout must be > 0, got {heartbeat_timeout}")
    if heartbeat_timeout >= request_timeout:
        raise ValueError(
            f"heartbeat_timeout ({heartbeat_timeout}) must be smaller than "
            f"request_timeout ({request_timeout}): the liveness probe must "
            "fail faster than a full request"
        )


@dataclass(frozen=True)
class ServiceSpec:
    """Everything needed to construct one model replica, as plain data."""

    model: str = "LiPFormer"
    config: ModelConfig = field(default_factory=ModelConfig)
    max_batch_size: int = 32
    pad_mode: str = "edge"
    compiled: bool = True
    weights_path: Optional[str] = None
    #: admission knobs — forwarded into each replica's
    #: :class:`~repro.serving.admission.AdmissionPolicy`, so a worker
    #: process sheds over-capacity / expired work exactly like a local
    #: service would.  The defaults keep admission inert.
    queue_limit: Optional[int] = None
    default_timeout: Optional[float] = None

    def build(self) -> ForecastService:
        """Construct the replica this spec describes.

        Weights are deterministic in ``config.seed`` unless a
        ``weights_path`` overrides them, so two processes building the
        same spec serve bit-identical forecasts.
        """
        model = create_model(self.model, self.config)
        if self.weights_path is not None:
            load_module(model, self.weights_path)
        admission = None
        if self.queue_limit is not None or self.default_timeout is not None:
            admission = AdmissionPolicy(
                queue_limit=self.queue_limit, default_timeout=self.default_timeout
            )
        return ForecastService(
            model,
            max_batch_size=self.max_batch_size,
            pad_mode=self.pad_mode,
            compiled=self.compiled,
            admission=admission,
        )

    # Thread-backed shards accept any zero-arg service factory; a spec is
    # one, so ``ShardedForecaster(spec, ...)`` works unchanged.
    __call__ = build

    def to_state(self) -> dict:
        """Codec-compatible description (for the wire / snapshots)."""
        return {
            "model": self.model,
            "config": asdict(self.config),
            "max_batch_size": int(self.max_batch_size),
            "pad_mode": self.pad_mode,
            "compiled": bool(self.compiled),
            "weights_path": self.weights_path,
            "queue_limit": None if self.queue_limit is None else int(self.queue_limit),
            "default_timeout": (
                None if self.default_timeout is None else float(self.default_timeout)
            ),
        }

    @classmethod
    def from_state(cls, state: dict) -> "ServiceSpec":
        """Invert :meth:`to_state`."""
        config = dict(state["config"])
        # The codec renders tuples as lists; the config field is a tuple.
        config["covariate_categorical_cardinalities"] = tuple(
            int(c) for c in config.get("covariate_categorical_cardinalities", ())
        )
        queue_limit = state.get("queue_limit")
        default_timeout = state.get("default_timeout")
        return cls(
            model=str(state["model"]),
            config=ModelConfig(**{k: v for k, v in config.items()}),
            max_batch_size=int(state["max_batch_size"]),
            pad_mode=str(state["pad_mode"]),
            compiled=bool(state["compiled"]),
            weights_path=state.get("weights_path"),
            queue_limit=None if queue_limit is None else int(queue_limit),
            default_timeout=None if default_timeout is None else float(default_timeout),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Operational shape of a deployment: shards, timeouts, resilience.

    Validated at construction so a misconfigured cluster fails before any
    worker spawns:

    * ``request_timeout`` / ``heartbeat_timeout`` — both positive, with
      the heartbeat strictly tighter than a full request
      (:func:`validate_cluster_timeouts`);
    * ``retry_*`` — the :class:`~repro.runtime.CircuitBreaker` /
      :class:`~repro.runtime.RetryPolicy` knobs each
      :class:`~repro.cluster.process.ProcessShard` is built with.

    Thread-backend deployments ignore the process-only knobs (timeouts,
    retries, breakers) — there is no process gap to protect.
    """

    n_shards: int = 2
    backend: str = "thread"
    normalization: str = "none"
    window_capacity: Optional[int] = None
    vnodes: int = 64
    request_timeout: float = 120.0
    heartbeat_timeout: float = 5.0
    retry_attempts: int = 3
    retry_base: float = 0.05
    retry_cap: float = 2.0
    breaker_threshold: int = 3
    breaker_reset: float = 5.0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {self.n_shards}")
        if self.backend not in ("thread", "process"):
            raise ValueError(
                f"unknown backend {self.backend!r}; use 'thread' or 'process'"
            )
        validate_cluster_timeouts(self.request_timeout, self.heartbeat_timeout)
        if self.retry_attempts < 1:
            raise ValueError(f"retry_attempts must be >= 1, got {self.retry_attempts}")
        if self.retry_base <= 0 or self.retry_cap < self.retry_base:
            raise ValueError(
                f"need 0 < retry_base <= retry_cap, got "
                f"base={self.retry_base} cap={self.retry_cap}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset <= 0:
            raise ValueError(f"breaker_reset must be > 0, got {self.breaker_reset}")
