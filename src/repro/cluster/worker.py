"""Process-shard worker: one full streaming stack behind a socket.

``python -m repro.cluster.worker <fd>`` is the child half of
:class:`~repro.cluster.process.ProcessShard`: it adopts the inherited
socketpair fd, builds a complete streaming stack (model replica →
:class:`~repro.serving.service.ForecastService` micro-batching →
:class:`~repro.streaming.forecaster.StreamingForecaster` store) from the
:class:`~repro.cluster.spec.ServiceSpec` in the ``init`` message, and
then serves a strict request/reply command loop over the pickle-free
wire codec until the stream closes.

The command set mirrors the :class:`StreamingForecaster` surface plus
the persistence hooks the coordinator needs (full state, delta state,
census, tenant export/import), so the coordinator can drive checkpoint
chains and failover with exactly the thread-backend semantics.  Every
command runs under a broad handler that ships the error back as a typed
payload — a bad request must never kill the worker, only that request.

Tracing crosses the boundary explicitly: a request carrying
``"trace": true`` runs under a ``worker.<cmd>`` span with tracing forced
on, and the reply carries the exported span subtree for the coordinator
to graft under its own span (:func:`repro.obs.import_spans`).

Exit paths: a ``shutdown`` command (graceful), or EOF on the socket —
the coordinator closed or died, and a worker without a coordinator has
nothing left to serve.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import asdict
from typing import Dict, Optional

import numpy as np

from .. import obs, wire
from ..serving.admission import DEFAULT_PRIORITY, DeadlineExceeded, Overloaded
from ..streaming.forecaster import StreamingForecast, StreamingForecaster
from .spec import ServiceSpec

__all__ = ["ShardWorker", "main"]


class ShardWorker:
    """The in-process state of one worker: stack, pending forecasts, loop."""

    def __init__(self, channel) -> None:
        self._channel = channel
        self._forecaster: Optional[StreamingForecaster] = None
        self._pending: Dict[str, StreamingForecast] = {}
        self._shard_id = "?"
        # Armed by the "fault" command: the next _stall_count commands
        # sleep _stall_seconds before dispatch — a deterministic wedged
        # worker for degradation drills.
        self._stall_seconds = 0.0
        self._stall_count = 0

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        """Serve requests until shutdown or coordinator disappearance."""
        while True:
            try:
                message = wire.recv_message(self._channel)
            except wire.EndOfStream:
                return
            if not isinstance(message, dict) or "cmd" not in message:
                wire.send_message(
                    self._channel,
                    {"error": {"type": "ValueError", "message": "malformed request"}},
                )
                continue
            command = str(message["cmd"])
            if self._stall_count > 0 and command != "fault":
                self._stall_count -= 1
                time.sleep(self._stall_seconds)
            reply = self._dispatch(command, message)
            # Echo the request's sequence stamp on every reply (errors
            # included) so the coordinator can drain replies that outlived
            # their request's timeout.
            if "seq" in message:
                reply["seq"] = message["seq"]
            wire.send_message(self._channel, reply)
            if command == "shutdown" and "error" not in reply:
                return

    def _dispatch(self, command: str, message: dict) -> dict:
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return {
                "error": {
                    "type": "ValueError",
                    "message": f"unknown command {command!r}",
                }
            }
        try:
            if message.get("trace"):
                return self._traced(command, handler, message)
            return handler(message)
        except Exception as error:
            # Deliberately broad: the error is recorded on the reply and
            # re-raised coordinator-side with its type — a bad request
            # must not take the worker (and its tenants' state) down.
            return {"error": wire.error_payload(error)}

    def _traced(self, command: str, handler, message: dict) -> dict:
        """Run one command under a span tree and ship the tree back.

        The worker is single-threaded, so the process-default recorder
        can be cleared per command: whatever it holds afterwards is
        exactly this command's subtree.
        """
        with obs.observability(tracing=True):
            recorder = obs.default_recorder()
            recorder.clear()
            with obs.span(f"worker.{command}", shard=self._shard_id):
                reply = handler(message)
            spans = obs.export_spans(recorder.spans())
            recorder.clear()
        reply["spans"] = spans
        return reply

    # ------------------------------------------------------------------ #
    def _require(self) -> StreamingForecaster:
        if self._forecaster is None:
            raise RuntimeError("worker not initialised: send init first")
        return self._forecaster

    def _census(self) -> Dict[str, dict]:
        """Per-tenant ingest watermarks: what the coordinator mirrors."""
        store = self._require().store
        return {
            tenant: {
                "observed": int(store.observed(tenant)),
                "generation": int(store.generation(tenant)),
            }
            for tenant in store.tenants()
        }

    # ------------------------------------------------------------------ #
    def _cmd_init(self, message: dict) -> dict:
        spec = ServiceSpec.from_state(message["spec"])
        self._shard_id = str(message.get("shard_id", "?"))
        window_capacity = message.get("window_capacity")
        self._forecaster = StreamingForecaster(
            spec.build(),
            normalization=str(message.get("normalization", "none")),
            window_capacity=None if window_capacity is None else int(window_capacity),
        )
        if message.get("warmup", True):
            self._forecaster.warmup()
        return {"ok": True, "pid": os.getpid()}

    def _cmd_ping(self, message: dict) -> dict:
        return {"ok": True, "pid": os.getpid()}

    def _cmd_shutdown(self, message: dict) -> dict:
        return {"ok": True}

    # ------------------------------------------------------------------ #
    def _cmd_ingest(self, message: dict) -> dict:
        forecaster = self._require()
        tenant = str(message["tenant"])
        total = forecaster.ingest(
            tenant, message["values"], timestamp=message.get("timestamp")
        )
        return {
            "total": int(total),
            "generation": int(forecaster.store.generation(tenant)),
        }

    def _cmd_submit(self, message: dict) -> dict:
        forecaster = self._require()
        handle = forecaster.forecast(
            str(message["tenant"]),
            future_numerical=message.get("future_numerical"),
            future_categorical=message.get("future_categorical"),
            priority=str(message.get("priority", DEFAULT_PRIORITY)),
            # The budget is relative: re-anchored on this process's
            # monotonic clock at admission (a coordinator-side absolute
            # deadline would be meaningless here).
            timeout=self._entry_budget(message.get("budget")),
        )
        self._pending[str(message["id"])] = handle
        return {"ok": True, "queued": len(self._pending)}

    @staticmethod
    def _entry_budget(budget) -> Optional[float]:
        """Normalise a wire budget: a spent one raises typed, not ValueError."""
        if budget is None:
            return None
        budget = float(budget)
        if budget <= 0:
            raise DeadlineExceeded(
                f"deadline budget spent before worker admission ({budget:.3f}s left)"
            )
        return budget

    def _cmd_flush(self, message: dict) -> dict:
        flushed = self._require().flush()
        return self._resolve_pending(flushed)

    def _cmd_forecast_many(self, message: dict) -> dict:
        forecaster = self._require()
        admission_errors: Dict[str, dict] = {}
        for entry in message["entries"]:
            try:
                handle = forecaster.forecast(
                    str(entry["tenant"]),
                    future_numerical=entry.get("fn"),
                    future_categorical=entry.get("fc"),
                    priority=str(entry.get("priority", DEFAULT_PRIORITY)),
                    timeout=self._entry_budget(entry.get("budget")),
                )
            except (Overloaded, DeadlineExceeded) as error:
                # A shed entry fails alone — the rest of the batch (and
                # the worker) keeps serving.  The coordinator rematerialises
                # the typed error on that entry's handle.
                admission_errors[str(entry["id"])] = wire.error_payload(error)
                continue
            self._pending[str(entry["id"])] = handle
        if not message.get("flush", True):
            return {"flushed": 0, "results": {}, "errors": admission_errors}
        reply = self._resolve_pending(forecaster.flush())
        reply["errors"].update(admission_errors)
        return reply

    def _resolve_pending(self, flushed: int) -> dict:
        results: Dict[str, np.ndarray] = {}
        errors: Dict[str, dict] = {}
        for request_id, handle in self._pending.items():
            try:
                results[request_id] = np.asarray(handle.result())
            except Exception as error:
                # Recorded per-request and re-raised when the coordinator
                # resolves that handle; sibling requests still succeed.
                errors[request_id] = wire.error_payload(error)
        self._pending.clear()
        return {"flushed": int(flushed), "results": results, "errors": errors}

    def _cmd_fault(self, message: dict) -> dict:
        """Arm a deterministic stall: the next ``count`` commands sleep first.

        The acknowledgement goes out *before* any stall applies, so the
        arming request itself never times out.
        """
        seconds = float(message.get("stall", 0.0))
        count = int(message.get("count", 1))
        if seconds <= 0 or count < 1:
            raise ValueError(
                f"fault needs stall > 0 and count >= 1, got {seconds}/{count}"
            )
        self._stall_seconds = seconds
        self._stall_count = count
        return {"ok": True, "stall": seconds, "count": count}

    # ------------------------------------------------------------------ #
    def _cmd_warmup(self, message: dict) -> dict:
        sizes = message.get("batch_sizes")
        traced = self._require().warmup(
            None if sizes is None else [int(size) for size in sizes]
        )
        return {"traced": int(traced)}

    def _cmd_drop(self, message: dict) -> dict:
        self._require().drop(str(message["tenant"]))
        return {"ok": True}

    def _cmd_tenants(self, message: dict) -> dict:
        return {"tenants": self._require().store.tenants()}

    def _cmd_census(self, message: dict) -> dict:
        return {"census": self._census()}

    def _cmd_export_tenant(self, message: dict) -> dict:
        return {"payload": self._require().export_tenant(str(message["tenant"]))}

    def _cmd_import_tenant(self, message: dict) -> dict:
        forecaster = self._require()
        tenant = str(message["tenant"])
        forecaster.import_tenant(tenant, message["payload"])
        return {
            "observed": int(forecaster.store.observed(tenant)),
            "generation": int(forecaster.store.generation(tenant)),
        }

    # ------------------------------------------------------------------ #
    def _cmd_state(self, message: dict) -> dict:
        return {"state": self._require().to_state()}

    def _cmd_restore(self, message: dict) -> dict:
        """Replace the streaming state, keeping the already-built replica."""
        forecaster = self._require()
        self._forecaster = StreamingForecaster.from_state(
            forecaster.service, message["state"]
        )
        self._pending.clear()
        return {"census": self._census()}

    def _cmd_delta(self, message: dict) -> dict:
        forecaster = self._require()
        dirty = set(forecaster.dirty_tenants())
        order = forecaster.store.tenants()
        return {
            "order": order,
            "dirty": {
                tenant: forecaster.export_tenant(tenant)
                for tenant in order
                if tenant in dirty
            },
            "stats": asdict(forecaster.stats_snapshot()),
            "store_stats": asdict(forecaster.store.stats_snapshot()),
            "store": {
                "capacity": int(forecaster.store.capacity),
                "n_channels": int(forecaster.store.n_channels),
                "dtype": forecaster.store.dtype.name,
            },
        }

    def _cmd_clear_dirty(self, message: dict) -> dict:
        self._require().clear_dirty()
        return {"ok": True}

    def _cmd_stats(self, message: dict) -> dict:
        forecaster = self._require()
        return {
            "service": asdict(forecaster.service.stats_snapshot()),
            "streaming": asdict(forecaster.stats_snapshot()),
            "store": asdict(forecaster.store.stats_snapshot()),
        }

    def _cmd_reset_stats(self, message: dict) -> dict:
        self._require().service.reset_stats()
        return {"ok": True}

    def _cmd_metrics(self, message: dict) -> dict:
        return {"snapshot": obs.default_registry().snapshot()}


def main(argv=None) -> None:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if len(argv) != 1:
        raise SystemExit("usage: python -m repro.cluster.worker <fd>")
    channel = wire.claim_worker_fd(int(argv[0]))
    try:
        ShardWorker(channel).run()
    finally:
        channel.close()


if __name__ == "__main__":
    main()
