"""Consistent-hash ring for tenant → shard assignment.

A modulo partition (``hash(tenant) % n_shards``) reshuffles almost every
tenant whenever the shard count changes — useless for a live cluster where
moving a tenant means serialising and re-importing its streaming state.
:class:`HashRing` is the classic consistent-hashing construction instead:
every shard owns ``vnodes`` pseudo-random points on a 64-bit circle, and a
tenant is served by the first shard point clockwise of the tenant's own
hash.  Adding a shard claims only the arcs its new points cut off
(≈ ``1/N`` of all tenants in expectation); removing one reassigns only the
tenants it owned.  Everything is derived from stable digests
(:func:`stable_hash` over MD5), so assignments are identical across
processes and Python runs — a snapshot restored elsewhere routes every
tenant to the same shard.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence

__all__ = ["stable_hash", "HashRing"]


def stable_hash(key: str) -> int:
    """A 64-bit position on the ring, stable across processes.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), which
    would silently re-partition every tenant on restart; the first eight
    MD5 bytes are deterministic and spread uniformly.
    """
    try:
        # Not a security use: declare it so FIPS-mode OpenSSL builds
        # (which disable MD5 for signing) still allow the digest.
        digest = hashlib.md5(key.encode("utf-8"), usedforsecurity=False).digest()
    except TypeError:  # pragma: no cover - Python < 3.9 lacks the kwarg
        digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic, minimally-disruptive key → node assignment.

    Parameters
    ----------
    nodes:
        initial node names (shard identifiers).
    vnodes:
        virtual points per node.  More points smooth the load split
        (stddev of a node's arc share shrinks like ``1/sqrt(vnodes)``) at
        the cost of a longer sorted table; 64–128 is plenty for tens of
        shards.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[int] = []        # sorted vnode positions
        self._owners: List[str] = []        # owner of each position
        self._nodes: List[str] = []         # insertion order, for introspection
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> List[str]:
        """Node names in insertion order."""
        return list(self._nodes)

    # ------------------------------------------------------------------ #
    def add(self, node: str) -> None:
        """Insert a node's virtual points; existing keys mostly stay put."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        for position in self._positions(node):
            index = bisect.bisect(self._points, position)
            # An exact 64-bit collision between two nodes' points is
            # one-in-2^64 per pair; the lexicographically smaller name wins
            # the point so insertion order can never flip an assignment.
            if index > 0 and self._points[index - 1] == position:
                if node < self._owners[index - 1]:
                    self._owners[index - 1] = node
                continue
            self._points.insert(index, position)
            self._owners.insert(index, node)
        self._nodes.append(node)

    def remove(self, node: str) -> None:
        """Drop a node; only keys it owned are reassigned."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} is not on the ring")
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]
        self._nodes.remove(node)

    def assign(self, key: str) -> str:
        """The node owning ``key``: first vnode clockwise of the key's hash."""
        if not self._nodes:
            raise RuntimeError("cannot assign on an empty ring")
        index = bisect.bisect(self._points, stable_hash(key))
        if index == len(self._points):    # wrap past 2^64 back to the start
            index = 0
        return self._owners[index]

    def assignments(self, keys: Sequence[str]) -> Dict[str, str]:
        """Bulk ``key -> node`` lookup (one table, many bisects)."""
        return {key: self.assign(key) for key in keys}

    # ------------------------------------------------------------------ #
    def _positions(self, node: str) -> List[int]:
        return [stable_hash(f"{node}#{replica}") for replica in range(self.vnodes)]
