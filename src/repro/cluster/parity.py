"""Cluster ↔ single-process parity: sharding must not change any forecast.

Partitioning tenants across replicas is only a *scaling* decision if it is
invisible in the outputs: a tenant's forecast depends on its own window and
statistics, never on which replica computed it or which other tenants
shared the micro-batch.  :func:`replay_cluster` drives any streaming
target (a :class:`~repro.streaming.forecaster.StreamingForecaster` or a
:class:`~repro.cluster.sharded.ShardedForecaster`) tick-by-tick over the
same per-tenant streams, and :func:`compare_cluster_to_unsharded` checks
the cluster's forecasts bit-for-bit against the unsharded reference —
including across ``add_shard`` / ``remove_shard`` rebalances scheduled
mid-replay.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..streaming.replay import ParityReport

__all__ = ["replay_cluster", "compare_cluster_to_unsharded"]


def replay_cluster(
    target,
    streams: Mapping[str, np.ndarray],
    warmup: int,
    on_tick: Optional[Callable[[int], None]] = None,
) -> Dict[str, np.ndarray]:
    """Drive per-tenant streams through any ingest/forecast/flush target.

    Every global tick ingests one row per live tenant, then forecasts all
    tenants past ``warmup`` through one fan-out flush.  ``on_tick(step)``
    runs *before* the tick's ingests — the hook used to trigger a
    rebalance (or snapshot/restore) mid-stream in parity tests.  Returns
    ``tenant -> [n_forecasts, horizon, channels]``.
    """
    if warmup < 1:
        raise ValueError(f"warmup must be positive, got {warmup}")
    arrays = {
        tenant: np.asarray(values, dtype=np.float32) for tenant, values in streams.items()
    }
    steps = max((len(values) for values in arrays.values()), default=0)
    collected: Dict[str, List[np.ndarray]] = {tenant: [] for tenant in arrays}
    for step in range(steps):
        if on_tick is not None:
            on_tick(step)
        pending = []
        for tenant, values in arrays.items():
            if step >= len(values):
                continue
            target.ingest(tenant, values[step])
            if step + 1 >= warmup:
                pending.append((tenant, target.forecast(tenant)))
        target.flush()
        for tenant, handle in pending:
            collected[tenant].append(handle.result())
    return {
        tenant: np.stack(rows)
        if rows
        else np.zeros((0,), dtype=np.float32)
        for tenant, rows in collected.items()
    }


def compare_cluster_to_unsharded(
    cluster_forecasts: Mapping[str, np.ndarray],
    reference_forecasts: Mapping[str, np.ndarray],
) -> ParityReport:
    """Bit-exact comparison of two replays' per-tenant forecast stacks."""
    if set(cluster_forecasts) != set(reference_forecasts):
        raise ValueError(
            "cluster and reference replays cover different tenants: "
            f"{sorted(set(cluster_forecasts) ^ set(reference_forecasts))}"
        )
    compared = 0
    identical = True
    max_abs = 0.0
    for tenant, produced in cluster_forecasts.items():
        expected = reference_forecasts[tenant]
        if produced.shape != expected.shape:
            raise ValueError(
                f"tenant {tenant!r}: cluster produced {produced.shape}, "
                f"reference {expected.shape}"
            )
        compared += len(produced)
        if len(produced) == 0:
            continue
        diff = np.abs(produced.astype(np.float64) - expected.astype(np.float64))
        max_abs = max(max_abs, float(diff.max()))
        identical = identical and np.array_equal(produced, expected)
    return ParityReport(
        tenants=len(cluster_forecasts),
        windows_compared=compared,
        bit_identical=identical and compared > 0,
        max_abs_error=max_abs,
    )
