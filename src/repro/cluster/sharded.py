"""A sharded, rebalanceable cluster of streaming forecasters.

One :class:`~repro.streaming.forecaster.StreamingForecaster` scales until a
single model replica saturates; past that point tenants must be
partitioned.  :class:`ShardedForecaster` owns N shards — each a full
streaming stack with its own :class:`~repro.serving.service.ForecastService`
(model replica), ring-buffer store and per-tenant scalers — and routes
every call by consistent-hash lookup on the tenant key:

* ``ingest`` / ``forecast`` go to exactly one shard (tenants never
  straddle shards, so per-shard micro-batching still coalesces);
* ``forecast_all`` / ``flush`` fan out, one service flush per shard;
* stats aggregate cluster-wide through ``ServiceStats.merge``.

Because every piece of per-tenant state has a codec
(``export_tenant`` / ``import_tenant``), the ring can be *rebalanced
live*: :meth:`add_shard` and :meth:`remove_shard` migrate exactly the
tenants whose ring assignment changed — ≈ ``1/N`` of them, not all — and a
migrated tenant's subsequent forecasts are bit-identical to an
uninterrupted single-process forecaster over the same arrival sequence
(window contents, timestamp watermarks and Welford moments all travel).

Routed traffic and topology changes are serialised on a cluster-level
lock, so concurrent ingest/forecast callers never observe a half-done
rebalance (a ring node without a registered shard, or a tenant between
export and drop).

The shard services are expected to be *replicas*: ``service_factory`` must
build services around models with identical weights (model construction is
deterministic from ``config.seed``, so a plain
``lambda: ForecastService(LiPFormer(config))`` qualifies, as does loading
one trained state dict into each replica).
"""

from __future__ import annotations

import threading
from dataclasses import asdict
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..config import ModelConfig
from ..serving.service import ForecastService, ServiceStats
from ..streaming.forecaster import StreamingForecast, StreamingForecaster, StreamingStats
from ..streaming.store import StoreStats
from .ring import HashRing
from .snapshot import read_snapshot, write_snapshot

__all__ = ["ShardedForecaster"]


class ShardedForecaster:
    """Consistent-hash partitioned multi-replica streaming cluster.

    Parameters
    ----------
    service_factory:
        zero-argument callable building one :class:`ForecastService` per
        shard; replicas must share weights and configuration.
    n_shards:
        initial shard count (named ``shard-0 .. shard-{n-1}``).
    normalization / window_capacity:
        forwarded to every shard's :class:`StreamingForecaster`.
    vnodes:
        virtual points per shard on the :class:`HashRing`.
    """

    def __init__(
        self,
        service_factory: Callable[[], ForecastService],
        n_shards: int = 2,
        normalization: str = "none",
        window_capacity: Optional[int] = None,
        vnodes: int = 64,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.service_factory = service_factory
        self.normalization = normalization
        self.window_capacity = window_capacity
        self.ring = HashRing(vnodes=vnodes)
        self._shards: Dict[str, StreamingForecaster] = {}
        self.config: Optional[ModelConfig] = None
        self.rebalances = 0
        self.tenants_migrated = 0
        self._retired_service = ServiceStats()
        self._retired_store = StoreStats()
        self._retired_streaming = StreamingStats()
        # Serialises routed traffic against topology changes: without it, a
        # concurrent ingest could route to a ring node whose shard is not
        # registered yet, or land on a source shard between export and drop
        # and silently vanish with the old buffer.
        self._topology_lock = threading.RLock()
        for index in range(n_shards):
            shard_id = f"shard-{index}"
            self.ring.add(shard_id)
            self._shards[shard_id] = self._build_shard(None)

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._shards)

    def shard_ids(self) -> List[str]:
        """Shard names in creation order."""
        return list(self._shards)

    def shard(self, shard_id: str) -> StreamingForecaster:
        """The shard's underlying streaming forecaster."""
        try:
            return self._shards[shard_id]
        except KeyError:
            raise KeyError(f"unknown shard {shard_id!r}") from None

    def shard_for(self, tenant: str) -> str:
        """Which shard serves a tenant (pure ring lookup, no state)."""
        return self.ring.assign(tenant)

    def tenants(self) -> List[str]:
        """Every tenant across the cluster (shard order, then first-seen)."""
        with self._topology_lock:
            keys: List[str] = []
            for forecaster in self._shards.values():
                keys.extend(forecaster.store.tenants())
            return keys

    def tenant_count(self) -> int:
        with self._topology_lock:
            return sum(len(fc.store) for fc in self._shards.values())

    # ------------------------------------------------------------------ #
    # Rebalancing
    # ------------------------------------------------------------------ #
    def add_shard(
        self, shard_id: Optional[str] = None, service: Optional[ForecastService] = None
    ) -> List[str]:
        """Grow the ring by one shard; migrate only tenants it now owns.

        Returns the migrated tenant keys.  Consistent hashing guarantees
        the moved set is exactly the tenants whose assignment changed —
        every one of them lands on the new shard, and in expectation they
        are ``1/N`` of the cluster, not a full reshuffle.
        """
        with self._topology_lock:
            if shard_id is None:
                index = len(self._shards)
                while f"shard-{index}" in self._shards:
                    index += 1
                shard_id = f"shard-{index}"
            if shard_id in self._shards:
                raise ValueError(f"shard {shard_id!r} already exists")
            incoming = self._build_shard(service)
            self.ring.add(shard_id)
            moved: List[str] = []
            try:
                for source in self._shards.values():
                    for tenant in source.store.tenants():
                        if self.ring.assign(tenant) != shard_id:
                            continue
                        incoming.import_tenant(tenant, source.export_tenant(tenant))
                        source.drop(tenant)
                        moved.append((tenant, source))
            except Exception:
                # A half-done rebalance must not leave a phantom ring node
                # routing ~1/N of tenants to a shard that never registered:
                # unwind the ring and send migrated tenants home.
                self.ring.remove(shard_id)
                for tenant, source in moved:
                    source.import_tenant(tenant, incoming.export_tenant(tenant))
                raise
            self._shards[shard_id] = incoming
            self.rebalances += 1
            self.tenants_migrated += len(moved)
            return [tenant for tenant, _ in moved]

    def remove_shard(self, shard_id: str) -> List[str]:
        """Retire a shard; its tenants (and only its tenants) re-home.

        The departing shard's service queue is flushed first so every
        already-submitted forecast resolves against the state it was
        assembled from.  Returns the migrated tenant keys.
        """
        with self._topology_lock:
            if shard_id not in self._shards:
                raise KeyError(f"unknown shard {shard_id!r}")
            if len(self._shards) == 1:
                raise ValueError("cannot remove the last shard of a cluster")
            source = self._shards.pop(shard_id)
            source.flush()
            self.ring.remove(shard_id)
            moved: List[str] = []
            try:
                for tenant in source.store.tenants():
                    destination = self._shards[self.ring.assign(tenant)]
                    destination.import_tenant(tenant, source.export_tenant(tenant))
                    moved.append(tenant)
            except Exception:
                # Unwind: the source still holds every tenant (export
                # copies), so drop the partial imports and restore the
                # topology.
                for tenant in moved:
                    self._shards[self.ring.assign(tenant)].drop(tenant)
                self.ring.add(shard_id)
                self._shards[shard_id] = source
                raise
            # The retired shard's history must not vanish from cluster-wide
            # aggregation (its tenants' observations were very much served).
            self._fold_retired_stats(source)
            self.rebalances += 1
            self.tenants_migrated += len(moved)
            return moved

    # ------------------------------------------------------------------ #
    # Routed traffic
    # ------------------------------------------------------------------ #
    def ingest(self, tenant: str, values: np.ndarray, timestamp=None) -> int:
        """Append observations on the tenant's shard; returns its total.

        Held under the topology lock (as is all routed traffic) so an
        arrival can never land on a shard mid-migration and vanish with
        the tenant's pre-migration buffer.
        """
        with self._topology_lock:
            return self._shards[self.shard_for(tenant)].ingest(
                tenant, values, timestamp=timestamp
            )

    def forecast(
        self,
        tenant: str,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> StreamingForecast:
        """Queue a forecast on the tenant's shard; non-blocking handle."""
        with self._topology_lock:
            return self._shards[self.shard_for(tenant)].forecast(
                tenant,
                future_numerical=future_numerical,
                future_categorical=future_categorical,
            )

    def forecast_all(
        self,
        tenants: Optional[Sequence[str]] = None,
        flush: bool = True,
        future_numerical: Optional[Mapping[str, np.ndarray]] = None,
        future_categorical: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Dict[str, StreamingForecast]:
        """Queue one forecast per tenant, fanned out shard by shard.

        Requests are grouped per shard before any flush, so each shard's
        tenants coalesce into that replica's micro-batches — N tenants on
        S shards cost ``ceil(N/S / max_batch_size)`` passes per shard, not
        N model calls.
        """
        future_numerical = future_numerical or {}
        future_categorical = future_categorical or {}
        with self._topology_lock:
            keys = list(tenants) if tenants is not None else self.tenants()
            by_shard: Dict[str, List[str]] = {}
            for tenant in keys:
                by_shard.setdefault(self.shard_for(tenant), []).append(tenant)
            handles: Dict[str, StreamingForecast] = {}
            for shard_id, members in by_shard.items():
                forecaster = self._shards[shard_id]
                for tenant in members:
                    handles[tenant] = forecaster.forecast(
                        tenant,
                        future_numerical=future_numerical.get(tenant),
                        future_categorical=future_categorical.get(tenant),
                    )
                if flush:
                    forecaster.flush()
        return handles

    def ingest_and_forecast(
        self, arrivals: Mapping[str, np.ndarray], timestamp=None
    ) -> Dict[str, StreamingForecast]:
        """One cluster tick: ingest a batch of arrivals, forecast each tenant."""
        for tenant, values in arrivals.items():
            self.ingest(tenant, values, timestamp=timestamp)
        return self.forecast_all(list(arrivals))

    def flush(self) -> int:
        """Flush every shard's service queue; returns requests resolved."""
        with self._topology_lock:
            return sum(forecaster.flush() for forecaster in self._shards.values())

    def drop(self, tenant: str) -> None:
        """Forget a tenant cluster-wide (buffer, watermark and scaler)."""
        with self._topology_lock:
            self._shards[self.shard_for(tenant)].drop(tenant)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def service_stats(self) -> ServiceStats:
        """Cluster-wide serving counters (``ServiceStats.merge`` of shards).

        Includes the history of shards retired by :meth:`remove_shard` —
        their traffic was served, so it stays counted.
        """
        return ServiceStats.merge(
            [self._retired_service] + [fc.service.stats for fc in self._shards.values()]
        )

    def streaming_stats(self) -> StreamingStats:
        return StreamingStats.merge(
            [self._retired_streaming] + [fc.stats for fc in self._shards.values()]
        )

    def store_stats(self) -> StoreStats:
        return StoreStats.merge(
            [self._retired_store] + [fc.store.stats for fc in self._shards.values()]
        )

    def reset_service_stats(self) -> None:
        """Zero every shard's serving counters (between benchmark phases)."""
        self._retired_service.reset()
        for forecaster in self._shards.values():
            forecaster.service.stats.reset()

    def _fold_retired_stats(self, source: StreamingForecaster) -> None:
        self._retired_service = ServiceStats.merge(
            [self._retired_service, source.service.stats]
        )
        self._retired_streaming = StreamingStats.merge(
            [self._retired_streaming, source.stats]
        )
        self._retired_store = StoreStats.merge(
            [self._retired_store, source.store.stats]
        )

    def as_dict(self) -> dict:
        """One observability payload: topology, balance and merged stats."""
        return {
            "shards": len(self._shards),
            "tenants": self.tenant_count(),
            "tenants_per_shard": {
                shard_id: len(fc.store) for shard_id, fc in self._shards.items()
            },
            "rebalances": self.rebalances,
            "tenants_migrated": self.tenants_migrated,
            "service": self.service_stats().as_dict(),
        }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        """Serialisable snapshot of the whole cluster (ring + every shard).

        Rebalance counters and the retired-shard stat accumulators travel
        too — ``service_stats()`` promises retired traffic stays counted,
        and that promise must hold across a restart.
        """
        with self._topology_lock:
            return self._to_state_locked()

    def _to_state_locked(self) -> dict:
        return {
            "vnodes": int(self.ring.vnodes),
            "normalization": self.normalization,
            "rebalances": int(self.rebalances),
            "tenants_migrated": int(self.tenants_migrated),
            "retired": {
                # Per-tenant streaming/store stats travel inside each
                # shard's own state; service stats live on the service
                # objects, which restore *fresh* from the factory — so the
                # cluster-wide total is snapshotted here and becomes the
                # revived cluster's retired baseline.
                "service": asdict(self.service_stats()),
                "store": asdict(self._retired_store),
                "streaming": asdict(self._retired_streaming),
            },
            "shards": {
                shard_id: forecaster.to_state()
                for shard_id, forecaster in self._shards.items()
            },
        }

    @classmethod
    def from_state(
        cls, service_factory: Callable[[], ForecastService], state: dict
    ) -> "ShardedForecaster":
        """Rebuild a cluster from :meth:`to_state` output.

        Shard services come fresh from ``service_factory`` (weights have
        their own persistence path); shard names, ring layout, tenant
        placement and all per-tenant streaming state are restored exactly,
        so the revived cluster routes and forecasts bit-identically.
        """
        if not state["shards"]:
            raise ValueError("cluster state holds no shards")
        cluster = cls.__new__(cls)
        cluster.service_factory = service_factory
        cluster.normalization = str(state["normalization"])
        # Shards built by a later add_shard must match the restored stores'
        # geometry, or migration into them would be rejected — recover the
        # capacity from the saved state rather than falling back to the
        # constructor default.
        first_shard = next(iter(state["shards"].values()))
        cluster.window_capacity = int(first_shard["store"]["capacity"])
        cluster.ring = HashRing(vnodes=int(state["vnodes"]))
        cluster._shards = {}
        cluster.config = None
        cluster.rebalances = int(state["rebalances"])
        cluster.tenants_migrated = int(state["tenants_migrated"])
        cluster._retired_service = ServiceStats(**state["retired"]["service"])
        cluster._retired_store = StoreStats(**state["retired"]["store"])
        cluster._retired_streaming = StreamingStats(**state["retired"]["streaming"])
        cluster._topology_lock = threading.RLock()
        for shard_id, shard_state in state["shards"].items():
            service = service_factory()
            cluster._check_replica(service)
            cluster.ring.add(shard_id)
            cluster._shards[shard_id] = StreamingForecaster.from_state(
                service, shard_state
            )
        return cluster

    def save(self, path: str) -> None:
        """Write the cluster snapshot to a compressed ``.npz`` archive."""
        write_snapshot(self.to_state(), path)

    @classmethod
    def load(
        cls, service_factory: Callable[[], ForecastService], path: str
    ) -> "ShardedForecaster":
        """Restore a :meth:`save` archive around fresh service replicas."""
        return cls.from_state(service_factory, read_snapshot(path))

    # ------------------------------------------------------------------ #
    def _build_shard(self, service: Optional[ForecastService]) -> StreamingForecaster:
        service = self.service_factory() if service is None else service
        self._check_replica(service)
        return StreamingForecaster(
            service,
            normalization=self.normalization,
            window_capacity=self.window_capacity,
        )

    def _check_replica(self, service: ForecastService) -> None:
        """All shards must share one model geometry or routing is nonsense."""
        if self.config is None:
            self.config = service.config
            return
        for field in ("input_length", "horizon", "n_channels"):
            expected = getattr(self.config, field)
            actual = getattr(service.config, field)
            if actual != expected:
                raise ValueError(
                    f"shard service {field} {actual} does not match the "
                    f"cluster's {field} {expected}"
                )
