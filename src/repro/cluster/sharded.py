"""A sharded, rebalanceable, *parallel* cluster of streaming forecasters.

One :class:`~repro.streaming.forecaster.StreamingForecaster` scales until a
single model replica saturates; past that point tenants must be
partitioned.  :class:`ShardedForecaster` owns N shards — each a full
streaming stack with its own :class:`~repro.serving.service.ForecastService`
(model replica), ring-buffer store and per-tenant scalers — and routes
every call by consistent-hash lookup on the tenant key:

* ``ingest`` / ``forecast`` go to exactly one shard (tenants never
  straddle shards, so per-shard micro-batching still coalesces);
* ``forecast_all`` / ``flush`` fan out, one service flush per shard,
  driven through a pluggable :class:`~repro.runtime.Executor` — with a
  :class:`~repro.runtime.PoolExecutor`, S shards use S cores (forward
  passes are NumPy-bound and release the GIL in BLAS);
* stats aggregate cluster-wide through ``ServiceStats.merge`` over
  lock-consistent per-shard snapshots.

Locking is two-level (see ``ARCHITECTURE.md``):

* a writer-preferring :class:`~repro.runtime.RWLock` guards the
  **topology** — routed traffic holds the shared read side, so calls for
  different tenants proceed concurrently; ``add_shard`` / ``remove_shard``
  / ``failover`` and checkpoints take the exclusive write side, so no
  caller ever observes a half-done rebalance;
* one lock **per shard** serialises that shard's compound operations
  (window read → normalise → submit, and the submit-group + flush unit of
  a fan-out), exactly what PR 3's single global lock guaranteed — but now
  only per shard, not cluster-wide.

Tenant → shard lookups are memoised per topology version, so the hot
ingest path stops re-hashing MD5 on every call.

Persistence goes beyond whole-cluster ``save``/``load``:
:meth:`ShardedForecaster.save_incremental` writes a **delta** checkpoint
holding only the tenants that churned since the previous checkpoint
(O(churn), not O(fleet)), chained to its parent by id + sequence number;
:func:`~repro.cluster.snapshot.resolve_chain` (via :meth:`load_chain`)
replays a chain deterministically.  :meth:`failover` re-routes a dead
shard's ring arc to the survivors and restores its tenants from the last
checkpoint chain, reporting exactly which tenants lost un-checkpointed
arrivals.

The shard services are expected to be *replicas*: ``service_factory`` must
build services around models with identical weights (model construction is
deterministic from ``config.seed``, so a plain
``lambda: ForecastService(LiPFormer(config))`` qualifies, as does loading
one trained state dict into each replica).
"""

from __future__ import annotations

import os
import uuid
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..config import ModelConfig
from ..runtime import Executor, SerialExecutor, map_shards
from ..runtime.annotations import guarded_by, requires_lock, unguarded
from ..runtime.locks import RWLock, TrackedRLock
from ..serving.admission import DEFAULT_PRIORITY
from ..serving.service import ForecastService, ServiceStats
from ..streaming.forecaster import StreamingForecast, StreamingForecaster, StreamingStats
from ..streaming.store import StoreStats
from .ring import HashRing
from .snapshot import (
    _npz_path,
    compact_chain,
    read_snapshot,
    resolve_chain,
    resolve_tenant_payloads,
    write_snapshot,
)

__all__ = ["ShardedForecaster", "FailoverReport"]

# Module-level instruments shared by every cluster in the process; the
# per-shard histogram fans out by label instead of per-instance state.
_REBALANCE_SECONDS = obs.histogram(
    "repro_cluster_rebalance_seconds",
    "wall time of a successful topology change or failover",
    labels=("op",),
)
_SHARD_FORECAST_SECONDS = obs.histogram(
    "repro_cluster_shard_forecast_seconds",
    "per-shard submit+flush time inside one forecast_all fan-out",
    labels=("shard",),
)


@dataclass
class FailoverReport:
    """What :meth:`ShardedForecaster.failover` recovered — and what it couldn't.

    ``restored`` maps each recovered tenant to the surviving shard now
    serving it.  ``lost`` tenants existed only in the dead replica's memory
    (never checkpointed) and are gone.  ``stale`` tenants were restored
    from the checkpoint but had ingested arrivals since it was taken; the
    value is exactly how many rows of history the failover rolled back.
    """

    shard_id: str
    restored: Dict[str, str] = field(default_factory=dict)
    lost: List[str] = field(default_factory=list)
    stale: Dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every tenant came back with zero rolled-back rows."""
        return not self.lost and not self.stale


@guarded_by(
    "_shards", "ring", "_shard_locks", "_assign_cache", "_topology_version",
    "_chain", "_chain_id", "_seq", "_dropped_since_checkpoint",
    "_retired_service", "_retired_store", "_retired_streaming",
    "rebalances", "tenants_migrated", "rebalance_failures",
    lock="_topology",
)
class ShardedForecaster:
    """Consistent-hash partitioned multi-replica streaming cluster.

    Parameters
    ----------
    service_factory:
        zero-argument callable building one :class:`ForecastService` per
        shard; replicas must share weights and configuration.
    n_shards:
        initial shard count (named ``shard-0 .. shard-{n-1}``).
    normalization / window_capacity:
        forwarded to every shard's :class:`StreamingForecaster`.
    vnodes:
        virtual points per shard on the :class:`HashRing`.
    executor:
        fan-out strategy for per-shard work (``forecast_all`` / ``flush`` /
        checkpoint collection).  Defaults to
        :class:`~repro.runtime.SerialExecutor`; pass a
        :class:`~repro.runtime.PoolExecutor` to drive S shards on S cores.
    """

    def __init__(
        self,
        service_factory: Callable[[], ForecastService],
        n_shards: int = 2,
        normalization: str = "none",
        window_capacity: Optional[int] = None,
        vnodes: int = 64,
        executor: Optional[Executor] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.service_factory = service_factory
        self.normalization = normalization
        self.window_capacity = window_capacity
        self.executor: Executor = executor if executor is not None else SerialExecutor()
        self.ring = HashRing(vnodes=vnodes)
        self._shards: Dict[str, StreamingForecaster] = {}
        self.config: Optional[ModelConfig] = None
        self.rebalances = 0
        self.tenants_migrated = 0
        self._retired_service = ServiceStats()
        self._retired_store = StoreStats()
        self._retired_streaming = StreamingStats()
        self._init_runtime()
        for index in range(n_shards):
            shard_id = f"shard-{index}"
            self.ring.add(shard_id)
            self._shards[shard_id] = self._build_shard(None)
            self._shard_locks[shard_id] = TrackedRLock(f"shard:{shard_id}")

    @unguarded("constructor phase: the cluster is not visible to other threads yet")
    def _init_runtime(self) -> None:
        """Locks, caches and chain bookkeeping shared by every constructor."""
        # Reader/writer topology lock: routed traffic shares the read side
        # (an arrival can still never land on a shard mid-migration and
        # vanish), topology changes and checkpoints take the write side.
        # Named so the debug-mode lock-order monitor can place it in the
        # global acquisition graph (every cluster shares the one ordering
        # class: topology before shard locks, never the reverse).
        self._topology = RWLock(name="cluster-topology")
        # Per-shard locks serialise a shard's compound operations (window
        # read → submit, submit-group → flush) against each other, which is
        # all the old cluster-wide mutex guaranteed *within* one shard.
        self._shard_locks: Dict[str, TrackedRLock] = {}
        # tenant -> (topology_version, shard_id); entries from older
        # versions are ignored, so a stale write racing a rebalance can
        # never poison routing.
        self._assign_cache: Dict[str, Tuple[int, str]] = {}
        self._topology_version = 0
        # Incremental checkpointing: the chain of snapshot paths this
        # cluster would restore from (one full save + following deltas).
        self._chain: List[str] = []
        self._chain_id: Optional[str] = None
        self._seq = 0
        # Tenant keys dropped since the last checkpoint link.  The chain
        # still holds those tenants' payloads, and per-store generation
        # tombstones don't follow a key that is re-created on a *different*
        # shard after a rebalance — this cluster-level set does, so
        # failover() can refuse to resurrect deleted history in every
        # topology.  Cleared on each checkpoint (whose tenant lists then
        # record the deletions durably).
        self._dropped_since_checkpoint: set = set()
        # Rebalances that failed and rolled back (add/remove_shard unwind
        # paths).  Runtime-only observability — not persisted: a restored
        # cluster starts with a clean failure ledger, like process restart
        # clears a crash counter.
        self.rebalance_failures = 0

    @requires_lock("_topology")
    def _bump_topology_locked(self) -> None:
        """Invalidate memoised ring lookups (held under the write lock)."""
        self._topology.assert_held("write")
        self._topology_version += 1
        self._assign_cache = {}

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._topology.read():
            return len(self._shards)

    def shard_ids(self) -> List[str]:
        """Shard names in creation order."""
        with self._topology.read():
            return list(self._shards)

    def shard(self, shard_id: str) -> StreamingForecaster:
        """The shard's underlying streaming forecaster."""
        with self._topology.read():
            try:
                return self._shards[shard_id]
            except KeyError:
                raise KeyError(f"unknown shard {shard_id!r}") from None

    def shard_for(self, tenant: str) -> str:
        """Which shard serves a tenant (memoised ring lookup).

        The MD5 ring hash is stable but not free; on the hot ingest path it
        is paid once per tenant per topology, not once per call.  Entries
        are tagged with the topology version they were computed under and
        ignored after any ``add_shard`` / ``remove_shard`` / ``failover``.

        Self-acquires the shared topology lock (reentrant for the routed
        paths that already hold it), so external callers — tests, admin
        tooling — get a consistent version/ring pair too.
        """
        with self._topology.read():
            version = self._topology_version
            cached = self._assign_cache.get(tenant)
            if cached is not None and cached[0] == version:
                return cached[1]
            shard_id = self.ring.assign(tenant)
            self._assign_cache[tenant] = (version, shard_id)
            return shard_id

    def tenants(self) -> List[str]:
        """Every tenant across the cluster (shard order, then first-seen)."""
        with self._topology.read():
            keys: List[str] = []
            for forecaster in self._shards.values():
                keys.extend(forecaster.store.tenants())
            return keys

    def tenant_count(self) -> int:
        with self._topology.read():
            return sum(len(fc.store) for fc in self._shards.values())

    # ------------------------------------------------------------------ #
    # Rebalancing
    # ------------------------------------------------------------------ #
    def add_shard(
        self, shard_id: Optional[str] = None, service: Optional[ForecastService] = None
    ) -> List[str]:
        """Grow the ring by one shard; migrate only tenants it now owns.

        Returns the migrated tenant keys.  Consistent hashing guarantees
        the moved set is exactly the tenants whose assignment changed —
        every one of them lands on the new shard, and in expectation they
        are ``1/N`` of the cluster, not a full reshuffle.
        """
        with self._topology.write():
            # Timed from inside the write lock: lock *wait* is reported
            # separately by the RWLock's repro_lock_wait_seconds metric.
            started = obs.now() if obs.metrics_enabled() else 0.0
            if shard_id is None:
                index = len(self._shards)
                while f"shard-{index}" in self._shards:
                    index += 1
                shard_id = f"shard-{index}"
            if shard_id in self._shards:
                raise ValueError(f"shard {shard_id!r} already exists")
            incoming = self._build_shard(service)
            self.ring.add(shard_id)
            moved: List[Tuple[str, StreamingForecaster]] = []
            try:
                for source in self._shards.values():
                    for tenant in source.store.tenants():
                        if self.ring.assign(tenant) != shard_id:
                            continue
                        incoming.import_tenant(tenant, source.export_tenant(tenant))
                        source.drop(tenant)
                        moved.append((tenant, source))
            except Exception:
                # Deliberately broad: *whatever* failed mid-migration, a
                # half-done rebalance must not leave a phantom ring node
                # routing ~1/N of tenants to a shard that never registered.
                # Unwind the ring, send migrated tenants home, count the
                # failure (observable via as_dict / rebalance_failures),
                # and re-raise the original error unchanged.
                self.rebalance_failures += 1
                self.ring.remove(shard_id)
                for tenant, source in moved:
                    source.import_tenant(tenant, incoming.export_tenant(tenant))
                raise
            self._shards[shard_id] = incoming
            self._shard_locks[shard_id] = TrackedRLock(f"shard:{shard_id}")
            self._bump_topology_locked()
            self.rebalances += 1
            self.tenants_migrated += len(moved)
            if started:
                _REBALANCE_SECONDS.labels(op="add_shard").observe(obs.now() - started)
            return [tenant for tenant, _ in moved]

    def remove_shard(self, shard_id: str) -> List[str]:
        """Retire a shard; its tenants (and only its tenants) re-home.

        The departing shard's service queue is flushed first so every
        already-submitted forecast resolves against the state it was
        assembled from.  Returns the migrated tenant keys.
        """
        with self._topology.write():
            started = obs.now() if obs.metrics_enabled() else 0.0
            if shard_id not in self._shards:
                raise KeyError(f"unknown shard {shard_id!r}")
            if len(self._shards) == 1:
                raise ValueError("cannot remove the last shard of a cluster")
            source = self._shards.pop(shard_id)
            source_lock = self._shard_locks.pop(shard_id)
            source.flush()
            self.ring.remove(shard_id)
            moved: List[str] = []
            try:
                for tenant in source.store.tenants():
                    destination = self._shards[self.ring.assign(tenant)]
                    destination.import_tenant(tenant, source.export_tenant(tenant))
                    moved.append(tenant)
            except Exception:
                # Deliberately broad, same contract as add_shard: unwind —
                # the source still holds every tenant (export copies), so
                # drop the partial imports and restore the topology — then
                # count the failure and re-raise unchanged.
                self.rebalance_failures += 1
                for tenant in moved:
                    self._shards[self.ring.assign(tenant)].drop(tenant)
                self.ring.add(shard_id)
                self._shards[shard_id] = source
                self._shard_locks[shard_id] = source_lock
                raise
            # The retired shard's history must not vanish from cluster-wide
            # aggregation (its tenants' observations were very much served).
            self._fold_retired_stats(source)
            self._bump_topology_locked()
            self.rebalances += 1
            self.tenants_migrated += len(moved)
            if started:
                _REBALANCE_SECONDS.labels(op="remove_shard").observe(obs.now() - started)
            return moved

    # ------------------------------------------------------------------ #
    # Failover
    # ------------------------------------------------------------------ #
    def failover(
        self, shard_id: str, checkpoint_paths: Optional[Sequence[str]] = None
    ) -> FailoverReport:
        """Recover from a dead shard: re-route its arc, restore its tenants.

        The shard's replica is presumed crashed — its in-memory state
        (buffers, scalers, queued requests) is unrecoverable.  Its virtual
        points leave the ring, so the consistent-hash arc it owned falls to
        the surviving shards, and every tenant it served is restored onto
        its new owner from the last checkpoint chain (``checkpoint_paths``
        overrides the chain recorded by ``save`` / ``save_incremental`` /
        ``load_chain``) via the per-tenant codec.

        Recovery is *honest about data loss*: the returned
        :class:`FailoverReport` names each tenant that was never
        checkpointed (gone entirely) and each tenant whose checkpoint
        lags its live history, with the exact number of rolled-back rows —
        the cluster still knows the dead shard's ingest watermarks, only
        the replica's payload memory is lost.

        The dead shard's serving/store counters fold into the retired
        accumulators, like :meth:`remove_shard` — its traffic was served
        and stays counted.
        """
        with self._topology.write():
            started = obs.now() if obs.metrics_enabled() else 0.0
            if shard_id not in self._shards:
                raise KeyError(f"unknown shard {shard_id!r}")
            if len(self._shards) == 1:
                raise ValueError("cannot fail over the last shard of a cluster")
            paths = list(checkpoint_paths) if checkpoint_paths is not None else list(self._chain)
            if not paths:
                raise RuntimeError(
                    "failover needs a checkpoint to restore from; call save() "
                    "(and save_incremental()) before shards can die safely"
                )
            checkpointed = self._checkpoint_tenant_states(paths)
            dead = self._shards.pop(shard_id)
            self._shard_locks.pop(shard_id)
            self.ring.remove(shard_id)
            self._bump_topology_locked()
            report = FailoverReport(shard_id=shard_id)
            for tenant in dead.store.tenants():
                payload = checkpointed.get(tenant)
                if payload is None:
                    # Born after the last checkpoint, died with the replica.
                    report.lost.append(tenant)
                    continue
                live_rows = dead.store.observed(tenant)
                checkpoint_rows = int(payload["series"]["buffer"]["total_appended"])
                checkpoint_generation = int(payload["series"].get("generation", 0))
                if (
                    tenant in self._dropped_since_checkpoint
                    or dead.store.generation(tenant) != checkpoint_generation
                    or live_rows < checkpoint_rows
                ):
                    # The payload belongs to a *different incarnation* of
                    # this key: the tenant was dropped and re-created since
                    # the checkpoint (generation mismatch, or — for
                    # pre-generation snapshots — a live ingest total below
                    # the checkpoint's, which a single incarnation's
                    # monotonic counter cannot produce).  Restoring it would
                    # silently resurrect history the operator deleted; the
                    # re-created incarnation was never checkpointed, so it
                    # is honestly lost.
                    report.lost.append(tenant)
                    continue
                target = self.ring.assign(tenant)
                self._shards[target].import_tenant(tenant, payload)
                report.restored[tenant] = target
                if live_rows > checkpoint_rows:
                    report.stale[tenant] = live_rows - checkpoint_rows
            self._fold_retired_stats(dead)
            self.rebalances += 1
            self.tenants_migrated += len(report.restored)
            # Auto-warm every shard that adopted tenants: the first
            # post-failover forecast must replay a compiled plan, not pay
            # an eager fallback (or a trace) on the request path.  Shard
            # warmup touches only the shard's own service lock, so it is
            # safe under the topology write lock held here.
            for target in sorted(set(report.restored.values())):
                self._shards[target].warmup()
            if started:
                _REBALANCE_SECONDS.labels(op="failover").observe(obs.now() - started)
            return report

    @staticmethod
    def _checkpoint_tenant_states(paths: Sequence[str]) -> Dict[str, dict]:
        """tenant → ``export_tenant``-shaped payload from a resolved chain."""
        return resolve_tenant_payloads(resolve_chain(paths))

    # ------------------------------------------------------------------ #
    # Routed traffic
    # ------------------------------------------------------------------ #
    def ingest(self, tenant: str, values: np.ndarray, timestamp=None) -> int:
        """Append observations on the tenant's shard; returns its total.

        Holds the topology read lock (shared — arrivals for different
        shards proceed concurrently) plus the owning shard's lock, so an
        arrival can never land on a shard mid-migration and vanish with
        the tenant's pre-migration buffer.
        """
        with self._topology.read():
            shard_id = self.shard_for(tenant)
            with self._shard_locks[shard_id]:
                return self._shards[shard_id].ingest(tenant, values, timestamp=timestamp)

    def forecast(
        self,
        tenant: str,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
        priority: str = DEFAULT_PRIORITY,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> StreamingForecast:
        """Queue a forecast on the tenant's shard; non-blocking handle.

        ``priority`` / ``timeout`` / ``deadline`` pass through to the
        shard service's admission control (see
        :mod:`repro.serving.admission`).
        """
        with self._topology.read():
            shard_id = self.shard_for(tenant)
            with self._shard_locks[shard_id]:
                return self._shards[shard_id].forecast(
                    tenant,
                    future_numerical=future_numerical,
                    future_categorical=future_categorical,
                    priority=priority,
                    timeout=timeout,
                    deadline=deadline,
                )

    def forecast_all(
        self,
        tenants: Optional[Sequence[str]] = None,
        flush: bool = True,
        future_numerical: Optional[Mapping[str, np.ndarray]] = None,
        future_categorical: Optional[Mapping[str, np.ndarray]] = None,
        priority: str = DEFAULT_PRIORITY,
        timeout: Optional[float] = None,
    ) -> Dict[str, StreamingForecast]:
        """Queue one forecast per tenant, fanned out shard by shard.

        Requests are grouped per shard before any flush, so each shard's
        tenants coalesce into that replica's micro-batches — N tenants on
        S shards cost ``ceil(N/S / max_batch_size)`` passes per shard, not
        N model calls.  Shard groups run through the cluster's executor:
        with a :class:`~repro.runtime.PoolExecutor`, the S per-shard
        forward passes overlap across cores.  Each group's submit+flush is
        one unit under its shard lock, so concurrent fan-outs never split
        each other's micro-batches.
        """
        future_numerical = future_numerical or {}
        future_categorical = future_categorical or {}
        with self._topology.read():
            # Tenant enumeration and the per-shard fan-out are two steps
            # under the *shared* lock, so a concurrent drop() (also a
            # reader) can land between them.  When the caller asked for
            # "everything live" the vanished tenant is simply skipped — the
            # same outcome as the drop serialising before enumeration; an
            # explicit tenant list keeps strict errors.
            implicit = tenants is None
            keys = self.tenants() if implicit else list(tenants)
            by_shard: Dict[str, List[str]] = {}
            for tenant in keys:
                by_shard.setdefault(self.shard_for(tenant), []).append(tenant)

            def run_shard(shard_id: str) -> Dict[str, StreamingForecast]:
                forecaster = self._shards[shard_id]
                # map_shards carried the cluster.forecast_all span onto this
                # (possibly pool-worker) thread, so the shard span nests
                # under it even when the fan-out crosses threads.
                with obs.span("shard.forecast", shard=shard_id, tenants=len(by_shard[shard_id])):
                    shard_started = obs.now() if obs.metrics_enabled() else 0.0
                    with self._shard_locks[shard_id]:
                        shard_handles = {}
                        for tenant in by_shard[shard_id]:
                            if implicit and tenant not in forecaster.store:
                                continue
                            shard_handles[tenant] = forecaster.forecast(
                                tenant,
                                future_numerical=future_numerical.get(tenant),
                                future_categorical=future_categorical.get(tenant),
                                priority=priority,
                                timeout=timeout,
                            )
                        if flush:
                            forecaster.flush()
                    if shard_started:
                        _SHARD_FORECAST_SECONDS.labels(shard=shard_id).observe(
                            obs.now() - shard_started
                        )
                return shard_handles

            with obs.span("cluster.forecast_all", tenants=len(keys), shards=len(by_shard)):
                collected = map_shards(self.executor, run_shard, list(by_shard))
        merged: Dict[str, StreamingForecast] = {}
        for shard_handles in collected.values():
            merged.update(shard_handles)
        # Handles come back in the caller's tenant order, whatever order
        # the executor finished the shard groups in.
        return {tenant: merged[tenant] for tenant in keys if tenant in merged}

    def ingest_and_forecast(
        self, arrivals: Mapping[str, np.ndarray], timestamp=None
    ) -> Dict[str, StreamingForecast]:
        """One cluster tick: ingest a batch of arrivals, forecast each tenant."""
        for tenant, values in arrivals.items():
            self.ingest(tenant, values, timestamp=timestamp)
        return self.forecast_all(list(arrivals))

    def flush(self) -> int:
        """Flush every shard's service queue (in parallel under a pool
        executor); returns requests resolved."""
        with self._topology.read():

            def run_shard(shard_id: str) -> int:
                with self._shard_locks[shard_id]:
                    return self._shards[shard_id].flush()

            return sum(map_shards(self.executor, run_shard, self.shard_ids()).values())

    def warmup(self, batch_sizes: Optional[Sequence[int]] = None) -> int:
        """Pre-trace one polymorphic compiled plan per shard (in parallel
        under a pool executor); returns the total plans traced.

        Run after building a cluster so the first fan-out doesn't pay
        per-shard plan-tracing latency; :meth:`load`, :meth:`load_chain`
        and :meth:`failover` already warm their restored shards.
        """
        with self._topology.read():

            def run_shard(shard_id: str) -> int:
                with self._shard_locks[shard_id]:
                    return self._shards[shard_id].warmup(batch_sizes)

            return sum(map_shards(self.executor, run_shard, self.shard_ids()).values())

    def drop(self, tenant: str) -> None:
        """Forget a tenant cluster-wide (buffer, watermark and scaler)."""
        with self._topology.read():
            shard_id = self.shard_for(tenant)
            with self._shard_locks[shard_id]:
                self._shards[shard_id].drop(tenant)
            # Evict the memoised ring lookup too: under tenant churn the
            # cache must track the live population, not every key ever seen.
            self._assign_cache.pop(tenant, None)
            self._dropped_since_checkpoint.add(tenant)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def service_stats(self) -> ServiceStats:
        """Cluster-wide serving counters (``ServiceStats.merge`` of shards).

        Merges lock-consistent per-shard snapshots, so totals are exact
        even while other threads keep submitting.  Includes the history of
        shards retired by :meth:`remove_shard` / :meth:`failover` — their
        traffic was served, so it stays counted.
        """
        with self._topology.read():
            return ServiceStats.merge(
                [self._retired_service]
                + [fc.service.stats_snapshot() for fc in self._shards.values()]
            )

    def streaming_stats(self) -> StreamingStats:
        with self._topology.read():
            return StreamingStats.merge(
                [self._retired_streaming]
                + [fc.stats_snapshot() for fc in self._shards.values()]
            )

    def store_stats(self) -> StoreStats:
        with self._topology.read():
            return StoreStats.merge(
                [self._retired_store]
                + [fc.store.stats_snapshot() for fc in self._shards.values()]
            )

    def reset_service_stats(self) -> None:
        """Zero every shard's serving counters (between benchmark phases).

        Exclusive topology lock plus each service's own lock: routed
        traffic is excluded for the (rare) duration, and flushes triggered
        directly on a handle (``Forecast.result()`` bypasses the cluster
        façade) can't interleave their field-by-field increments with the
        reset either.
        """
        with self._topology.write():
            self._retired_service.reset()
            for forecaster in self._shards.values():
                forecaster.service.reset_stats()

    @requires_lock("_topology")
    def _fold_retired_stats(self, source: StreamingForecaster) -> None:
        self._topology.assert_held("write")
        self._retired_service = ServiceStats.merge(
            [self._retired_service, source.service.stats_snapshot()]
        )
        self._retired_streaming = StreamingStats.merge(
            [self._retired_streaming, source.stats_snapshot()]
        )
        self._retired_store = StoreStats.merge(
            [self._retired_store, source.store.stats_snapshot()]
        )

    def as_dict(self) -> dict:
        """One observability payload: topology, balance and merged stats."""
        with self._topology.read():
            return {
                "shards": len(self._shards),
                "tenants": self.tenant_count(),
                "tenants_per_shard": {
                    shard_id: len(fc.store) for shard_id, fc in self._shards.items()
                },
                "rebalances": self.rebalances,
                "tenants_migrated": self.tenants_migrated,
                "rebalance_failures": self.rebalance_failures,
                "service": self.service_stats().as_dict(),
            }

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        """Serialisable snapshot of the whole cluster (ring + every shard).

        Taken under the exclusive topology lock so the cut is consistent:
        no arrival lands between two shards' captures.  Rebalance counters
        and the retired-shard stat accumulators travel too —
        ``service_stats()`` promises retired traffic stays counted, and
        that promise must hold across a restart.
        """
        with self._topology.write():
            return self._to_state_locked()

    @requires_lock("_topology")
    def _to_state_locked(self) -> dict:
        self._topology.assert_held("write")
        shard_states = map_shards(
            self.executor,
            lambda shard_id: self._shards[shard_id].to_state(),
            self.shard_ids(),
        )
        return {
            "kind": "full",
            "chain_id": self._chain_id,
            "seq": int(self._seq),
            "vnodes": int(self.ring.vnodes),
            "normalization": self.normalization,
            "rebalances": int(self.rebalances),
            "tenants_migrated": int(self.tenants_migrated),
            "retired": {
                # Per-tenant streaming/store stats travel inside each
                # shard's own state; service stats live on the service
                # objects, which restore *fresh* from the factory — so the
                # cluster-wide total is snapshotted here and becomes the
                # revived cluster's retired baseline.
                "service": asdict(self.service_stats()),
                "store": asdict(self._retired_store),
                "streaming": asdict(self._retired_streaming),
            },
            "shards": shard_states,
        }

    @requires_lock("_topology")
    def _delta_state_locked(self, seq: int) -> dict:
        """A delta checkpoint: churned tenants' payloads + each shard's order.

        Per shard the delta records the full tenant *key list* (names are
        cheap; they double as the deletion record — a tenant absent from
        every list was dropped) and full per-tenant payloads only for
        tenants dirtied since the last checkpoint.  Stats are tiny and
        travel wholesale.  Collection fans out per shard through the
        executor, same as a full save.
        """
        self._topology.assert_held("write")
        first = next(iter(self._shards.values()))

        def collect(shard_id: str) -> dict:
            forecaster = self._shards[shard_id]
            dirty = set(forecaster.dirty_tenants())
            order = forecaster.store.tenants()
            return {
                "order": order,
                "dirty": {
                    tenant: forecaster.export_tenant(tenant)
                    for tenant in order
                    if tenant in dirty
                },
                "stats": asdict(forecaster.stats_snapshot()),
                "store_stats": asdict(forecaster.store.stats_snapshot()),
            }

        return {
            "kind": "delta",
            "chain_id": self._chain_id,
            "seq": int(seq),
            "parent_seq": int(self._seq),
            "vnodes": int(self.ring.vnodes),
            "normalization": self.normalization,
            "store": {
                "capacity": int(first.store.capacity),
                "n_channels": int(first.store.n_channels),
                "dtype": first.store.dtype.name,
            },
            "rebalances": int(self.rebalances),
            "tenants_migrated": int(self.tenants_migrated),
            "retired": {
                "service": asdict(self.service_stats()),
                "store": asdict(self._retired_store),
                "streaming": asdict(self._retired_streaming),
            },
            "shards": map_shards(self.executor, collect, self.shard_ids()),
        }

    @classmethod
    def from_state(
        cls,
        service_factory: Callable[[], ForecastService],
        state: dict,
        executor: Optional[Executor] = None,
    ) -> "ShardedForecaster":
        """Rebuild a cluster from :meth:`to_state` output.

        Shard services come fresh from ``service_factory`` (weights have
        their own persistence path); shard names, ring layout, tenant
        placement and all per-tenant streaming state are restored exactly,
        so the revived cluster routes and forecasts bit-identically.
        """
        if not state["shards"]:
            raise ValueError("cluster state holds no shards")
        cluster = cls.__new__(cls)
        cluster.service_factory = service_factory
        cluster.normalization = str(state["normalization"])
        cluster.executor = executor if executor is not None else SerialExecutor()
        # Shards built by a later add_shard must match the restored stores'
        # geometry, or migration into them would be rejected — recover the
        # capacity from the saved state rather than falling back to the
        # constructor default.
        first_shard = next(iter(state["shards"].values()))
        cluster.window_capacity = int(first_shard["store"]["capacity"])
        cluster.ring = HashRing(vnodes=int(state["vnodes"]))
        cluster._shards = {}
        cluster.config = None
        cluster.rebalances = int(state["rebalances"])
        cluster.tenants_migrated = int(state["tenants_migrated"])
        cluster._retired_service = ServiceStats(**state["retired"]["service"])
        cluster._retired_store = StoreStats(**state["retired"]["store"])
        cluster._retired_streaming = StreamingStats(**state["retired"]["streaming"])
        cluster._init_runtime()
        chain_id = state.get("chain_id")
        cluster._chain_id = None if chain_id is None else str(chain_id)
        cluster._seq = int(state.get("seq", 0))
        for shard_id, shard_state in state["shards"].items():
            service = service_factory()
            cluster._check_replica(service)
            cluster.ring.add(shard_id)
            cluster._shards[shard_id] = StreamingForecaster.from_state(
                service, shard_state
            )
            cluster._shard_locks[shard_id] = TrackedRLock(f"shard:{shard_id}")
        return cluster

    def save(self, path: str) -> None:
        """Write a full cluster snapshot; starts a new checkpoint chain.

        Atomic on disk (temp file + ``os.replace``), stop-the-world in
        process (exclusive topology lock — the captured cut and the
        dirty-reset below must observe the same arrivals), but per-shard
        state collection still fans out through the executor.  After a
        full save every tenant is clean: the next
        :meth:`save_incremental` captures only churn from this point.
        """
        with self._topology.write():
            previous = (self._chain_id, self._seq)
            self._chain_id = uuid.uuid4().hex
            self._seq = 0
            try:
                write_snapshot(self._to_state_locked(), path)
            except BaseException:
                # A failed write must not orphan the in-memory chain head:
                # the old chain (if any) is still the restorable one.
                self._chain_id, self._seq = previous
                raise
            for forecaster in self._shards.values():
                forecaster.clear_dirty()
            self._dropped_since_checkpoint.clear()
            self._chain = [path]

    def save_incremental(self, path: str) -> None:
        """Write a delta checkpoint: only tenants touched since the last one.

        O(churn) instead of O(fleet): a fleet of 10k tenants where 100
        moved since the last checkpoint writes 100 tenants' buffers, not
        10k.  The delta chains to its parent (id + sequence number);
        restore the full chain with :meth:`load_chain`.  Raises if no
        chain base exists yet — call :meth:`save` first.
        """
        with self._topology.write():
            if not self._chain:
                raise RuntimeError(
                    "no checkpoint chain to extend: call save() for a full "
                    "base snapshot before save_incremental()"
                )
            # Every link must be a distinct file: re-using a chained path
            # ("latest.npz" habits, or the base itself) would overwrite a
            # link the chain still needs and destroy the only copy of that
            # checkpoint's data.
            if self._resolve_snapshot_file(path) in {
                self._resolve_snapshot_file(link) for link in self._chain
            }:
                raise ValueError(
                    f"{path!r} is already a link of the current checkpoint "
                    "chain; each incremental snapshot needs a fresh path"
                )
            delta = self._delta_state_locked(seq=self._seq + 1)
            write_snapshot(delta, path)
            for forecaster in self._shards.values():
                forecaster.clear_dirty()
            self._dropped_since_checkpoint.clear()
            self._seq += 1
            self._chain.append(path)

    @staticmethod
    def _resolve_snapshot_file(path: str) -> str:
        """The actual archive file a snapshot path maps to (npz suffixing)."""
        return os.path.abspath(_npz_path(path))

    def compact(self, path: Optional[str] = None) -> str:
        """Fold the recorded checkpoint chain into one full snapshot.

        Delegates to :func:`~repro.cluster.snapshot.compact_chain` (which
        garbage-collects the superseded links) and re-points the live
        chain at the compacted base, so the next :meth:`save_incremental`
        chains onto it and the next :meth:`failover` replays one file
        instead of the whole history.  ``path`` defaults to overwriting
        the chain base in place.  Returns the compacted snapshot path.
        """
        with self._topology.write():
            if not self._chain:
                raise RuntimeError(
                    "no checkpoint chain to compact: call save() first"
                )
            output = compact_chain(self._chain, output=path)
            self._chain = [output]
            return output

    def checkpoint_chain(self) -> List[str]:
        """The snapshot paths a restore (or :meth:`failover`) would replay."""
        with self._topology.read():
            return list(self._chain)

    @classmethod
    def load(
        cls,
        service_factory: Callable[[], ForecastService],
        path: str,
        executor: Optional[Executor] = None,
    ) -> "ShardedForecaster":
        """Restore a :meth:`save` archive around fresh service replicas.

        Replicas come back pre-warmed: every restored shard traces its
        polymorphic compiled plan before the cluster is returned, so the
        first post-restore forecasts replay instead of falling back eager.
        """
        cluster = cls.from_state(service_factory, read_snapshot(path), executor=executor)
        if cluster._chain_id is not None:
            # The revived cluster can keep extending the chain (and fail
            # over) without re-writing a full base first.
            cluster._chain = [path]
        cluster.warmup()
        return cluster

    @classmethod
    def load_chain(
        cls,
        service_factory: Callable[[], ForecastService],
        paths: Sequence[str],
        executor: Optional[Executor] = None,
    ) -> "ShardedForecaster":
        """Restore a full + incremental snapshot chain, deterministically.

        Replays ``[full, delta, ...]`` through
        :func:`~repro.cluster.snapshot.resolve_chain` (validating chain id
        and sequence linkage) and revives the resulting state; the cluster
        continues the same chain on subsequent :meth:`save_incremental`
        calls.  Restored replicas are auto-warmed, like :meth:`load`.
        """
        paths = list(paths)
        cluster = cls.from_state(service_factory, resolve_chain(paths), executor=executor)
        if cluster._chain_id is not None:
            cluster._chain = paths
        cluster.warmup()
        return cluster

    # ------------------------------------------------------------------ #
    def _build_shard(self, service: Optional[ForecastService]) -> StreamingForecaster:
        service = self.service_factory() if service is None else service
        self._check_replica(service)
        return StreamingForecaster(
            service,
            normalization=self.normalization,
            window_capacity=self.window_capacity,
        )

    def _check_replica(self, service: ForecastService) -> None:
        """All shards must share one model geometry or routing is nonsense."""
        if self.config is None:
            self.config = service.config
            return
        for field_name in ("input_length", "horizon", "n_channels"):
            expected = getattr(self.config, field_name)
            actual = getattr(service.config, field_name)
            if actual != expected:
                raise ValueError(
                    f"shard service {field_name} {actual} does not match the "
                    f"cluster's {field_name} {expected}"
                )
