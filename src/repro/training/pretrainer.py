"""Contrastive pre-training of the dual encoder (paper Section III-B, top half)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Protocol

import numpy as np

from ..config import TrainingConfig
from ..core.dual_encoder import DualEncoder
from ..data.pipeline import ForecastingData
from ..nn import Adam, clip_grad_norm

__all__ = ["PretrainingHistory", "ContrastivePretrainer", "pretrain_covariate_encoder"]


class _SupportsDualEncoder(Protocol):
    def build_dual_encoder(self, rng: Optional[np.random.Generator] = None) -> DualEncoder: ...

    def freeze_covariate_encoder(self) -> None: ...


@dataclass
class PretrainingHistory:
    """Per-epoch contrastive losses."""

    losses: List[float] = field(default_factory=list)
    total_seconds: float = 0.0


class ContrastivePretrainer:
    """Optimise the CLIP-style symmetric contrastive loss over covariate/target pairs."""

    def __init__(self, dual_encoder: DualEncoder, config: Optional[TrainingConfig] = None) -> None:
        self.dual_encoder = dual_encoder
        self.config = config or TrainingConfig()
        self.optimizer = Adam(dual_encoder.parameters(), lr=self.config.pretrain_learning_rate)

    def fit(self, data: ForecastingData, rng: Optional[np.random.Generator] = None) -> PretrainingHistory:
        generator = rng if rng is not None else np.random.default_rng(self.config.seed + 101)
        train_loader, _, _ = data.loaders(self.config.batch_size, rng=generator)
        history = PretrainingHistory()
        start = time.perf_counter()
        for _ in range(self.config.pretrain_epochs):
            total, count = 0.0, 0
            for batch in train_loader:
                if batch["future_numerical"] is None and batch["future_categorical"] is None:
                    raise ValueError(
                        "contrastive pre-training requires future covariates; "
                        "prepare the dataset with include_covariates=True"
                    )
                if len(batch["y"]) < 2:
                    continue  # a single pair has no negatives
                self.optimizer.zero_grad()
                loss = self.dual_encoder(
                    batch["y"], batch["future_numerical"], batch["future_categorical"]
                )
                loss.backward()
                clip_grad_norm(self.dual_encoder, self.config.gradient_clip or 5.0)
                self.optimizer.step()
                total += loss.item()
                count += 1
            history.losses.append(total / max(count, 1))
        history.total_seconds = time.perf_counter() - start
        return history


def pretrain_covariate_encoder(
    model: _SupportsDualEncoder,
    data: ForecastingData,
    config: Optional[TrainingConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> PretrainingHistory:
    """Pre-train a model's Covariate Encoder and freeze it.

    Works for :class:`~repro.core.lipformer.LiPFormer` and for
    :class:`~repro.core.transplant.CovariateEnrichedModel`.
    """
    dual_encoder = model.build_dual_encoder(rng=rng)
    pretrainer = ContrastivePretrainer(dual_encoder, config)
    history = pretrainer.fit(data, rng=rng)
    model.freeze_covariate_encoder()
    return history
