"""Forecast accuracy metrics (paper Section IV-A2)."""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["mse", "mae", "rmse", "mape", "evaluate_forecast"]


def _validate(prediction: np.ndarray, target: np.ndarray) -> tuple:
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: prediction {prediction.shape} vs target {target.shape}")
    return prediction, target


def mse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error."""
    prediction, target = _validate(prediction, target)
    return float(np.mean((prediction - target) ** 2))


def mae(prediction: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error."""
    prediction, target = _validate(prediction, target)
    return float(np.mean(np.abs(prediction - target)))


def rmse(prediction: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(prediction, target)))


def mape(prediction: np.ndarray, target: np.ndarray, eps: float = 1e-8) -> float:
    """Mean absolute percentage error (with an epsilon to avoid division by zero)."""
    prediction, target = _validate(prediction, target)
    return float(np.mean(np.abs((prediction - target) / (np.abs(target) + eps))))


def evaluate_forecast(prediction: np.ndarray, target: np.ndarray) -> Dict[str, float]:
    """Return the paper's metric pair (MSE, MAE) plus RMSE for convenience."""
    return {
        "mse": mse(prediction, target),
        "mae": mae(prediction, target),
        "rmse": rmse(prediction, target),
    }
