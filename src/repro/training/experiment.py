"""High-level experiment runner shared by every table/figure driver."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import ModelConfig, TrainingConfig
from ..core.base import ForecastModel
from ..data.pipeline import ForecastingData
from ..nn import Tensor, no_grad, seed_everything
from .pretrainer import pretrain_covariate_encoder
from .trainer import Trainer, TrainingHistory

__all__ = ["ExperimentResult", "run_experiment", "measure_inference_time"]


@dataclass
class ExperimentResult:
    """Accuracy, efficiency and timing figures for one trained model."""

    model_name: str
    dataset: str
    horizon: int
    mse: float
    mae: float
    parameters: int
    train_seconds_per_epoch: float
    inference_seconds: float
    epochs_run: int
    pretrained: bool
    macs: Optional[int] = None

    def as_row(self) -> Dict[str, object]:
        """Row representation for :class:`~repro.training.results.ResultsTable`."""
        row = {
            "model": self.model_name,
            "dataset": self.dataset,
            "horizon": self.horizon,
            "mse": self.mse,
            "mae": self.mae,
            "parameters": self.parameters,
            "train_s_per_epoch": self.train_seconds_per_epoch,
            "inference_s": self.inference_seconds,
            "epochs": self.epochs_run,
            "pretrained": self.pretrained,
        }
        if self.macs is not None:
            row["macs"] = self.macs
        return row


def measure_inference_time(
    model: ForecastModel,
    data: ForecastingData,
    batch_size: int = 32,
    repeats: int = 3,
) -> float:
    """Median wall-clock seconds for one batched inference pass."""
    _, _, test_loader = data.loaders(batch_size, shuffle_train=False)
    batch = next(iter(test_loader))
    covariates = (
        {"future_numerical": batch["future_numerical"], "future_categorical": batch["future_categorical"]}
        if model.supports_covariates
        else {"future_numerical": None, "future_categorical": None}
    )
    timings = []
    model.eval()
    with no_grad():
        for _ in range(repeats):
            start = time.perf_counter()
            model(Tensor(batch["x"]), **covariates)
            timings.append(time.perf_counter() - start)
    model.train()
    return float(np.median(timings))


def run_experiment(
    model: ForecastModel,
    data: ForecastingData,
    training_config: Optional[TrainingConfig] = None,
    model_name: Optional[str] = None,
    pretrain: bool = False,
    seed: int = 2021,
) -> ExperimentResult:
    """Train ``model`` on ``data`` and report paper-style accuracy/efficiency.

    When ``pretrain`` is true and the model exposes ``build_dual_encoder``
    (LiPFormer, CovariateEnrichedModel), the Covariate Encoder is first
    pre-trained contrastively and frozen, matching the paper's two-stage
    procedure.
    """
    training_config = training_config or TrainingConfig()
    rng = seed_everything(seed)
    pretrained = False
    if pretrain and hasattr(model, "build_dual_encoder"):
        pretrain_covariate_encoder(model, data, training_config, rng=rng)
        pretrained = True

    trainer = Trainer(model, training_config)
    history: TrainingHistory = trainer.fit(data, rng=rng)
    test_metrics = trainer.test(data)
    inference_seconds = measure_inference_time(model, data)

    return ExperimentResult(
        model_name=model_name or type(model).__name__,
        dataset=data.name,
        horizon=data.horizon,
        mse=test_metrics["mse"],
        mae=test_metrics["mae"],
        parameters=model.num_parameters(),
        train_seconds_per_epoch=history.seconds_per_epoch,
        inference_seconds=inference_seconds,
        epochs_run=history.epochs_run,
        pretrained=pretrained,
    )
