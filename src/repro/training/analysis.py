"""Result analysis utilities: per-horizon errors, win counts, pairwise comparisons.

These helpers operate on plain forecast arrays or on
:class:`~repro.training.results.ResultsTable` rows and implement the simple
aggregate statistics the paper reports (first/second-place counts, average
improvement percentages) plus a per-step error profile useful when studying
long-horizon behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .results import ResultsTable

__all__ = [
    "per_step_errors",
    "win_counts",
    "average_improvement",
    "rank_models",
    "PairwiseComparison",
    "pairwise_comparison",
]


def per_step_errors(prediction: np.ndarray, target: np.ndarray) -> Dict[str, np.ndarray]:
    """Per-forecast-step MSE and MAE profiles.

    Parameters are ``[n_windows, horizon, channels]`` arrays; the result maps
    ``"mse"`` / ``"mae"`` to arrays of length ``horizon``.  Errors typically
    grow with the forecast step; comparing profiles shows *where* a model
    wins (early vs late horizon).
    """
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    if prediction.ndim != 3:
        raise ValueError("expected [windows, horizon, channels] arrays")
    difference = prediction - target
    return {
        "mse": (difference**2).mean(axis=(0, 2)),
        "mae": np.abs(difference).mean(axis=(0, 2)),
    }


def win_counts(
    table: ResultsTable,
    metric: str = "mse",
    group_keys: Sequence[str] = ("dataset", "horizon"),
    top_k: int = 2,
) -> Dict[str, List[int]]:
    """First..k-th place counts per model (the paper's "Count" row).

    Returns a mapping ``model -> [first places, second places, ...]``.
    """
    if top_k < 1:
        raise ValueError("top_k must be at least 1")
    groups: Dict[tuple, List[dict]] = {}
    for row in table.rows:
        if metric not in row or "model" not in row:
            continue
        key = tuple(row.get(k) for k in group_keys)
        groups.setdefault(key, []).append(row)
    counts: Dict[str, List[int]] = {}
    for rows in groups.values():
        ranking = sorted(rows, key=lambda row: row[metric])
        for place, row in enumerate(ranking[:top_k]):
            counts.setdefault(row["model"], [0] * top_k)[place] += 1
    return counts


def average_improvement(
    table: ResultsTable,
    baseline: str,
    candidate: str,
    metric: str = "mse",
    group_keys: Sequence[str] = ("dataset", "horizon"),
) -> float:
    """Mean relative improvement (%) of ``candidate`` over ``baseline``.

    This is how the paper summarises Table III ("LiPFormer outperforms
    DLinear by 10.4%"): the per-cell relative MSE reduction, averaged over
    all cells where both models are present.
    """
    baseline_rows = {tuple(row.get(k) for k in group_keys): row for row in table.rows if row.get("model") == baseline}
    candidate_rows = {tuple(row.get(k) for k in group_keys): row for row in table.rows if row.get("model") == candidate}
    shared = sorted(set(baseline_rows) & set(candidate_rows))
    if not shared:
        raise ValueError(f"no overlapping cells between {baseline!r} and {candidate!r}")
    improvements = [
        100.0 * (baseline_rows[key][metric] - candidate_rows[key][metric]) / baseline_rows[key][metric]
        for key in shared
    ]
    return float(np.mean(improvements))


def rank_models(
    table: ResultsTable,
    metric: str = "mse",
    group_keys: Sequence[str] = ("dataset", "horizon"),
) -> Dict[str, float]:
    """Average rank of each model across groups (1 = best), lower is better."""
    groups: Dict[tuple, List[dict]] = {}
    for row in table.rows:
        if metric not in row or "model" not in row:
            continue
        key = tuple(row.get(k) for k in group_keys)
        groups.setdefault(key, []).append(row)
    accumulated: Dict[str, List[int]] = {}
    for rows in groups.values():
        ranking = sorted(rows, key=lambda row: row[metric])
        for place, row in enumerate(ranking, start=1):
            accumulated.setdefault(row["model"], []).append(place)
    return {model: float(np.mean(places)) for model, places in accumulated.items()}


@dataclass
class PairwiseComparison:
    """Paired comparison of two models over matched experiment cells."""

    baseline: str
    candidate: str
    n_cells: int
    candidate_wins: int
    baseline_wins: int
    mean_difference: float        # baseline - candidate (positive = candidate better)
    mean_relative_improvement: float

    @property
    def win_rate(self) -> float:
        return self.candidate_wins / max(self.n_cells, 1)


def pairwise_comparison(
    table: ResultsTable,
    baseline: str,
    candidate: str,
    metric: str = "mse",
    group_keys: Sequence[str] = ("dataset", "horizon"),
) -> PairwiseComparison:
    """Cell-by-cell comparison of two models on a results table."""
    baseline_rows = {tuple(row.get(k) for k in group_keys): row for row in table.rows if row.get("model") == baseline}
    candidate_rows = {tuple(row.get(k) for k in group_keys): row for row in table.rows if row.get("model") == candidate}
    shared = sorted(set(baseline_rows) & set(candidate_rows))
    if not shared:
        raise ValueError(f"no overlapping cells between {baseline!r} and {candidate!r}")
    differences = []
    candidate_wins = 0
    baseline_wins = 0
    for key in shared:
        baseline_value = baseline_rows[key][metric]
        candidate_value = candidate_rows[key][metric]
        differences.append(baseline_value - candidate_value)
        if candidate_value < baseline_value:
            candidate_wins += 1
        elif baseline_value < candidate_value:
            baseline_wins += 1
    return PairwiseComparison(
        baseline=baseline,
        candidate=candidate,
        n_cells=len(shared),
        candidate_wins=candidate_wins,
        baseline_wins=baseline_wins,
        mean_difference=float(np.mean(differences)),
        mean_relative_improvement=average_improvement(table, baseline, candidate, metric, group_keys),
    )
