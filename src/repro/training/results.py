"""Accumulating and formatting experiment result tables."""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ResultsTable"]


@dataclass
class ResultsTable:
    """A list of result rows (dictionaries) with pretty-printing helpers.

    Experiments append one row per (dataset, model, horizon, ...) cell and
    the benchmarks print the table in the same layout as the paper's tables.
    """

    title: str = ""
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        """Append one result row."""
        self.rows.append(dict(values))

    def __len__(self) -> int:
        return len(self.rows)

    def columns(self) -> List[str]:
        """Union of all row keys, in first-seen order."""
        seen: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def filter(self, **criteria: object) -> "ResultsTable":
        """Return a new table with rows matching all criteria."""
        matching = [
            row for row in self.rows if all(row.get(key) == value for key, value in criteria.items())
        ]
        return ResultsTable(title=self.title, rows=matching)

    def column(self, name: str) -> List[object]:
        """Values of one column across all rows (missing entries skipped)."""
        return [row[name] for row in self.rows if name in row]

    def best_by(self, metric: str, group_keys: Sequence[str]) -> Dict[tuple, Dict[str, object]]:
        """Per group (tuple of ``group_keys`` values), the row minimising ``metric``."""
        best: Dict[tuple, Dict[str, object]] = {}
        for row in self.rows:
            if metric not in row:
                continue
            key = tuple(row.get(k) for k in group_keys)
            if key not in best or row[metric] < best[key][metric]:
                best[key] = row
        return best

    # ------------------------------------------------------------------ #
    # Rendering / persistence
    # ------------------------------------------------------------------ #
    def to_text(self, float_format: str = "{:.4f}") -> str:
        """Render as a fixed-width text table."""
        columns = self.columns()
        if not columns:
            return f"{self.title}\n(empty)"

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        body = [[fmt(row.get(col, "")) for col in columns] for row in self.rows]
        widths = [
            max(len(col), *(len(line[i]) for line in body)) if body else len(col)
            for i, col in enumerate(columns)
        ]
        header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
        separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
        lines = [self.title, header, separator] if self.title else [header, separator]
        for line in body:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        return "\n".join(lines)

    def save_csv(self, path: str) -> None:
        """Write the table to ``path`` as CSV."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        columns = self.columns()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({key: row.get(key, "") for key in columns})

    def save_json(self, path: str) -> None:
        """Write the table to ``path`` as JSON."""
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"title": self.title, "rows": self.rows}, handle, indent=2, default=str)

    @classmethod
    def load_json(cls, path: str) -> "ResultsTable":
        """Read a table previously written by :meth:`save_json`."""
        with open(path) as handle:
            payload = json.load(handle)
        return cls(title=payload.get("title", ""), rows=payload.get("rows", []))
