"""``repro.training`` — metrics, training loops and experiment utilities."""

from .analysis import (
    PairwiseComparison,
    average_improvement,
    pairwise_comparison,
    per_step_errors,
    rank_models,
    win_counts,
)
from .early_stopping import EarlyStopping
from .experiment import ExperimentResult, measure_inference_time, run_experiment
from .metrics import evaluate_forecast, mae, mape, mse, rmse
from .pretrainer import ContrastivePretrainer, PretrainingHistory, pretrain_covariate_encoder
from .results import ResultsTable
from .sweep import SweepResult, grid_search
from .trainer import Trainer, TrainingHistory

__all__ = [
    "PairwiseComparison",
    "average_improvement",
    "pairwise_comparison",
    "per_step_errors",
    "rank_models",
    "win_counts",
    "SweepResult",
    "grid_search",
    "EarlyStopping",
    "ExperimentResult",
    "measure_inference_time",
    "run_experiment",
    "evaluate_forecast",
    "mae",
    "mape",
    "mse",
    "rmse",
    "ContrastivePretrainer",
    "PretrainingHistory",
    "pretrain_covariate_encoder",
    "ResultsTable",
    "Trainer",
    "TrainingHistory",
]
