"""Prediction-oriented training loop (paper Section III-B, bottom half)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..config import TrainingConfig
from ..core.base import ForecastModel
from ..data.loader import DataLoader
from ..data.pipeline import ForecastingData
from ..nn import AdamW, SmoothL1Loss, Tensor, clip_grad_norm, no_grad
from ..nn.scheduler import StepLR
from .early_stopping import EarlyStopping
from .metrics import evaluate_forecast

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch losses plus the timing figures reported in Table III."""

    train_losses: List[float] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)
    epochs_run: int = 0
    seconds_per_epoch: float = 0.0
    total_seconds: float = 0.0
    best_validation_loss: float = float("inf")


class Trainer:
    """Train a :class:`ForecastModel` with Smooth-L1 loss, AdamW and early stopping.

    Two-stage freeze ordering: models exposing ``optimizer_parameters()``
    (LiPFormer, CovariateEnrichedModel) may freeze their Covariate Encoder
    *after* this trainer — and therefore its ``AdamW`` — has been built
    (``pretrain_covariate_encoder`` does exactly that).  To keep the freeze
    effective, :meth:`fit` re-resolves ``optimizer_parameters()`` before the
    first epoch and swaps the optimizer's parameter list when it changed, so
    construction order (``Trainer(...)`` before or after the freeze) does not
    silently decide whether frozen weights get updated.
    """

    def __init__(
        self,
        model: ForecastModel,
        config: Optional[TrainingConfig] = None,
        loss: Optional[object] = None,
    ) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        beta = getattr(model.config, "smooth_l1_beta", 1.0)
        self.loss_fn = loss if loss is not None else SmoothL1Loss(beta=beta)
        self.optimizer = AdamW(
            self._resolve_parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        # Per-epoch exponential LR decay (paper-style "adjust learning rate"
        # schedule); gamma == 1 leaves the learning rate constant.
        self.scheduler = (
            StepLR(self.optimizer, step_size=1, gamma=self.config.lr_decay_gamma)
            if self.config.lr_decay_gamma < 1.0
            else None
        )

    # ------------------------------------------------------------------ #
    def _resolve_parameters(self) -> List:
        """The parameter list training should update, honouring freezes."""
        if hasattr(self.model, "optimizer_parameters"):
            return list(self.model.optimizer_parameters())
        return list(self.model.parameters())

    def _refresh_optimizer_parameters(self) -> None:
        """Re-sync the optimizer with the model's current trainable set.

        Catches freezes applied between ``Trainer.__init__`` and ``fit()``
        (the pre-train-then-freeze flow); keeps optimizer state for surviving
        parameters and drops it for removed ones.
        """
        current = self._resolve_parameters()
        if [id(p) for p in current] != [id(p) for p in self.optimizer.parameters]:
            self.optimizer.set_parameters(current)

    def _model_inputs(self, batch: Dict[str, Optional[np.ndarray]]) -> Dict[str, Optional[np.ndarray]]:
        if not self.model.supports_covariates:
            return {"future_numerical": None, "future_categorical": None}
        return {
            "future_numerical": batch.get("future_numerical"),
            "future_categorical": batch.get("future_categorical"),
        }

    def train_epoch(self, loader: DataLoader) -> float:
        """One optimisation pass over the loader; returns the mean loss."""
        self.model.train()
        total, count = 0.0, 0
        for batch in loader:
            self.optimizer.zero_grad()
            prediction = self.model(Tensor(batch["x"]), **self._model_inputs(batch))
            loss = self.loss_fn(prediction, batch["y"])
            loss.backward()
            if self.config.gradient_clip:
                clip_grad_norm(self.model, self.config.gradient_clip)
            self.optimizer.step()
            total += loss.item() * len(batch["x"])
            count += len(batch["x"])
        return total / max(count, 1)

    def evaluate(self, loader: DataLoader) -> Dict[str, float]:
        """Compute MSE / MAE / RMSE over a loader without gradient tracking.

        The model's training flag is saved and restored (mirroring
        :meth:`ForecastModel.predict`), so a standalone call — e.g. from
        :meth:`test` — leaves an eval-mode model in eval mode instead of
        unconditionally switching it back to train mode.
        """
        was_training = self.model.training
        self.model.eval()
        predictions, targets = [], []
        try:
            with no_grad():
                for batch in loader:
                    output = self.model(Tensor(batch["x"]), **self._model_inputs(batch))
                    predictions.append(output.data)
                    targets.append(batch["y"])
        finally:
            self.model.train(was_training)
        if not predictions:
            raise ValueError("evaluation loader produced no batches")
        return evaluate_forecast(np.concatenate(predictions), np.concatenate(targets))

    def fit(self, data: ForecastingData, rng: Optional[np.random.Generator] = None) -> TrainingHistory:
        """Full training run with validation-based early stopping."""
        self._refresh_optimizer_parameters()
        generator = rng if rng is not None else np.random.default_rng(self.config.seed)
        train_loader, val_loader, _ = data.loaders(self.config.batch_size, rng=generator)
        history = TrainingHistory()
        stopper = EarlyStopping(patience=self.config.patience)
        start = time.perf_counter()
        for epoch in range(self.config.epochs):
            train_loss = self.train_epoch(train_loader)
            validation = self.evaluate(val_loader)
            history.train_losses.append(train_loss)
            history.validation_losses.append(validation["mse"])
            history.epochs_run = epoch + 1
            stopper.update(validation["mse"], state=self.model.state_dict())
            if stopper.should_stop:
                break
            if self.scheduler is not None:
                self.scheduler.step()
        history.total_seconds = time.perf_counter() - start
        history.seconds_per_epoch = history.total_seconds / max(history.epochs_run, 1)
        history.best_validation_loss = stopper.best_score
        if stopper.best_state is not None:
            self.model.load_state_dict(stopper.best_state)
        return history

    # ------------------------------------------------------------------ #
    def test(self, data: ForecastingData) -> Dict[str, float]:
        """Evaluate on the held-out test split."""
        _, _, test_loader = data.loaders(self.config.batch_size, shuffle_train=False)
        return self.evaluate(test_loader)
