"""Early stopping on the validation score (paper uses patience 3)."""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Track the best validation score and signal when to stop.

    Also keeps a copy of the best model state so training can restore it,
    matching "we choose the final model based on the best validation score".
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0) -> None:
        if patience < 0:
            raise ValueError("patience must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.best_score = math.inf
        self.best_state: Optional[Dict[str, np.ndarray]] = None
        self.bad_epochs = 0
        self.should_stop = False

    def update(self, score: float, state: Optional[Dict[str, np.ndarray]] = None) -> bool:
        """Record an epoch's validation score; return True if it improved.

        ``state`` is copied defensively: callers passing live parameter
        arrays (rather than the copies ``Module.state_dict`` makes) would
        otherwise keep training straight through ``best_state``, silently
        corrupting the snapshot this class exists to preserve.
        """
        if score < self.best_score - self.min_delta:
            self.best_score = score
            self.best_state = (
                None
                if state is None
                else {name: np.array(value, copy=True) for name, value in state.items()}
            )
            self.bad_epochs = 0
            return True
        self.bad_epochs += 1
        if self.bad_epochs > self.patience:
            self.should_stop = True
        return False
