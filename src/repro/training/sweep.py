"""Grid search over model / training hyper-parameters.

A small utility for the kind of sweeps the paper's Tables VIII and IX run
(patch length, input length) and for practical tuning of LiPFormer on new
datasets.  Every combination of the supplied overrides is trained with
:func:`repro.training.experiment.run_experiment` and the results are
collected in a :class:`~repro.training.results.ResultsTable`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..config import ModelConfig, TrainingConfig
from ..core.base import ForecastModel
from ..data.pipeline import ForecastingData
from .experiment import ExperimentResult, run_experiment
from .results import ResultsTable

__all__ = ["SweepResult", "grid_search"]

ModelFactory = Callable[[ModelConfig], ForecastModel]


@dataclass
class SweepResult:
    """Outcome of a grid search: all results plus the best configuration."""

    table: ResultsTable
    results: List[ExperimentResult] = field(default_factory=list)
    best_overrides: Dict[str, object] = field(default_factory=dict)
    best_result: Optional[ExperimentResult] = None

    def __len__(self) -> int:
        return len(self.results)


def _combinations(grid: Dict[str, Iterable]) -> List[Dict[str, object]]:
    keys = list(grid)
    values = [list(grid[key]) for key in keys]
    return [dict(zip(keys, combo)) for combo in itertools.product(*values)]


def grid_search(
    model_factory: ModelFactory,
    data: ForecastingData,
    base_model_config: ModelConfig,
    model_grid: Optional[Dict[str, Iterable]] = None,
    training_grid: Optional[Dict[str, Iterable]] = None,
    base_training_config: Optional[TrainingConfig] = None,
    metric: str = "mse",
    pretrain: bool = False,
    seed: int = 2021,
) -> SweepResult:
    """Train one model per hyper-parameter combination and rank them.

    ``model_grid`` / ``training_grid`` map field names of :class:`ModelConfig`
    / :class:`TrainingConfig` to iterables of candidate values; every
    combination of both grids is evaluated.
    """
    model_grid = model_grid or {}
    training_grid = training_grid or {}
    base_training_config = base_training_config or TrainingConfig()
    if metric not in ("mse", "mae"):
        raise ValueError(f"metric must be 'mse' or 'mae', got {metric!r}")

    table = ResultsTable(title="hyper-parameter sweep")
    sweep = SweepResult(table=table)
    best_score = float("inf")
    for model_overrides in _combinations(model_grid):
        for training_overrides in _combinations(training_grid):
            model_config = base_model_config.with_overrides(**model_overrides)
            training_config = base_training_config.with_overrides(**training_overrides)
            model = model_factory(model_config)
            label = ", ".join(
                f"{key}={value}" for key, value in {**model_overrides, **training_overrides}.items()
            )
            result = run_experiment(
                model,
                data,
                training_config,
                model_name=label or type(model).__name__,
                pretrain=pretrain,
                seed=seed,
            )
            sweep.results.append(result)
            table.add_row(
                **{**model_overrides, **training_overrides},
                mse=result.mse,
                mae=result.mae,
                parameters=result.parameters,
            )
            score = getattr(result, metric)
            if score < best_score:
                best_score = score
                sweep.best_overrides = {**model_overrides, **training_overrides}
                sweep.best_result = result
    return sweep
