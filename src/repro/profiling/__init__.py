"""``repro.profiling`` — parameters, MACs, timing and edge-device emulation."""

from .edge import edge_inference_profile, limit_blas_threads
from .macs import measure_macs
from .params import count_parameters, human_readable_count, parameter_breakdown
from .summary import ModelCard, model_card, model_summary
from .timing import time_callable, time_inference, time_training_step

__all__ = [
    "edge_inference_profile",
    "limit_blas_threads",
    "measure_macs",
    "count_parameters",
    "human_readable_count",
    "parameter_breakdown",
    "ModelCard",
    "model_card",
    "model_summary",
    "time_callable",
    "time_inference",
    "time_training_step",
]
