"""Edge-device (CPU-only) inference emulation (paper Table VII).

The paper deploys the trained models on a CPU-only edge box (16 GB RAM, 6
cores) and reports seconds per inference as the input length grows.  In this
repository every model already runs on the CPU, so the experiment reduces to
timing single-sample inference across input lengths — optionally capping the
BLAS thread count to emulate a weaker device.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..config import ModelConfig
from ..core.base import ForecastModel
from .timing import time_inference

__all__ = ["limit_blas_threads", "edge_inference_profile"]

_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


@contextmanager
def limit_blas_threads(n_threads: int):
    """Best-effort cap on BLAS threads to emulate a low-power CPU.

    The environment variables only affect BLAS pools created afterwards, so
    this is a soft emulation; it is still useful for comparing models under
    identical conditions.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be positive")
    previous = {name: os.environ.get(name) for name in _BLAS_ENV_VARS}
    for name in _BLAS_ENV_VARS:
        os.environ[name] = str(n_threads)
    try:
        yield
    finally:
        for name, value in previous.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def edge_inference_profile(
    model_factory: Callable[[ModelConfig], ForecastModel],
    base_config: ModelConfig,
    input_lengths: Iterable[int],
    batch_size: int = 1,
    repeats: int = 3,
    n_threads: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Dict[int, float]:
    """Seconds per inference for each input length (Table VII row).

    A fresh, untrained model is built per input length — inference cost does
    not depend on the weights' values, only on the architecture.
    """
    generator = rng if rng is not None else np.random.default_rng(0)
    results: Dict[int, float] = {}
    for input_length in input_lengths:
        patch_length = base_config.patch_length
        if input_length % patch_length != 0:
            patch_length = _largest_divisor_patch(input_length, patch_length)
        config = base_config.with_overrides(input_length=input_length, patch_length=patch_length)
        model = model_factory(config)
        if n_threads is not None:
            with limit_blas_threads(n_threads):
                results[input_length] = time_inference(model, batch_size=batch_size, repeats=repeats, rng=generator)
        else:
            results[input_length] = time_inference(model, batch_size=batch_size, repeats=repeats, rng=generator)
    return results


def _largest_divisor_patch(input_length: int, preferred: int) -> int:
    """Largest patch length <= preferred that divides the input length."""
    for candidate in range(min(preferred, input_length), 0, -1):
        if input_length % candidate == 0:
            return candidate
    return 1
