"""Parameter counting and per-module breakdowns (Table III efficiency columns)."""

from __future__ import annotations

from typing import Dict

from ..nn import Module

__all__ = ["count_parameters", "parameter_breakdown", "human_readable_count"]


def count_parameters(module: Module) -> int:
    """Total number of scalar parameters of a model."""
    return module.num_parameters()


def parameter_breakdown(module: Module) -> Dict[str, int]:
    """Parameter counts grouped by top-level sub-module name."""
    breakdown: Dict[str, int] = {}
    for name, parameter in module.named_parameters():
        top_level = name.split(".")[0]
        breakdown[top_level] = breakdown.get(top_level, 0) + parameter.size
    return breakdown


def human_readable_count(count: int) -> str:
    """Format ``count`` like the paper's tables ("66K", "6.4M", "1.42T")."""
    if count < 0:
        raise ValueError("count must be non-negative")
    for threshold, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "K")):
        if count >= threshold:
            value = count / threshold
            return f"{value:.2f}{suffix}" if value < 10 else f"{value:.1f}{suffix}"
    return str(count)
