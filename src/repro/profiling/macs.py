"""Multiply-accumulate (MAC) measurement for one forward pass.

The paper's efficiency comparison reports MACs per inference; here they are
measured exactly by counting every matrix product executed during a single
forward pass (see ``repro.nn.tensor.count_macs``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.base import ForecastModel
from ..nn import Tensor, no_grad
from ..nn.tensor import count_macs

__all__ = ["measure_macs"]


def measure_macs(
    model: ForecastModel,
    batch_size: int = 32,
    future_numerical: Optional[np.ndarray] = None,
    future_categorical: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """MACs of one forward pass over a batch of ``batch_size`` windows."""
    generator = rng if rng is not None else np.random.default_rng(0)
    config = model.config
    x = generator.standard_normal((batch_size, config.input_length, config.n_channels)).astype(np.float32)
    if model.supports_covariates and config.has_covariates:
        if future_numerical is None and config.covariate_numerical_dim:
            future_numerical = generator.standard_normal(
                (batch_size, config.horizon, config.covariate_numerical_dim)
            ).astype(np.float32)
        if future_categorical is None and config.covariate_categorical_cardinalities:
            future_categorical = np.stack(
                [
                    generator.integers(0, cardinality, size=(batch_size, config.horizon))
                    for cardinality in config.covariate_categorical_cardinalities
                ],
                axis=-1,
            )
    else:
        future_numerical = None
        future_categorical = None

    was_training = model.training
    model.eval()
    try:
        with no_grad(), count_macs() as counter:
            model(Tensor(x), future_numerical=future_numerical, future_categorical=future_categorical)
    finally:
        model.train(was_training)
    return counter.total
