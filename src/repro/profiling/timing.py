"""Wall-clock timing of training and inference."""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from ..core.base import ForecastModel
from ..nn import Tensor, no_grad

__all__ = ["time_callable", "time_inference", "time_training_step"]


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Median wall-clock seconds of ``fn`` over ``repeats`` runs."""
    if repeats < 1:
        raise ValueError("repeats must be positive")
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        timings.append(time.perf_counter() - start)
    return float(np.median(timings))


def time_inference(
    model: ForecastModel,
    batch_size: int = 32,
    repeats: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Median seconds for one batched forward pass on random data."""
    generator = rng if rng is not None else np.random.default_rng(0)
    config = model.config
    x = Tensor(
        generator.standard_normal((batch_size, config.input_length, config.n_channels)).astype(np.float32)
    )

    def run() -> None:
        with no_grad():
            model(x)

    was_training = model.training
    model.eval()
    try:
        return time_callable(run, repeats=repeats)
    finally:
        model.train(was_training)


def time_training_step(
    model: ForecastModel,
    batch_size: int = 32,
    repeats: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Median seconds for one forward + backward pass on random data."""
    from ..nn import SmoothL1Loss

    generator = rng if rng is not None else np.random.default_rng(0)
    config = model.config
    x = Tensor(
        generator.standard_normal((batch_size, config.input_length, config.n_channels)).astype(np.float32)
    )
    y = generator.standard_normal((batch_size, config.horizon, config.n_channels)).astype(np.float32)
    loss_fn = SmoothL1Loss()

    def run() -> None:
        model.zero_grad()
        loss = loss_fn(model(x), y)
        loss.backward()

    return time_callable(run, repeats=repeats)
