"""Model summaries: per-module parameter tables and efficiency cards."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.base import ForecastModel
from ..nn import Module
from .macs import measure_macs
from .params import human_readable_count, parameter_breakdown

__all__ = ["ModelCard", "model_summary", "model_card"]


@dataclass
class ModelCard:
    """Compact efficiency description of a forecaster (Table III style)."""

    name: str
    parameters: int
    macs: int
    input_length: int
    horizon: int
    n_channels: int
    breakdown: Dict[str, int]

    def to_text(self) -> str:
        lines = [
            f"model: {self.name}",
            f"  input_length={self.input_length}  horizon={self.horizon}  channels={self.n_channels}",
            f"  parameters: {self.parameters:,} ({human_readable_count(self.parameters)})",
            f"  MACs/forward (batch 32): {self.macs:,} ({human_readable_count(self.macs)})",
            "  parameter breakdown:",
        ]
        for module_name, count in sorted(self.breakdown.items(), key=lambda item: -item[1]):
            share = 100.0 * count / max(self.parameters, 1)
            lines.append(f"    {module_name:<24s} {count:>10,d}  ({share:5.1f}%)")
        return "\n".join(lines)


def model_summary(module: Module, max_depth: int = 2) -> str:
    """Render a per-module parameter table, similar to ``torchsummary``."""
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")
    rows: List[tuple] = []
    for name, submodule in module.named_modules():
        if not name:
            continue
        depth = name.count(".") + 1
        if depth > max_depth:
            continue
        own = sum(p.size for _, p in submodule.named_parameters())
        rows.append((name, type(submodule).__name__, own))
    width = max((len(name) for name, _, _ in rows), default=10)
    lines = [f"{'module':<{width}s}  {'type':<24s}  {'params':>12s}"]
    lines.append("-" * (width + 40))
    for name, type_name, count in rows:
        lines.append(f"{name:<{width}s}  {type_name:<24s}  {count:>12,d}")
    lines.append("-" * (width + 40))
    lines.append(f"{'total':<{width}s}  {'':<24s}  {module.num_parameters():>12,d}")
    return "\n".join(lines)


def model_card(model: ForecastModel, name: Optional[str] = None, batch_size: int = 32) -> ModelCard:
    """Build a :class:`ModelCard` for a forecaster (measures MACs once)."""
    return ModelCard(
        name=name or type(model).__name__,
        parameters=model.num_parameters(),
        macs=measure_macs(model, batch_size=batch_size),
        input_length=model.config.input_length,
        horizon=model.config.horizon,
        n_channels=model.config.n_channels,
        breakdown=parameter_breakdown(model),
    )
