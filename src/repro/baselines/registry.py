"""Model registry / factory used by experiments and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..config import ModelConfig
from ..core.base import ForecastModel
from ..core.lipformer import LiPFormer
from .crossformer import Crossformer
from .dlinear import DLinear, NLinear
from .fgnn import FGNN
from .itransformer import ITransformer
from .lightts import LightTS
from .patchtst import PatchTST
from .reformer import Reformer
from .tide import TiDE
from .timemixer import TimeMixer
from .transformer import Autoformer, Informer, VanillaTransformer

__all__ = ["MODEL_REGISTRY", "available_models", "create_model", "PAPER_BASELINES"]

ModelFactory = Callable[..., ForecastModel]

MODEL_REGISTRY: Dict[str, ModelFactory] = {
    "LiPFormer": LiPFormer,
    "PatchTST": PatchTST,
    "DLinear": DLinear,
    "NLinear": NLinear,
    "TiDE": TiDE,
    "iTransformer": ITransformer,
    "TimeMixer": TimeMixer,
    "FGNN": FGNN,
    "Transformer": VanillaTransformer,
    "Informer": Informer,
    "Autoformer": Autoformer,
    "Crossformer": Crossformer,
    "LightTS": LightTS,
    "Reformer": Reformer,
}

#: the comparison set used in the paper's Table III / V / IX
PAPER_BASELINES: List[str] = [
    "iTransformer",
    "TimeMixer",
    "FGNN",
    "PatchTST",
    "DLinear",
    "TiDE",
]


def available_models() -> List[str]:
    """Names of all registered forecasting models."""
    return list(MODEL_REGISTRY)


def create_model(
    name: str,
    config: ModelConfig,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> ForecastModel:
    """Instantiate a registered model by (case-insensitive) name."""
    lookup = {key.lower(): key for key in MODEL_REGISTRY}
    key = lookup.get(name.lower())
    if key is None:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_REGISTRY)}")
    factory = MODEL_REGISTRY[key]
    return factory(config, rng=rng, **kwargs)
