"""LightTS-style baseline: light sampling-oriented MLP forecasting.

LightTS (Zhang et al.) forecasts with two complementary down-sampling views
of the input — *continuous* chunks that preserve local detail and *interval*
(strided) samples that expose periodicity — each processed by a small MLP
and fused by a linear head.  It is the other "lightweight" family member in
the paper's Table I and a useful sanity check that LiPFormer's gains are not
simply due to being small.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..core.base import ForecastModel
from ..core.revin import LastValueNormalizer
from ..nn import GELU, Linear, Sequential, Tensor
from ..nn import concatenate

__all__ = ["LightTS"]


class LightTS(ForecastModel):
    """Continuous + interval down-sampling MLP forecaster."""

    # Both down-sampling views are fixed reshape/stride patterns over the
    # input — shape-determined, so the compiled-plan trace is exact.
    supports_compiled_plan = True

    def __init__(
        self,
        config: ModelConfig,
        chunk_size: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        self.chunk_size = chunk_size or config.patch_length
        if config.input_length % self.chunk_size != 0:
            raise ValueError(
                f"chunk_size ({self.chunk_size}) must divide input_length ({config.input_length})"
            )
        self.n_chunks = config.input_length // self.chunk_size
        hidden = config.hidden_dim
        self.normalizer = LastValueNormalizer()
        # MLP over the continuous view: mixes within each chunk.
        self.continuous_mlp = Sequential(
            Linear(self.chunk_size, hidden, rng=generator), GELU(), Linear(hidden, 1, rng=generator)
        )
        # MLP over the interval view: mixes within each strided sample.
        self.interval_mlp = Sequential(
            Linear(self.n_chunks, hidden, rng=generator), GELU(), Linear(hidden, 1, rng=generator)
        )
        self.head = Linear(self.n_chunks + self.chunk_size, config.horizon, rng=generator)

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        batch, length, channels = x.shape
        normalized, last = self.normalizer.normalize(x)
        series = normalized.transpose(0, 2, 1).reshape(batch * channels, length)

        # Continuous view: [b*c, n_chunks, chunk] -> one value per chunk.
        continuous = series.reshape(batch * channels, self.n_chunks, self.chunk_size)
        continuous_features = self.continuous_mlp(continuous).squeeze(-1)          # [b*c, n_chunks]

        # Interval view: [b*c, chunk, n_chunks] (stride = chunk) -> one value per offset.
        interval = continuous.transpose(0, 2, 1)
        interval_features = self.interval_mlp(interval).squeeze(-1)                 # [b*c, chunk]

        fused = concatenate([continuous_features, interval_features], axis=-1)
        forecast = self.head(fused).reshape(batch, channels, self.config.horizon)
        return self.normalizer.denormalize(forecast.transpose(0, 2, 1), last)
