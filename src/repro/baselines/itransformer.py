"""iTransformer baseline (Liu et al., ICLR 2024).

The "inverted" Transformer: each *variate* (channel) becomes one token whose
embedding is the whole input window; self-attention therefore exchanges
information across channels rather than across time.  A linear head maps
each variate token back to the forecast horizon.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import Dropout, LayerNorm, Linear, ModuleList, Tensor
from ..core.base import ForecastModel
from ..core.revin import LastValueNormalizer
from .patchtst import TransformerEncoderLayer

__all__ = ["ITransformer"]


class ITransformer(ForecastModel):
    """Variate-token Transformer encoder."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        embed_dim = config.hidden_dim
        self.normalizer = LastValueNormalizer()
        self.variate_embedding = Linear(config.input_length, embed_dim, rng=generator)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    embed_dim, config.n_heads, dropout=config.dropout, rng=generator
                )
                for _ in range(config.n_layers)
            ]
        )
        self.norm = LayerNorm(embed_dim)
        self.dropout = Dropout(config.dropout, rng=generator)
        self.head = Linear(embed_dim, config.horizon, rng=generator)

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        normalized, last = self.normalizer.normalize(x)
        variate_tokens = self.variate_embedding(normalized.transpose(0, 2, 1))  # [b, c, d]
        for layer in self.layers:
            variate_tokens = layer(variate_tokens)
        variate_tokens = self.norm(variate_tokens)
        forecast = self.head(self.dropout(variate_tokens)).transpose(0, 2, 1)   # [b, L, c]
        return self.normalizer.denormalize(forecast, last)
