"""DLinear and NLinear baselines (Zeng et al., AAAI 2023).

DLinear decomposes the input into trend (moving average) and seasonal
(residual) components and forecasts each with a single linear layer shared
across channels.  NLinear subtracts the last value, applies one linear
layer and adds the value back.  Both are the strongest *lightweight*
baselines in the paper's Table III.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import Linear, Tensor
from ..core.base import ForecastModel
from ..core.revin import LastValueNormalizer
from .common import moving_average_matrix

__all__ = ["DLinear", "NLinear"]


class DLinear(ForecastModel):
    """Decomposition + per-component linear forecasting."""

    # forward is shape-determined: decomposition is a fixed matrix product,
    # so the compiled-plan trace replays exactly for any input values.
    supports_compiled_plan = True

    def __init__(
        self,
        config: ModelConfig,
        kernel_size: int = 25,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        self.trend_linear = Linear(config.input_length, config.horizon, rng=generator)
        self.seasonal_linear = Linear(config.input_length, config.horizon, rng=generator)
        self._average = Tensor(moving_average_matrix(config.input_length, kernel_size))

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        series = x.transpose(0, 2, 1)                      # [b, c, T]
        trend = series @ self._average.transpose(1, 0)     # moving average along time
        seasonal = series - trend
        forecast = self.trend_linear(trend) + self.seasonal_linear(seasonal)  # [b, c, L]
        return forecast.transpose(0, 2, 1)


class NLinear(ForecastModel):
    """Last-value normalised single linear layer."""

    # Shape-determined like DLinear: last-value normalisation is a slice
    # plus elementwise ops, nothing value-dependent in the trace structure.
    supports_compiled_plan = True

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        self.linear = Linear(config.input_length, config.horizon, rng=generator)
        self.normalizer = LastValueNormalizer()

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        normalized, last = self.normalizer.normalize(x)
        forecast = self.linear(normalized.transpose(0, 2, 1)).transpose(0, 2, 1)
        return self.normalizer.denormalize(forecast, last)
