"""FourierGNN-style baseline (Yi et al., NeurIPS 2023), simplified.

FourierGNN treats every (variate, timestamp) value as a node of a
hypervariate graph and performs graph convolutions in the Fourier domain.
Without complex-number autograd support, this implementation keeps the two
defining ingredients with real arithmetic:

* the series is moved into the frequency domain by multiplying with a real
  DFT basis (cosine and sine matrices);
* learnable per-frequency mixing layers (shared across channels, plus a
  cross-channel mixing layer) act as the Fourier-domain graph operator;
* the result is mapped back to the time domain with the transposed basis and
  projected to the forecast horizon.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import GELU, Linear, Sequential, Tensor
from ..core.base import ForecastModel
from ..core.revin import LastValueNormalizer
from .common import dft_basis

__all__ = ["FGNN"]


class FGNN(ForecastModel):
    """Frequency-domain mixing forecaster."""

    def __init__(
        self,
        config: ModelConfig,
        n_frequencies: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        self.n_frequencies = n_frequencies or max(8, config.input_length // 4)
        cos_basis, sin_basis = dft_basis(config.input_length, self.n_frequencies)
        self._cos = Tensor(cos_basis)   # [T, F]
        self._sin = Tensor(sin_basis)
        hidden = config.hidden_dim
        self.frequency_mixer = Sequential(
            Linear(2 * self.n_frequencies, hidden, rng=generator),
            GELU(),
            Linear(hidden, 2 * self.n_frequencies, rng=generator),
        )
        self.channel_mixer = Linear(config.n_channels, config.n_channels, rng=generator)
        self.normalizer = LastValueNormalizer()
        self.head = Linear(config.input_length, config.horizon, rng=generator)

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        normalized, last = self.normalizer.normalize(x)
        series = normalized.transpose(0, 2, 1)                    # [b, c, T]

        real = series @ self._cos                                  # [b, c, F]
        imaginary = series @ self._sin
        spectrum = nn_concat(real, imaginary)                      # [b, c, 2F]
        mixed = self.frequency_mixer(spectrum) + spectrum
        mixed_real = mixed[:, :, : self.n_frequencies]
        mixed_imag = mixed[:, :, self.n_frequencies :]
        # Back to the time domain via the transposed basis (scaled inverse DFT).
        reconstructed = (
            mixed_real @ self._cos.transpose(1, 0) + mixed_imag @ self._sin.transpose(1, 0)
        ) * (2.0 / self.config.input_length)

        cross_channel = self.channel_mixer(reconstructed.transpose(0, 2, 1)).transpose(0, 2, 1)
        forecast = self.head(reconstructed + cross_channel)        # [b, c, L]
        return self.normalizer.denormalize(forecast.transpose(0, 2, 1), last)


def nn_concat(real: Tensor, imaginary: Tensor) -> Tensor:
    """Concatenate real and imaginary parts along the last axis."""
    from ..nn import concatenate

    return concatenate([real, imaginary], axis=-1)
