"""PatchTST baseline (Nie et al., ICLR 2023).

Channel-independent patching followed by a standard Transformer encoder
(multi-head attention + LayerNorm + feed-forward) over patch tokens, with a
flattened linear forecasting head.  This is the strongest Transformer
baseline in the paper and the architecture LiPFormer "lightweights".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import (
    Dropout,
    GELU,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadSelfAttention,
    Sequential,
    Tensor,
)
from ..core.base import ForecastModel
from ..core.patching import patchify
from ..core.revin import LastValueNormalizer
from .common import sinusoidal_positional_encoding

__all__ = ["TransformerEncoderLayer", "PatchTST"]


class TransformerEncoderLayer(Module):
    """Pre-norm Transformer encoder block: MHA + FFN, both with residuals."""

    def __init__(
        self,
        embed_dim: int,
        n_heads: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        ffn_dim = ffn_dim if ffn_dim is not None else 4 * embed_dim
        self.attention = MultiHeadSelfAttention(embed_dim, n_heads, dropout=dropout, rng=rng)
        self.norm1 = LayerNorm(embed_dim)
        self.norm2 = LayerNorm(embed_dim)
        self.ffn = Sequential(
            Linear(embed_dim, ffn_dim, rng=rng),
            GELU(),
            Dropout(dropout, rng=rng),
            Linear(ffn_dim, embed_dim, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        return x + self.ffn(self.norm2(x))


class PatchTST(ForecastModel):
    """Patch-wise Transformer with channel independence."""

    # forward is shape-determined (patching, attention, reshapes all depend
    # on trace-time shapes only), so compiled plans replay it exactly.
    supports_compiled_plan = True

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        embed_dim = config.hidden_dim
        self.normalizer = LastValueNormalizer()
        self.patch_embedding = Linear(config.patch_length, embed_dim, rng=generator)
        self.positional = Tensor(sinusoidal_positional_encoding(config.n_patches, embed_dim))
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    embed_dim, config.n_heads, dropout=config.dropout, rng=generator
                )
                for _ in range(config.n_layers)
            ]
        )
        self.dropout = Dropout(config.dropout, rng=generator)
        self.head = Linear(config.n_patches * embed_dim, config.horizon, rng=generator)

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        batch, _, channels = x.shape
        normalized, last = self.normalizer.normalize(x)
        patches = patchify(normalized, self.config.patch_length)       # [b*c, n, pl]
        tokens = self.patch_embedding(patches) + self.positional        # [b*c, n, d]
        for layer in self.layers:
            tokens = layer(tokens)
        flattened = tokens.reshape(batch * channels, self.config.n_patches * self.config.hidden_dim)
        forecast = self.head(self.dropout(flattened))                   # [b*c, L]
        forecast = forecast.reshape(batch, channels, self.config.horizon).transpose(0, 2, 1)
        return self.normalizer.denormalize(forecast, last)
