"""Shared utilities for the baseline forecasters."""

from __future__ import annotations

import numpy as np

from ..nn import Tensor

__all__ = ["sinusoidal_positional_encoding", "moving_average_matrix", "dft_basis"]


def sinusoidal_positional_encoding(length: int, dim: int) -> np.ndarray:
    """Classic sine/cosine positional encoding of shape ``[length, dim]``."""
    position = np.arange(length, dtype=np.float64)[:, None]
    div_term = np.exp(np.arange(0, dim, 2, dtype=np.float64) * (-np.log(10000.0) / dim))
    encoding = np.zeros((length, dim), dtype=np.float64)
    encoding[:, 0::2] = np.sin(position * div_term)
    encoding[:, 1::2] = np.cos(position * div_term[: (dim - dim // 2)])
    return encoding.astype(np.float32)


def moving_average_matrix(length: int, kernel_size: int) -> np.ndarray:
    """Return a ``[length, length]`` matrix that applies a centred moving average.

    Multiplying a series (as a row vector per sample) by the transpose of
    this matrix yields its trend component, replicating the decomposition
    used by DLinear and Autoformer without a convolution primitive.  Edges
    are handled by shrinking the window (equivalent to edge padding).
    """
    if kernel_size < 1:
        raise ValueError("kernel_size must be positive")
    half = kernel_size // 2
    matrix = np.zeros((length, length), dtype=np.float32)
    for t in range(length):
        start = max(0, t - half)
        stop = min(length, t + half + 1)
        matrix[t, start:stop] = 1.0 / (stop - start)
    return matrix


def dft_basis(length: int, n_frequencies: int) -> tuple[np.ndarray, np.ndarray]:
    """Real DFT basis (cosine, sine) matrices of shape ``[length, n_frequencies]``.

    Used by the FourierGNN-style baseline to move a series into the
    frequency domain with plain matrix multiplication, which keeps the
    operation differentiable in the autograd engine.
    """
    t = np.arange(length, dtype=np.float64)[:, None]
    k = np.arange(n_frequencies, dtype=np.float64)[None, :]
    angle = 2.0 * np.pi * t * k / length
    return np.cos(angle).astype(np.float32), np.sin(angle).astype(np.float32)
