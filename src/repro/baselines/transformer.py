"""Point-wise Transformer baselines: vanilla Transformer, Informer, Autoformer.

These three heavyweight models share a point-wise (per-timestamp) token
embedding and a stack of encoder layers; they differ in how the encoder
processes tokens:

* ``VanillaTransformer`` — the standard encoder (MHA + LN + FFN) applied to
  all ``T`` tokens, complexity ``O(T^2)``;
* ``Informer`` — adds Informer's *distilling*: after each encoder layer the
  sequence length is halved by average pooling, approximating the effect of
  ProbSparse attention + self-attention distilling on cost;
* ``Autoformer`` — applies series decomposition (moving average) inside each
  block and processes the seasonal part with attention while accumulating
  the trend part, following Autoformer's progressive decomposition.

All three use a flattened linear head for direct multi-step forecasting so
that the comparison with LiPFormer isolates the encoder cost, matching how
the paper deploys them for Table VII and Table XII.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import Dropout, LayerNorm, Linear, ModuleList, Tensor
from ..core.base import ForecastModel
from ..core.revin import LastValueNormalizer
from .common import moving_average_matrix, sinusoidal_positional_encoding
from .patchtst import TransformerEncoderLayer

__all__ = ["VanillaTransformer", "Informer", "Autoformer"]


class _PointWiseTransformerBase(ForecastModel):
    """Shared embedding / head machinery for the point-wise models."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        self._rng = generator
        embed_dim = config.hidden_dim
        self.normalizer = LastValueNormalizer()
        self.value_embedding = Linear(config.n_channels, embed_dim, rng=generator)
        self.positional = Tensor(sinusoidal_positional_encoding(config.input_length, embed_dim))
        self.dropout = Dropout(config.dropout, rng=generator)
        self.head = Linear(embed_dim, config.horizon * config.n_channels, rng=generator)

    def _embed(self, normalized: Tensor) -> Tensor:
        return self.value_embedding(normalized) + self.positional

    def _project(self, encoded: Tensor, batch: int) -> Tensor:
        pooled = encoded.mean(axis=1)                                   # [b, d]
        flat = self.head(self.dropout(pooled))                           # [b, L*c]
        return flat.reshape(batch, self.config.horizon, self.config.n_channels)


class VanillaTransformer(_PointWiseTransformerBase):
    """Standard Transformer encoder over per-timestamp tokens."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(config, rng=rng)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    config.hidden_dim, config.n_heads, dropout=config.dropout, rng=self._rng
                )
                for _ in range(config.n_layers)
            ]
        )

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        batch = x.shape[0]
        normalized, last = self.normalizer.normalize(x)
        tokens = self._embed(normalized)
        for layer in self.layers:
            tokens = layer(tokens)
        return self.normalizer.denormalize(self._project(tokens, batch), last)


class Informer(_PointWiseTransformerBase):
    """Transformer encoder with Informer-style sequence distilling."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(config, rng=rng)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    config.hidden_dim, config.n_heads, dropout=config.dropout, rng=self._rng
                )
                for _ in range(config.n_layers)
            ]
        )

    @staticmethod
    def _distill(tokens: Tensor) -> Tensor:
        """Halve the token count by averaging adjacent pairs."""
        batch, length, dim = tokens.shape
        if length < 2:
            return tokens
        even_length = (length // 2) * 2
        trimmed = tokens[:, :even_length, :]
        pairs = trimmed.reshape(batch, even_length // 2, 2, dim)
        return pairs.mean(axis=2)

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        batch = x.shape[0]
        normalized, last = self.normalizer.normalize(x)
        tokens = self._embed(normalized)
        for index, layer in enumerate(self.layers):
            tokens = layer(tokens)
            if index < len(self.layers) - 1:
                tokens = self._distill(tokens)
        return self.normalizer.denormalize(self._project(tokens, batch), last)


class Autoformer(_PointWiseTransformerBase):
    """Decomposition Transformer with progressive trend accumulation."""

    def __init__(
        self,
        config: ModelConfig,
        kernel_size: int = 25,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(config, rng=rng)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    config.hidden_dim, config.n_heads, dropout=config.dropout, rng=self._rng
                )
                for _ in range(config.n_layers)
            ]
        )
        self._average = Tensor(moving_average_matrix(config.input_length, kernel_size))
        self.trend_head = Linear(config.input_length, config.horizon, rng=self._rng)

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        batch = x.shape[0]
        normalized, last = self.normalizer.normalize(x)
        # Progressive decomposition: attention models the seasonal part,
        # a linear layer extrapolates the trend part.
        series = normalized.transpose(0, 2, 1)                    # [b, c, T]
        trend = series @ self._average.transpose(1, 0)
        seasonal = (series - trend).transpose(0, 2, 1)             # [b, T, c]

        tokens = self._embed(seasonal)
        for layer in self.layers:
            tokens = layer(tokens)
        seasonal_forecast = self._project(tokens, batch)            # [b, L, c]
        trend_forecast = self.trend_head(trend).transpose(0, 2, 1)  # [b, L, c]
        return self.normalizer.denormalize(seasonal_forecast + trend_forecast, last)
