"""Reformer-style baseline: chunked (bucketed) attention over point tokens.

Reformer (Kitaev et al., ICLR 2020) reduces the O(T^2) attention cost by
restricting attention to hash buckets.  Without locality-sensitive hashing
machinery, the defining cost structure is preserved here by *chunked local
attention*: tokens attend only within fixed-size contiguous chunks, giving
O(T·chunk) cost.  The model otherwise follows the point-wise Transformer
baseline (value embedding + positional encoding + flattened head).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import ModuleList, Tensor
from .patchtst import TransformerEncoderLayer
from .transformer import _PointWiseTransformerBase

__all__ = ["Reformer"]


class Reformer(_PointWiseTransformerBase):
    """Point-wise Transformer with chunked local attention."""

    def __init__(
        self,
        config: ModelConfig,
        chunk_size: int = 24,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(config, rng=rng)
        if chunk_size < 2:
            raise ValueError(f"chunk_size must be at least 2, got {chunk_size}")
        self.chunk_size = min(chunk_size, config.input_length)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(
                    config.hidden_dim, config.n_heads, dropout=config.dropout, rng=self._rng
                )
                for _ in range(config.n_layers)
            ]
        )

    def _chunked(self, tokens: Tensor, layer: TransformerEncoderLayer) -> Tensor:
        """Apply an encoder layer independently to contiguous chunks."""
        batch, length, dim = tokens.shape
        chunk = self.chunk_size
        usable = (length // chunk) * chunk
        body = tokens[:, :usable, :].reshape(batch * (usable // chunk), chunk, dim)
        body = layer(body).reshape(batch, usable, dim)
        if usable == length:
            return body
        tail = layer(tokens[:, usable:, :])
        from ..nn import concatenate

        return concatenate([body, tail], axis=1)

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        batch = x.shape[0]
        normalized, last = self.normalizer.normalize(x)
        tokens = self._embed(normalized)
        for layer in self.layers:
            tokens = self._chunked(tokens, layer)
        return self.normalizer.denormalize(self._project(tokens, batch), last)
