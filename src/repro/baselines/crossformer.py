"""Crossformer-style baseline (Zhang & Yan, ICLR 2023), simplified.

Crossformer segments each channel into patches and applies a *two-stage*
attention: first across time segments within a channel, then across channels
for each segment (its Dimension-Segment-Wise attention).  This captures
cross-dimension dependency that channel-independent models ignore.  The
router mechanism of the original is omitted; the two-stage attention over
patch embeddings is the defining ingredient kept here.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..core.base import ForecastModel
from ..core.patching import patchify
from ..core.revin import LastValueNormalizer
from ..nn import Dropout, Linear, Tensor
from ..nn import SelfAttention
from .common import sinusoidal_positional_encoding

__all__ = ["Crossformer"]


class Crossformer(ForecastModel):
    """Two-stage (time, then channel) attention over patch segments."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        embed_dim = config.hidden_dim
        self.normalizer = LastValueNormalizer()
        self.segment_embedding = Linear(config.patch_length, embed_dim, rng=generator)
        self.positional = Tensor(sinusoidal_positional_encoding(config.n_patches, embed_dim))
        self.time_attention = SelfAttention(embed_dim, dropout=config.dropout, rng=generator)
        self.channel_attention = SelfAttention(embed_dim, dropout=config.dropout, rng=generator)
        self.dropout = Dropout(config.dropout, rng=generator)
        self.head = Linear(config.n_patches * embed_dim, config.horizon, rng=generator)

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        batch, _, channels = x.shape
        n_patches = self.config.n_patches
        embed_dim = self.config.hidden_dim
        normalized, last = self.normalizer.normalize(x)

        segments = patchify(normalized, self.config.patch_length)           # [b*c, n, pl]
        tokens = self.segment_embedding(segments) + self.positional          # [b*c, n, d]

        # Stage 1: attention across time segments within each channel.
        tokens = self.time_attention(tokens) + tokens

        # Stage 2: attention across channels for each time segment.
        per_channel = tokens.reshape(batch, channels, n_patches, embed_dim)
        per_segment = per_channel.transpose(0, 2, 1, 3).reshape(batch * n_patches, channels, embed_dim)
        per_segment = self.channel_attention(per_segment) + per_segment
        tokens = (
            per_segment.reshape(batch, n_patches, channels, embed_dim)
            .transpose(0, 2, 1, 3)
            .reshape(batch * channels, n_patches, embed_dim)
        )

        flattened = tokens.reshape(batch * channels, n_patches * embed_dim)
        forecast = self.head(self.dropout(flattened)).reshape(batch, channels, self.config.horizon)
        return self.normalizer.denormalize(forecast.transpose(0, 2, 1), last)
