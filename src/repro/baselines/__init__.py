"""``repro.baselines`` — re-implementations of the paper's comparison models."""

from .crossformer import Crossformer
from .dlinear import DLinear, NLinear
from .fgnn import FGNN
from .itransformer import ITransformer
from .lightts import LightTS
from .patchtst import PatchTST, TransformerEncoderLayer
from .reformer import Reformer
from .registry import MODEL_REGISTRY, PAPER_BASELINES, available_models, create_model
from .tide import ResidualMLPBlock, TiDE
from .timemixer import TimeMixer
from .transformer import Autoformer, Informer, VanillaTransformer

__all__ = [
    "Crossformer",
    "DLinear",
    "NLinear",
    "FGNN",
    "ITransformer",
    "LightTS",
    "PatchTST",
    "Reformer",
    "TransformerEncoderLayer",
    "MODEL_REGISTRY",
    "PAPER_BASELINES",
    "available_models",
    "create_model",
    "ResidualMLPBlock",
    "TiDE",
    "TimeMixer",
    "Autoformer",
    "Informer",
    "VanillaTransformer",
]
