"""TiDE baseline (Das et al., 2023): an MLP encoder-decoder with covariates.

TiDE is the only baseline in the paper that also consumes future covariates,
which is why it is the runner-up on the two covariate datasets (Table III).
This implementation follows the channel-independent dense encoder-decoder
structure: residual MLP blocks encode the flattened history together with
projected future covariates, decode into per-step vectors, and a temporal
decoder maps each step (plus its covariate projection) to the final value.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import ModelConfig
from ..nn import Dropout, Linear, Module, ReLU, Sequential, Tensor, as_tensor, concatenate
from ..nn import functional as F
from ..core.base import ForecastModel
from ..core.revin import LastValueNormalizer

__all__ = ["ResidualMLPBlock", "TiDE"]


class ResidualMLPBlock(Module):
    """TiDE's residual block: Linear-ReLU-Linear with a skip projection."""

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int,
        out_dim: int,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.net = Sequential(
            Linear(in_dim, hidden_dim, rng=rng),
            ReLU(),
            Linear(hidden_dim, out_dim, rng=rng),
            Dropout(dropout, rng=rng),
        )
        self.skip = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x) + self.skip(x)


class TiDE(ForecastModel):
    """Time-series dense encoder with future-covariate projection."""

    supports_covariates = True

    def __init__(
        self,
        config: ModelConfig,
        covariate_projection_dim: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        hidden = config.hidden_dim
        self.normalizer = LastValueNormalizer()
        self.covariate_projection_dim = covariate_projection_dim
        self._covariate_dim = config.covariate_numerical_dim + len(
            config.covariate_categorical_cardinalities
        )
        self.uses_covariates = self._covariate_dim > 0
        if self.uses_covariates:
            self.covariate_projection = ResidualMLPBlock(
                self._covariate_dim, hidden, covariate_projection_dim, config.dropout, rng=generator
            )
            encoder_in = config.input_length + config.horizon * covariate_projection_dim
            decoder_step_in = hidden // 2 + covariate_projection_dim
        else:
            encoder_in = config.input_length
            decoder_step_in = hidden // 2
        self.encoder = ResidualMLPBlock(encoder_in, hidden, hidden, config.dropout, rng=generator)
        self.decoder = ResidualMLPBlock(
            hidden, hidden, config.horizon * (hidden // 2), config.dropout, rng=generator
        )
        self.temporal_decoder = ResidualMLPBlock(decoder_step_in, hidden // 2, 1, config.dropout, rng=generator)
        self.residual_head = Linear(config.input_length, config.horizon, rng=generator)

    # ------------------------------------------------------------------ #
    def _project_covariates(
        self,
        future_numerical: Optional[np.ndarray],
        future_categorical: Optional[np.ndarray],
        batch: int,
    ) -> Optional[Tensor]:
        if not self.uses_covariates:
            return None
        pieces = []
        if future_numerical is not None:
            pieces.append(as_tensor(np.asarray(future_numerical, dtype=np.float32)))
        if future_categorical is not None:
            pieces.append(as_tensor(np.asarray(future_categorical, dtype=np.float32)))
        if not pieces:
            # Covariates are part of the architecture but were not supplied for
            # this call: fall back to an all-zero covariate block so the dense
            # encoder still sees its expected input width.
            zeros = np.zeros((batch, self.config.horizon, self._covariate_dim), dtype=np.float32)
            pieces.append(as_tensor(zeros))
        combined = concatenate(pieces, axis=-1) if len(pieces) > 1 else pieces[0]
        if combined.shape[-1] != self._covariate_dim:
            raise ValueError(
                f"expected {self._covariate_dim} covariate channels, got {combined.shape[-1]}"
            )
        return self.covariate_projection(combined)  # [b, L, proj]

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        batch, _, channels = x.shape
        horizon = self.config.horizon
        half_hidden = self.config.hidden_dim // 2
        normalized, last = self.normalizer.normalize(x)
        history = normalized.transpose(0, 2, 1)  # [b, c, T]

        projected = self._project_covariates(future_numerical, future_categorical, batch)
        if projected is not None:
            flat_covariates = projected.reshape(batch, 1, horizon * self.covariate_projection_dim)
            flat_covariates = flat_covariates.broadcast_to(
                (batch, channels, horizon * self.covariate_projection_dim)
            )
            encoder_input = concatenate([history, flat_covariates], axis=-1)
        else:
            encoder_input = history

        encoded = self.encoder(encoder_input)                                     # [b, c, hidden]
        decoded = self.decoder(encoded).reshape(batch, channels, horizon, half_hidden)
        if projected is not None:
            step_covariates = projected.unsqueeze(1).broadcast_to(
                (batch, channels, horizon, self.covariate_projection_dim)
            )
            decoded = concatenate([decoded, step_covariates], axis=-1)
        per_step = self.temporal_decoder(decoded).squeeze(-1)                      # [b, c, L]
        forecast = per_step + self.residual_head(history)                          # global skip
        return self.normalizer.denormalize(forecast.transpose(0, 2, 1), last)
