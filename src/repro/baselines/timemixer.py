"""TimeMixer-style baseline (Wang et al., 2024), simplified.

TimeMixer forecasts with decomposable multi-scale mixing: the input is
downsampled into several temporal scales, each scale is decomposed into
seasonal and trend parts which are mixed across scales with MLPs, and a
per-scale prediction head ensembles the forecasts.  This implementation
keeps the two defining ingredients — multi-scale downsampling and
season/trend mixing MLPs — at a size comparable to the original small
configuration.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import ModelConfig
from ..nn import GELU, Linear, ModuleList, Sequential, Tensor
from ..core.base import ForecastModel
from ..core.revin import LastValueNormalizer
from .common import moving_average_matrix

__all__ = ["TimeMixer"]


class TimeMixer(ForecastModel):
    """Multi-scale season/trend mixing MLP forecaster."""

    def __init__(
        self,
        config: ModelConfig,
        n_scales: int = 3,
        kernel_size: int = 25,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(config)
        generator = rng if rng is not None else np.random.default_rng(config.seed)
        self.n_scales = n_scales
        self.normalizer = LastValueNormalizer()
        self._scale_lengths: List[int] = []
        self._pool_matrices: List[Tensor] = []
        self._average_matrices: List[Tensor] = []
        length = config.input_length
        for scale in range(n_scales):
            self._scale_lengths.append(length)
            self._average_matrices.append(Tensor(moving_average_matrix(length, kernel_size)))
            if scale < n_scales - 1:
                next_length = max(length // 2, 4)
                pool = np.zeros((next_length, length), dtype=np.float32)
                ratio = length / next_length
                for row in range(next_length):
                    start = int(row * ratio)
                    stop = max(start + int(ratio), start + 1)
                    pool[row, start:stop] = 1.0 / (stop - start)
                self._pool_matrices.append(Tensor(pool))
                length = next_length

        hidden = config.hidden_dim
        self.seasonal_mixers = ModuleList(
            [
                Sequential(Linear(l, hidden, rng=generator), GELU(), Linear(hidden, l, rng=generator))
                for l in self._scale_lengths
            ]
        )
        self.trend_mixers = ModuleList(
            [
                Sequential(Linear(l, hidden, rng=generator), GELU(), Linear(hidden, l, rng=generator))
                for l in self._scale_lengths
            ]
        )
        self.heads = ModuleList(
            [Linear(l, config.horizon, rng=generator) for l in self._scale_lengths]
        )

    def forward(
        self,
        x: Tensor,
        future_numerical: Optional[np.ndarray] = None,
        future_categorical: Optional[np.ndarray] = None,
    ) -> Tensor:
        self._validate_input(x)
        normalized, last = self.normalizer.normalize(x)
        series = normalized.transpose(0, 2, 1)  # [b, c, T]

        scales = [series]
        for pool in self._pool_matrices:
            scales.append(scales[-1] @ pool.transpose(1, 0))

        forecast = None
        for index, scale_series in enumerate(scales):
            trend = scale_series @ self._average_matrices[index].transpose(1, 0)
            seasonal = scale_series - trend
            mixed = (
                self.seasonal_mixers[index](seasonal)
                + self.trend_mixers[index](trend)
                + scale_series
            )
            scale_forecast = self.heads[index](mixed)
            forecast = scale_forecast if forecast is None else forecast + scale_forecast
        forecast = forecast / float(len(scales))
        return self.normalizer.denormalize(forecast.transpose(0, 2, 1), last)
