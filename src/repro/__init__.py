"""LiPFormer reproduction: lightweight patch-wise Transformer forecasting.

This package reproduces "Towards Lightweight Time Series Forecasting: A
Patch-Wise Transformer with Weak Data Enriching" (ICDE 2025).  The public
API groups into:

* ``repro.nn``          — NumPy autograd / layers / optimizers substrate
* ``repro.data``        — synthetic benchmark datasets and the data pipeline
* ``repro.core``        — LiPFormer (Base Predictor, Covariate Encoder, dual
                          encoder, ablation variants)
* ``repro.baselines``   — DLinear, PatchTST, TiDE, iTransformer, TimeMixer,
                          FGNN, Transformer/Informer/Autoformer
* ``repro.training``    — trainers, metrics, experiment runner
* ``repro.serving``     — micro-batched inference service + model registry
* ``repro.streaming``   — multi-tenant online ingestion + streaming forecasts
* ``repro.cluster``     — sharded multi-replica serving with consistent-hash
                          tenant partitioning, incremental checkpoints,
                          replica failover and snapshot/restore persistence
* ``repro.runtime``     — parallel execution layer: reader/writer locking
                          and pluggable per-shard fan-out executors
* ``repro.profiling``   — parameters, MACs, timing, edge emulation
* ``repro.experiments`` — drivers regenerating every paper table / figure
"""

from .config import ModelConfig, TrainingConfig
from .core import LiPFormer
from .baselines import available_models, create_model
from .cluster import HashRing, ShardedForecaster
from .data import load_dataset, prepare_forecasting_data
from .runtime import PoolExecutor, SerialExecutor
from .serving import ForecastService, ModelRegistry
from .streaming import SeriesStore, StreamingForecaster
from .training import Trainer, run_experiment

__version__ = "1.0.0"

__all__ = [
    "ModelConfig",
    "TrainingConfig",
    "LiPFormer",
    "available_models",
    "create_model",
    "load_dataset",
    "prepare_forecasting_data",
    "ForecastService",
    "ModelRegistry",
    "SeriesStore",
    "StreamingForecaster",
    "HashRing",
    "ShardedForecaster",
    "SerialExecutor",
    "PoolExecutor",
    "Trainer",
    "run_experiment",
    "__version__",
]
