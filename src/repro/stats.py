"""Shared helpers for counter dataclasses (the ``*Stats`` objects).

The serving, streaming and cluster layers each expose a small dataclass of
monotonic counters that must support the same three operations: zeroing
between benchmark phases, summing across shards/replicas, and exporting as
a plain dict.  Keeping the field loops in one place means a newly added
counter field participates in ``reset``/``merge``/``as_dict`` everywhere
automatically — the only per-class decision is which fields aggregate by
``max`` instead of ``+`` (gauges like ``largest_batch``), declared via
:attr:`CounterStats.MAXED`.

These same field loops back the ``repro.obs`` metrics-registry views
(:func:`repro.obs.register_stats`): the registry reads each component's
``stats_snapshot()`` through :func:`counters_dict`, so a Prometheus export
and a direct ``stats_snapshot()`` can never disagree on a field.
"""

from __future__ import annotations

from dataclasses import fields
from typing import ClassVar, Dict, Iterable, Sequence, Tuple, Type, TypeVar

__all__ = ["merge_counters", "reset_counters", "counters_dict", "CounterStats"]

T = TypeVar("T")


def merge_counters(cls: Type[T], stats: Iterable[T], maxed: Sequence[str] = ()) -> T:
    """Aggregate counter dataclasses field-by-field into a new instance.

    Fields named in ``maxed`` take the maximum across inputs; every other
    field is summed.  Inputs are never mutated.
    """
    merged = cls()
    for stat in stats:
        for field_ in fields(cls):
            current = getattr(merged, field_.name)
            incoming = getattr(stat, field_.name)
            setattr(
                merged,
                field_.name,
                max(current, incoming) if field_.name in maxed else current + incoming,
            )
    return merged


def reset_counters(stats) -> None:
    """Zero a counter dataclass in place (back to each field's default)."""
    for field_ in fields(stats):
        setattr(stats, field_.name, field_.default)


def counters_dict(stats) -> Dict[str, object]:
    """Field ``name -> value`` for a counter dataclass."""
    return {field_.name: getattr(stats, field_.name) for field_ in fields(stats)}


class CounterStats:
    """Mixin giving a counter dataclass uniform ``reset``/``merge``/``as_dict``.

    Subclasses are regular ``@dataclass``-decorated classes; fields that
    aggregate by ``max`` instead of ``+`` (high-watermark gauges) are named
    in the ``MAXED`` class variable.  Subclasses may extend ``as_dict`` to
    append derived ratios on top of the raw counters.
    """

    MAXED: ClassVar[Tuple[str, ...]] = ()

    def reset(self) -> None:
        """Zero every counter (e.g. between benchmark phases)."""
        reset_counters(self)

    @classmethod
    def merge(cls: Type[T], stats: Iterable[T]) -> T:
        """Aggregate many instances: counters add, ``MAXED`` fields max."""
        return merge_counters(cls, stats, maxed=cls.MAXED)

    def as_dict(self) -> Dict[str, object]:
        """Raw counters as a plain dict (see :func:`counters_dict`)."""
        return counters_dict(self)
