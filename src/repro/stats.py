"""Shared helpers for counter dataclasses (the ``*Stats`` objects).

The serving, streaming and cluster layers each expose a small dataclass of
monotonic counters that must support the same two operations: zeroing
between benchmark phases and summing across shards/replicas.  Keeping the
field loop in one place means a newly added counter field participates in
``reset``/``merge`` everywhere automatically — the only per-class decision
is which fields aggregate by ``max`` instead of ``+`` (gauges like
``largest_batch``), passed declaratively.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Iterable, Sequence, Type, TypeVar

__all__ = ["merge_counters", "reset_counters"]

T = TypeVar("T")


def merge_counters(cls: Type[T], stats: Iterable[T], maxed: Sequence[str] = ()) -> T:
    """Aggregate counter dataclasses field-by-field into a new instance.

    Fields named in ``maxed`` take the maximum across inputs; every other
    field is summed.  Inputs are never mutated.
    """
    merged = cls()
    for stat in stats:
        for field_ in fields(cls):
            current = getattr(merged, field_.name)
            incoming = getattr(stat, field_.name)
            setattr(
                merged,
                field_.name,
                max(current, incoming) if field_.name in maxed else current + incoming,
            )
    return merged


def reset_counters(stats) -> None:
    """Zero a counter dataclass in place (back to each field's default)."""
    for field_ in fields(stats):
        setattr(stats, field_.name, field_.default)
