"""Process-pool executor: ``Executor.map`` across real OS processes.

:class:`~repro.runtime.executor.PoolExecutor` overlaps shard work on
threads, which reaches S cores only while the work is inside BLAS (or
otherwise releases the GIL).  :class:`ProcessExecutor` is the same
strategy interface over worker *processes* — pure-Python task bodies
scale too, at the price of a real constraint: everything that crosses
the boundary must survive the pickle-free wire codec
(:mod:`repro.wire`), so

* the task callable must be addressable as ``module:qualname`` — a
  top-level function (or classmethod/staticmethod reachable by
  attribute path), importable in the worker.  Lambdas, closures and
  bound methods are rejected at submit time with a ``TypeError``, not
  shipped by value;
* arguments and results must be codec-compatible values (nested
  dict/list/str/int/float/bool/None, numpy arrays/scalars, datetimes).

Scheduling is wave-based: each wave sends at most one task to every
worker, then collects every reply.  In-flight data per socketpair is
bounded by one request plus one reply, so a large fan-out can never
deadlock both ends writing into full pipe buffers — and within a wave,
W workers still run W tasks concurrently.  A worker that dies mid-task
settles that task's slot with the failure and is respawned for the next
wave; the batch as a whole honours the executor contract (every task
runs, first failure re-raised after the batch settles).

The worker half lives in this module too: ``python -m
repro.runtime.procpool <fd>`` serves ``call`` requests over the
inherited socketpair until EOF or ``shutdown``.
"""

from __future__ import annotations

import importlib
import sys
import threading
import types
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from .. import wire
from .executor import Executor

__all__ = ["ProcessExecutor", "task_name", "main"]

T = TypeVar("T")
R = TypeVar("R")


def task_name(fn: Callable) -> str:
    """The ``module:qualname`` address a worker re-imports ``fn`` from.

    Raises ``TypeError`` for callables that have no such address —
    lambdas, local closures (qualname contains ``<locals>``), bound
    methods and arbitrary callable instances.  The check runs at submit
    time, where the fix (move the function to module scope) is obvious,
    rather than surfacing as an import error inside a worker.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        raise TypeError(f"{fn!r} is not an importable function")
    # A builtin like ``math.sqrt`` carries ``__self__ = <module math>`` —
    # that's still importable by name; only instance/class binding isn't.
    bound_to = getattr(fn, "__self__", None)
    if "<" in qualname or (bound_to is not None and not isinstance(bound_to, types.ModuleType)):
        raise TypeError(
            f"cannot ship {module}.{qualname} to a worker process: only "
            "importable module-level functions can cross the process "
            "boundary (no lambdas, closures or bound methods)"
        )
    if module == "__main__":
        raise TypeError(
            f"cannot ship __main__.{qualname}: the worker process imports "
            "tasks by module name, and __main__ is a different module there"
        )
    return f"{module}:{qualname}"


def _resolve_task(name: str) -> Callable:
    """Worker-side inverse of :func:`task_name`."""
    module_name, _, qualname = name.partition(":")
    target = importlib.import_module(module_name)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


class _Worker:
    """One pool process: spawn, one round trip per task, dispose."""

    def __init__(self, sys_path: Sequence[str], request_timeout: Optional[float]) -> None:
        self._sock, self.process = wire.spawn_worker("repro.runtime.procpool")
        self.request_timeout = request_timeout
        try:
            self._roundtrip({"cmd": "init", "sys_path": list(sys_path)})
        except BaseException:
            self.dispose()
            raise

    def _roundtrip(self, message: dict) -> dict:
        wire.send_message(self._sock, message)
        reply = wire.recv_message(self._sock, timeout=self.request_timeout)
        if "error" in reply:
            wire.raise_remote(reply["error"])
        return reply

    def call(self, name: str, args: Sequence, kwargs: dict):
        return self._roundtrip(
            {"cmd": "call", "task": name, "args": list(args), "kwargs": kwargs}
        )["result"]

    def dispose(self) -> None:
        """Close the stream (the worker exits on EOF) and reap the process."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        if self.process.poll() is None:
            try:
                self.process.wait(timeout=5.0)
            except Exception:
                self.process.kill()
        self.process.wait()


class ProcessExecutor(Executor):
    """Run tasks on a pool of worker processes (GIL-free parallelism).

    Parameters
    ----------
    max_workers:
        pool width.  Workers spawn lazily on first :meth:`map` and are
        reused across calls, so a long-lived caller pays interpreter
        start-up once, not per fan-out.
    sys_path:
        extra directories appended to each worker's ``sys.path`` before
        it resolves tasks — for task modules that are importable in the
        parent only via path manipulation (tests, scripts).
    request_timeout:
        seconds one task round trip may take before the worker is
        declared dead (``None`` waits forever).
    """

    def __init__(
        self,
        max_workers: int = 2,
        sys_path: Sequence[str] = (),
        request_timeout: Optional[float] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers
        self.sys_path = tuple(sys_path)
        self.request_timeout = request_timeout
        self._workers: List[Optional[_Worker]] = []
        self._lock = threading.Lock()

    def _worker(self, slot: int) -> _Worker:
        with self._lock:
            while len(self._workers) < self.max_workers:
                self._workers.append(None)
            if self._workers[slot] is None:
                self._workers[slot] = _Worker(self.sys_path, self.request_timeout)
            return self._workers[slot]

    def _retire(self, slot: int) -> None:
        with self._lock:
            worker, self._workers[slot] = self._workers[slot], None
        if worker is not None:
            worker.dispose()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        name = task_name(fn)
        results: List[R] = [None] * len(items)  # type: ignore[list-item]
        first_error: Optional[BaseException] = None
        width = min(self.max_workers, len(items))
        for wave_start in range(0, len(items), width):
            wave = list(enumerate(items))[wave_start : wave_start + width]
            # Send the whole wave before collecting any reply: W workers
            # compute concurrently, but at most one request and one reply
            # are ever in a socketpair, so pipe buffers cannot deadlock.
            sent: List[int] = []
            for offset, (index, item) in enumerate(wave):
                try:
                    worker = self._worker(offset)
                    wire.send_message(
                        worker._sock,
                        {"cmd": "call", "task": name, "args": [item], "kwargs": {}},
                    )
                    sent.append(offset)
                except BaseException as error:
                    self._retire(offset)
                    if first_error is None:
                        first_error = error
            for offset, (index, item) in enumerate(wave):
                if offset not in sent:
                    continue
                worker = self._workers[offset]
                try:
                    reply = wire.recv_message(worker._sock, timeout=self.request_timeout)
                except BaseException as error:
                    # Worker crashed (or hung past the budget) mid-task:
                    # settle this slot with the failure, retire the worker
                    # so the next wave gets a fresh process.
                    self._retire(offset)
                    if first_error is None:
                        first_error = error
                    continue
                if "error" in reply:
                    if first_error is None:
                        try:
                            wire.raise_remote(reply["error"])
                        except BaseException as error:
                            first_error = error
                    continue
                results[index] = reply["result"]
        if first_error is not None:
            raise first_error
        return results

    def close(self) -> None:
        with self._lock:
            workers, self._workers = self._workers, []
        for worker in workers:
            if worker is not None:
                worker.dispose()


# ---------------------------------------------------------------------- #
# Worker half.
# ---------------------------------------------------------------------- #
def _serve(channel) -> None:
    """Answer ``init``/``call``/``ping``/``shutdown`` until EOF."""
    while True:
        try:
            message = wire.recv_message(channel)
        except wire.EndOfStream:
            return
        command = message.get("cmd") if isinstance(message, dict) else None
        try:
            if command == "init":
                for path in message.get("sys_path", []):
                    if path not in sys.path:
                        sys.path.append(str(path))
                reply = {"ok": True}
            elif command == "call":
                fn = _resolve_task(str(message["task"]))
                reply = {"result": fn(*message["args"], **message.get("kwargs", {}))}
            elif command == "ping":
                reply = {"ok": True}
            elif command == "shutdown":
                wire.send_message(channel, {"ok": True})
                return
            else:
                reply = {
                    "error": {
                        "type": "ValueError",
                        "message": f"unknown command {command!r}",
                    }
                }
        except Exception as error:
            # Deliberately broad: the task's failure belongs to its slot
            # in the batch, not to the worker — ship it back typed.
            reply = {"error": wire.error_payload(error)}
        wire.send_message(channel, reply)


def main(argv=None) -> None:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if len(argv) != 1:
        raise SystemExit("usage: python -m repro.runtime.procpool <fd>")
    channel = wire.claim_worker_fd(int(argv[0]))
    try:
        _serve(channel)
    finally:
        channel.close()


if __name__ == "__main__":
    main()
