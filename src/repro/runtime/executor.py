"""Execution strategies for fanning work out across shards.

The cluster's fan-out paths (``forecast_all``, ``flush``, checkpoint
collection) are embarrassingly parallel: one independent task per shard,
each dominated by NumPy forward passes that release the GIL inside BLAS.
:class:`Executor` abstracts *how* those tasks run so the policy is a
constructor argument, not a code path:

* :class:`SerialExecutor` — run tasks inline on the calling thread.  Zero
  overhead, fully deterministic scheduling; the right default for tests,
  single-core hosts and debugging.
* :class:`PoolExecutor` — run tasks on a shared
  :class:`concurrent.futures.ThreadPoolExecutor`, so S shards drive S
  cores.  Threads (not processes) suffice because the work is NumPy-bound;
  per-shard locks one level down keep tasks for the *same* shard
  serialised regardless of executor.

Both preserve input order, propagate the first failure *after* every task
has finished (no task is abandoned mid-flight with shard locks held), and
are context managers.  :func:`map_shards` is the one fan-out idiom the
cluster uses: run ``fn`` once per shard id, return ``{shard_id: result}``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor as _ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Sequence, TypeVar

from ..obs.trace import carry_current_span

__all__ = ["Executor", "SerialExecutor", "PoolExecutor", "map_shards"]

T = TypeVar("T")
R = TypeVar("R")


def _settle_then_raise(
    producers: Iterable[Callable[[], R]],
    immediate: tuple = (),
) -> List[R]:
    """Collect every producer's result, then re-raise the first failure.

    The shared collection rule both executors must agree on: a failing
    task does not stop later tasks (its slot settles to ``None``), and the
    first error — in input order — surfaces only after the whole batch has
    run, so callers never observe half-cancelled work.  Exception types in
    ``immediate`` (e.g. ``KeyboardInterrupt`` for inline execution, where
    nothing else is in flight yet) propagate at once instead.
    """
    results: List[R] = []
    first_error: BaseException | None = None
    for produce in producers:
        try:
            results.append(produce())
        except immediate:
            raise
        except BaseException as error:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = error
            results.append(None)  # type: ignore[arg-type]
    if first_error is not None:
        raise first_error
    return results


class Executor:
    """Strategy interface: run independent tasks, keep input order."""

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Run ``fn`` over ``items``; results align with input order.

        Every task runs to completion even if an earlier one fails — the
        first exception (in input order) is re-raised only after the whole
        batch has settled, so callers never observe half-cancelled work.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SerialExecutor(Executor):
    """Run every task inline on the calling thread, in order.

    Honours the same settle-then-raise contract as the pool — except for
    ``KeyboardInterrupt``/``SystemExit``, which propagate immediately: no
    task is in flight between serial items, and grinding through the
    remaining shards' forward passes after a Ctrl-C reads as a hang.
    """

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return _settle_then_raise(
            (lambda item=item: fn(item) for item in items),
            immediate=(KeyboardInterrupt, SystemExit),
        )


class PoolExecutor(Executor):
    """Thread-pool execution: independent tasks overlap across cores.

    Parameters
    ----------
    max_workers:
        pool width; defaults to ``os.cpu_count()``.  The pool is created
        lazily on first use and shared across calls, so a long-lived
        cluster pays thread start-up once, not per flush.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        self._pool: _ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> _ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = _ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="repro-shard"
                )
            return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            # One task gains nothing from a thread hop; run it inline so
            # single-shard clusters keep SerialExecutor performance.
            return [fn(items[0])]
        futures = [self._ensure_pool().submit(fn, item) for item in items]
        # Everything is already in flight, so even interrupts wait for the
        # batch: abandoning futures here would leave shard work running
        # unobserved behind the caller's back.
        return _settle_then_raise(future.result for future in futures)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def map_shards(
    executor: Executor, fn: Callable[[str], R], shard_ids: Sequence[str]
) -> Dict[str, R]:
    """Run ``fn(shard_id)`` for every shard; return ``{shard_id: result}``.

    The returned dict preserves ``shard_ids`` order, so downstream
    aggregation (stat merges, handle collection) stays deterministic
    whatever the executor's scheduling did.

    When request tracing is active, the caller's innermost span rides
    along with ``fn`` (:func:`repro.obs.carry_current_span`), so per-shard
    spans opened inside pool workers still nest under the fan-out's span;
    with tracing off the wrapper is the identity function.
    """
    ids = list(shard_ids)
    return dict(zip(ids, executor.map(carry_current_span(fn), ids)))
