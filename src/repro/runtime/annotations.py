"""Concurrency annotations checked by the project linter (``repro.analysis``).

The serving/streaming/cluster layers have real lock discipline — per-shard
locks, a writer-preferring topology :class:`~repro.runtime.locks.RWLock`,
and per-service mutexes — but Python offers no ``@GuardedBy`` the compiler
enforces.  These markers close that gap: they are **no-ops at runtime**
(cheap metadata attached to the class/function), and the static analyzer
(``python -m repro.analysis``) reads them from the AST to flag any access
of a guarded attribute outside a declared lock context.

Conventions
-----------
``@guarded_by("_pending", "stats", lock="_lock")``
    class decorator: the listed instance attributes may only be read or
    written while ``self._lock`` is held (``with self._lock:`` for plain
    mutexes, ``with self._lock.read():`` / ``.write():`` for an RWLock),
    or inside a method declared ``@requires_lock("_lock")``.

``@requires_lock("_lock")``
    method decorator: every caller must already hold the lock — the
    analyzer treats the whole body as a lock-holding context.  Pair it
    with a runtime ``assert_held()`` where violations should fail fast.

``@unguarded("reason")``
    method decorator: the method runs while the object is not yet (or no
    longer) shared — constructor helpers, single-threaded codecs — and is
    exempt from guarded-attribute checking.  The reason is mandatory so
    exemptions stay adjudicated, not habitual.

``__init__`` and ``__new__`` are always exempt: the object under
construction is not visible to other threads yet.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, TypeVar

__all__ = ["guarded_by", "requires_lock", "unguarded"]

C = TypeVar("C")
F = TypeVar("F", bound=Callable)


def guarded_by(*attributes: str, lock: str = "_lock") -> Callable[[C], C]:
    """Declare that ``attributes`` are protected by ``self.<lock>``.

    Stacks: decorate once per lock when a class partitions its state
    across several locks.  The merged mapping is stored on the class as
    ``__guarded_attributes__`` (attribute name -> lock name).
    """
    if not attributes:
        raise ValueError("guarded_by needs at least one attribute name")

    def decorate(cls: C) -> C:
        declared: Dict[str, str] = dict(getattr(cls, "__guarded_attributes__", {}))
        for name in attributes:
            declared[name] = lock
        cls.__guarded_attributes__ = declared
        return cls

    return decorate


def requires_lock(lock: str = "_lock") -> Callable[[F], F]:
    """Declare that callers must hold ``self.<lock>`` around this method."""

    def decorate(fn: F) -> F:
        held: Tuple[str, ...] = getattr(fn, "__requires_locks__", ())
        fn.__requires_locks__ = held + (lock,)
        return fn

    return decorate


def unguarded(reason: str) -> Callable[[F], F]:
    """Exempt a method from guarded-attribute checking, with a reason."""
    if not reason:
        raise ValueError("unguarded requires a justification string")

    def decorate(fn: F) -> F:
        fn.__unguarded_reason__ = reason
        return fn

    return decorate
