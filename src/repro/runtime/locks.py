"""Reader/writer synchronisation for the parallel execution layer.

The cluster façade has two very different kinds of critical section:

* **routed traffic** (``ingest`` / ``forecast`` / the per-shard fan-outs) —
  frequent, short, and mutually compatible as long as the *topology* (ring
  layout, shard map) stays put; per-shard state is guarded by per-shard
  locks one level down;
* **topology changes** (``add_shard`` / ``remove_shard`` / ``failover`` /
  checkpoints) — rare, and incompatible with everything: a reader that
  observes a half-done rebalance routes a tenant into the void.

A single mutex (PR 3's design) serialises both kinds and caps the whole
cluster at one core.  :class:`RWLock` splits them: any number of readers
proceed concurrently, one writer excludes everyone.  The lock is

* **writer-preferring** — once a writer is waiting, *new* readers queue
  behind it, so a steady stream of traffic cannot starve a rebalance;
* **reentrant** — a thread already holding a read lock may re-enter
  ``read()`` even while a writer waits (blocking it there would deadlock),
  and a thread holding the write lock may nest both ``write()`` and
  ``read()`` sections.  Upgrading (``write()`` while holding only a read
  lock) deadlocks by construction and raises instead.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """Writer-preferring, reentrant reader/writer lock.

    Usage::

        lock = RWLock()
        with lock.read():     # shared: many readers at once
            ...
        with lock.write():    # exclusive: no readers, no other writer
            ...
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0      # threads currently inside read()
        self._waiting_writers = 0     # threads blocked entering write()
        self._writer: int | None = None   # ident of the thread holding write
        self._writer_depth = 0
        self._local = threading.local()   # per-thread read re-entrancy depth

    def _read_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @contextmanager
    def read(self):
        """Shared access; blocks while a writer holds or waits for the lock."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Reading inside one's own write section: already exclusive,
                # just extend the write hold.
                self._writer_depth += 1
                nested_write = True
            else:
                nested_write = False
                depth = self._read_depth()
                if depth == 0:
                    # New readers queue behind waiting writers (preference),
                    # but re-entrant readers pass — they already hold the
                    # lock, and parking them behind the writer they block
                    # would deadlock both.
                    while self._writer is not None or self._waiting_writers:
                        self._cond.wait()
                    self._active_readers += 1
                self._local.depth = depth + 1
        try:
            yield self
        finally:
            with self._cond:
                if nested_write:
                    self._writer_depth -= 1
                else:
                    self._local.depth -= 1
                    if self._local.depth == 0:
                        self._active_readers -= 1
                        if self._active_readers == 0:
                            self._cond.notify_all()

    @contextmanager
    def write(self):
        """Exclusive access; reentrant for the thread already writing."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
            else:
                if self._read_depth():
                    raise RuntimeError(
                        "cannot upgrade a read lock to a write lock "
                        "(release the read section first)"
                    )
                self._waiting_writers += 1
                try:
                    while self._writer is not None or self._active_readers:
                        self._cond.wait()
                finally:
                    self._waiting_writers -= 1
                self._writer = me
                self._writer_depth = 1
        try:
            yield self
        finally:
            with self._cond:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._cond.notify_all()
