"""Reader/writer synchronisation for the parallel execution layer.

The cluster façade has two very different kinds of critical section:

* **routed traffic** (``ingest`` / ``forecast`` / the per-shard fan-outs) —
  frequent, short, and mutually compatible as long as the *topology* (ring
  layout, shard map) stays put; per-shard state is guarded by per-shard
  locks one level down;
* **topology changes** (``add_shard`` / ``remove_shard`` / ``failover`` /
  checkpoints) — rare, and incompatible with everything: a reader that
  observes a half-done rebalance routes a tenant into the void.

A single mutex (PR 3's design) serialises both kinds and caps the whole
cluster at one core.  :class:`RWLock` splits them: any number of readers
proceed concurrently, one writer excludes everyone.  The lock is

* **writer-preferring** — once a writer is waiting, *new* readers queue
  behind it, so a steady stream of traffic cannot starve a rebalance;
* **reentrant** — a thread already holding a read lock may re-enter
  ``read()`` even while a writer waits (blocking it there would deadlock),
  and a thread holding the write lock may nest both ``write()`` and
  ``read()`` sections.  Upgrading (``write()`` while holding only a read
  lock) deadlocks by construction and raises instead.

Owner tracking (:meth:`RWLock.assert_held` / :meth:`RWLock.assert_not_held`)
lets lock-sensitive internals fail fast when called without their lock,
instead of corrupting state silently — the runtime companion to the
``@requires_lock`` annotations the static analyzer checks.

Debug-mode lock-order detection (:class:`LockOrderMonitor`) builds a global
acquisition-order graph from per-thread lock stacks and raises
:class:`PotentialDeadlock` the moment two code paths disagree on ordering —
even when the interleaving that would actually deadlock never happens in
the test run.  Enable it with :func:`enable_lock_ordering` (or the
``REPRO_LOCK_ORDER=1`` environment variable, which the cluster stress
tests use in CI); it is off — a single attribute check per acquisition —
by default.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Set

from ..obs import histogram as _obs_histogram
from ..obs import metrics_enabled as _obs_metrics_enabled
from ..obs import now as _obs_now

__all__ = [
    "RWLock",
    "TrackedRLock",
    "PotentialDeadlock",
    "LockOrderMonitor",
    "lock_order_monitor",
    "enable_lock_ordering",
    "disable_lock_ordering",
    "lock_ordering",
]


# Wait time blocked on a named lock, labeled by lock name and mode
# (read / write / mutex).  Observed only on the *contended* path: an
# uncontended acquisition never reads the clock.
_LOCK_WAIT_SECONDS = _obs_histogram(
    "repro_lock_wait_seconds",
    "time spent blocked acquiring a named lock",
    labels=("lock", "mode"),
)


class PotentialDeadlock(RuntimeError):
    """Two code paths acquire the same locks in incompatible orders.

    Raised by the :class:`LockOrderMonitor` at *acquisition-order* level:
    the offending interleaving does not have to occur — one thread taking
    ``A`` then ``B`` while another (ever, anywhere) took ``B`` then ``A``
    is already a latent deadlock, and the monitor reports it on the second
    acquisition with the inverted cycle.
    """


class LockOrderMonitor:
    """Global acquisition-order graph over named locks.

    Participating locks (:class:`RWLock`, :class:`TrackedRLock`) report
    each acquisition attempt.  The monitor keeps a per-thread stack of
    held lock names; acquiring ``B`` while holding ``A`` records the edge
    ``A -> B``.  If the new edge closes a cycle (``B`` can already reach
    ``A``), :class:`PotentialDeadlock` is raised *before* the lock is
    taken, so the offending ``with`` block never runs.

    Reentrant acquisitions (the lock's name is already on the thread's
    stack) record no edges — re-entering a held lock cannot deadlock.
    Edges are keyed by lock *name*, so locks sharing a role (e.g. every
    ``shard:*`` lock under one cluster ordering class) can be given the
    same name deliberately, and unrelated subsystems distinct ones.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._mutex = threading.Lock()
        self._edges: Dict[str, Set[str]] = {}
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def reset(self) -> None:
        """Forget every recorded edge (between tests)."""
        with self._mutex:
            self._edges.clear()

    def edges(self) -> Dict[str, Set[str]]:
        """A copy of the observed order graph (``held -> then-acquired``)."""
        with self._mutex:
            return {name: set(successors) for name, successors in self._edges.items()}

    def held_by_current_thread(self) -> List[str]:
        """The current thread's lock stack, outermost first."""
        return list(self._stack())

    # ------------------------------------------------------------------ #
    def acquiring(self, name: str) -> None:
        """Record an acquisition attempt; raise on an order inversion.

        Called by participating locks *before* blocking on the physical
        lock, so a detected inversion surfaces as an exception instead of
        an actual (possibly intermittent) deadlock.
        """
        stack = self._stack()
        if name in stack:
            stack.append(name)  # reentrant: no new ordering information
            return
        held = [h for h in dict.fromkeys(stack) if h != name]
        if held:
            with self._mutex:
                for previous in held:
                    self._edges.setdefault(previous, set()).add(name)
                cycle = self._find_path(name, set(held))
                if cycle is not None:
                    raise PotentialDeadlock(
                        "lock-order inversion: acquiring "
                        f"{name!r} while holding {stack!r}, but the recorded "
                        f"order already requires {' -> '.join(cycle)} before "
                        f"{name!r}"
                    )
        stack.append(name)

    def released(self, name: str) -> None:
        """Pop the most recent acquisition of ``name`` off the thread stack."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    def _find_path(self, start: str, targets: Set[str]) -> Optional[List[str]]:
        """DFS for a path ``start -> ... -> t`` for any held ``t`` (a cycle)."""
        seen = {start}
        frontier: List[List[str]] = [[start]]
        while frontier:
            path = frontier.pop()
            for successor in self._edges.get(path[-1], ()):
                if successor in targets:
                    return path + [successor]
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(path + [successor])
        return None


_monitor = LockOrderMonitor()
if os.environ.get("REPRO_LOCK_ORDER", "").lower() in ("1", "true", "yes"):
    _monitor.enabled = True


def lock_order_monitor() -> LockOrderMonitor:
    """The process-wide lock-order monitor."""
    return _monitor


def enable_lock_ordering() -> None:
    """Turn on lock-order detection (fresh graph)."""
    _monitor.reset()
    _monitor.enabled = True


def disable_lock_ordering() -> None:
    """Turn off lock-order detection and drop the recorded graph."""
    _monitor.enabled = False
    _monitor.reset()


@contextmanager
def lock_ordering():
    """Scoped lock-order detection (the shape tests want)."""
    previously = _monitor.enabled
    enable_lock_ordering()
    try:
        yield _monitor
    finally:
        _monitor.enabled = previously
        _monitor.reset()


_anonymous = itertools.count()


class TrackedRLock:
    """A named re-entrant mutex that participates in lock-order detection.

    Drop-in for the ``threading.RLock`` uses in the cluster (context
    manager plus ``acquire``/``release``); when the monitor is disabled the
    overhead is one attribute check per acquisition.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name if name is not None else f"rlock-{next(_anonymous)}"
        self._inner = threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if _monitor.enabled:
            _monitor.acquiring(self.name)
        if blocking and timeout == -1 and _obs_metrics_enabled():
            # Try without blocking first so the uncontended path never
            # reads the clock; only an actual wait is timed.
            acquired = self._inner.acquire(False)
            if not acquired:
                waited_from = _obs_now()
                acquired = self._inner.acquire()
                _LOCK_WAIT_SECONDS.labels(lock=self.name, mode="mutex").observe(
                    _obs_now() - waited_from
                )
        else:
            acquired = self._inner.acquire(blocking, timeout)
        if not acquired and _monitor.enabled:
            _monitor.released(self.name)
        return acquired

    def release(self) -> None:
        self._inner.release()
        if _monitor.enabled:
            _monitor.released(self.name)

    def __enter__(self) -> "TrackedRLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TrackedRLock({self.name!r})"


class RWLock:
    """Writer-preferring, reentrant reader/writer lock.

    Usage::

        lock = RWLock()
        with lock.read():     # shared: many readers at once
            ...
        with lock.write():    # exclusive: no readers, no other writer
            ...

    ``name`` feeds the lock-order monitor; locks playing the same role
    (e.g. every cluster's topology lock) may share one deliberately.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name if name is not None else f"rwlock-{next(_anonymous)}"
        self._cond = threading.Condition()
        self._active_readers = 0      # threads currently inside read()
        self._waiting_writers = 0     # threads blocked entering write()
        self._writer: int | None = None   # ident of the thread holding write
        self._writer_depth = 0
        self._local = threading.local()   # per-thread read re-entrancy depth

    def _read_depth(self) -> int:
        return getattr(self._local, "depth", 0)

    # ------------------------------------------------------------------ #
    # Owner tracking — the runtime side of @requires_lock annotations.
    # ------------------------------------------------------------------ #
    def held_write(self) -> bool:
        """Whether the calling thread holds the exclusive write side."""
        return self._writer == threading.get_ident()

    def held_read(self) -> bool:
        """Whether the calling thread holds a read section (or the write
        side, which is strictly stronger)."""
        return self._read_depth() > 0 or self.held_write()

    def assert_held(self, mode: str = "any") -> None:
        """Fail fast when the calling thread does not hold the lock.

        ``mode``: ``"write"`` requires the exclusive side, ``"read"``
        accepts a read section (or the write side, which subsumes it),
        ``"any"`` accepts either.  Lock-sensitive internals call this at
        entry so a caller that forgot the lock raises here, deterministic
        and attributable, instead of corrupting state on some interleaving.
        """
        if mode not in ("any", "read", "write"):
            raise ValueError(f"unknown mode {mode!r}; use 'any', 'read' or 'write'")
        if mode == "write":
            satisfied = self.held_write()
        elif mode == "read":
            satisfied = self.held_read()
        else:
            satisfied = self.held_read() or self.held_write()
        if not satisfied:
            raise RuntimeError(
                f"lock {self.name!r} must be held ({mode}) by the calling "
                "thread; this method is internal to a locked section"
            )

    def assert_not_held(self) -> None:
        """Fail fast when the calling thread *does* hold the lock.

        Guards entry points that acquire the lock in a non-reentrant
        pattern (e.g. an upgrade-prone helper) against self-deadlock.
        """
        if self.held_read() or self.held_write():
            raise RuntimeError(
                f"lock {self.name!r} is already held by the calling thread"
            )

    # ------------------------------------------------------------------ #
    @contextmanager
    def read(self):
        """Shared access; blocks while a writer holds or waits for the lock."""
        me = threading.get_ident()
        track = _monitor.enabled
        if track:
            _monitor.acquiring(self.name)
        try:
            with self._cond:
                if self._writer == me:
                    # Reading inside one's own write section: already
                    # exclusive, just extend the write hold.
                    self._writer_depth += 1
                    nested_write = True
                else:
                    nested_write = False
                    depth = self._read_depth()
                    if depth == 0:
                        # New readers queue behind waiting writers
                        # (preference), but re-entrant readers pass — they
                        # already hold the lock, and parking them behind the
                        # writer they block would deadlock both.  The clock
                        # is read only when this reader will actually wait.
                        waited_from = 0.0
                        if (
                            self._writer is not None or self._waiting_writers
                        ) and _obs_metrics_enabled():
                            waited_from = _obs_now()
                        while self._writer is not None or self._waiting_writers:
                            self._cond.wait()
                        if waited_from:
                            _LOCK_WAIT_SECONDS.labels(lock=self.name, mode="read").observe(
                                _obs_now() - waited_from
                            )
                        self._active_readers += 1
                    self._local.depth = depth + 1
        except BaseException:
            if track:
                _monitor.released(self.name)
            raise
        try:
            yield self
        finally:
            with self._cond:
                if nested_write:
                    self._writer_depth -= 1
                else:
                    self._local.depth -= 1
                    if self._local.depth == 0:
                        self._active_readers -= 1
                        if self._active_readers == 0:
                            self._cond.notify_all()
            if track:
                _monitor.released(self.name)

    @contextmanager
    def write(self):
        """Exclusive access; reentrant for the thread already writing."""
        me = threading.get_ident()
        track = _monitor.enabled
        if track:
            _monitor.acquiring(self.name)
        try:
            with self._cond:
                if self._writer == me:
                    self._writer_depth += 1
                else:
                    if self._read_depth():
                        raise RuntimeError(
                            "cannot upgrade a read lock to a write lock "
                            "(release the read section first)"
                        )
                    self._waiting_writers += 1
                    waited_from = 0.0
                    if (
                        self._writer is not None or self._active_readers
                    ) and _obs_metrics_enabled():
                        waited_from = _obs_now()
                    try:
                        while self._writer is not None or self._active_readers:
                            self._cond.wait()
                    finally:
                        self._waiting_writers -= 1
                    if waited_from:
                        _LOCK_WAIT_SECONDS.labels(lock=self.name, mode="write").observe(
                            _obs_now() - waited_from
                        )
                    self._writer = me
                    self._writer_depth = 1
        except BaseException:
            if track:
                _monitor.released(self.name)
            raise
        try:
            yield self
        finally:
            with self._cond:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._cond.notify_all()
            if track:
                _monitor.released(self.name)
