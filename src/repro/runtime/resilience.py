"""Retry backoff and circuit breaking for calls that cross a process gap.

An RPC to a worker process can fail three ways, and each wants a
different reaction:

* **transient** (a dropped frame, an injected hiccup) — retry over the
  same stream, with jittered backoff so a thundering herd of callers
  doesn't resynchronise onto the struggling worker;
* **stalled** (no reply within budget) — fail *this* call fast, and if
  it keeps happening stop paying the timeout at all: trip a breaker and
  fail subsequent calls instantly until a probe shows recovery;
* **dead** (pipe EOF from an exited process) — no retry helps; the
  caller escalates to failover.

This module owns the first two as model-free primitives:

* :class:`RetryPolicy` — decorrelated-jitter backoff (each sleep drawn
  uniformly from ``[base, 3 * previous]``, capped), seeded so drills are
  reproducible, with the total budget capped by the caller's deadline —
  a retry loop never outlives the request it serves.
* :class:`CircuitBreaker` — the classic three-state machine: **closed**
  (healthy) → **open** after ``failure_threshold`` *consecutive*
  failures (calls fail fast with :class:`~repro.errors.CircuitOpen`,
  zero I/O) → **half-open** after ``reset_timeout`` (exactly one probe
  call goes through; success closes, failure reopens).

Both are deliberately transport-agnostic — :class:`ProcessShard` wires
them to the cluster's sockets, but nothing here knows about sockets.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from .. import obs
from ..errors import CircuitOpen, DeadlineExceeded, TransientWireError

__all__ = ["CircuitBreaker", "RetryPolicy"]

T = TypeVar("T")

_BREAKER_TRANSITIONS = obs.counter(
    "repro_resilience_breaker_transitions_total",
    "circuit breaker state transitions",
    labels=("breaker", "to"),
)


class CircuitBreaker:
    """Per-dependency failure gate: fail fast instead of paying timeouts.

    Thread-safe; every state transition is also counted in the
    ``repro_resilience_breaker_transitions_total{breaker,to}`` metric so
    a drill (or an operator) can watch trips and recoveries.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    @property
    def trips(self) -> int:
        """How many times the breaker has transitioned closed/half-open → open."""
        with self._lock:
            return self._trips

    def _transition(self, to: str) -> None:
        self._state = to
        _BREAKER_TRANSITIONS.labels(breaker=self.name, to=to).inc()

    def allow(self) -> None:
        """Gate one call: pass through, or raise :class:`CircuitOpen`.

        While open, raises until ``reset_timeout`` has elapsed since the
        trip; the first caller after that is admitted as the half-open
        probe.  While half-open, further callers are rejected until the
        probe reports — one probe at a time keeps a recovering worker
        from being dogpiled.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return
            now = obs.now()
            if self._state == self.OPEN:
                remaining = self._opened_at + self.reset_timeout - now
                if remaining > 0:
                    raise CircuitOpen(self.name, remaining)
                self._transition(self.HALF_OPEN)
                return  # this caller is the probe
            # Half-open with a probe already in flight.
            raise CircuitOpen(self.name, 0.0)

    def record_success(self) -> None:
        """A gated call completed: close (probe succeeded) / stay closed."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """A gated call failed: count toward the trip threshold, or reopen."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                # The probe failed — the worker is still sick.
                self._trips += 1
                self._opened_at = obs.now()
                self._transition(self.OPEN)
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trips += 1
                self._opened_at = obs.now()
                self._transition(self.OPEN)


class RetryPolicy:
    """Decorrelated-jitter retries with a deadline-capped budget.

    ``max_attempts`` counts *total* attempts (1 = no retries).  Sleeps
    follow the decorrelated-jitter recipe: the first backoff is ``base``,
    each subsequent one is drawn uniformly from ``[base, 3 * previous]``
    and clamped to ``cap`` — jitter de-synchronises competing callers
    while the expected backoff still grows geometrically.  A ``seed``
    makes the whole sleep sequence reproducible for drills.

    When the caller passes a ``deadline`` (absolute, on the
    :func:`repro.obs.now` clock), no sleep may cross it: once the budget
    is spent the loop raises :class:`~repro.errors.DeadlineExceeded`
    (chaining the last transport error) instead of retrying past the
    point where the answer could still matter.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base: float = 0.05,
        cap: float = 2.0,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base <= 0 or cap < base:
            raise ValueError(f"need 0 < base <= cap, got base={base} cap={cap}")
        self.max_attempts = max_attempts
        self.base = base
        self.cap = cap
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def next_delay(self, previous: Optional[float]) -> float:
        """The next backoff sleep given the previous one (``None`` = first)."""
        if previous is None:
            return self.base
        with self._lock:
            return min(self.cap, self._rng.uniform(self.base, previous * 3.0))

    def run(
        self,
        fn: Callable[[], T],
        retryable: Tuple[Type[BaseException], ...] = (TransientWireError,),
        deadline: Optional[float] = None,
        on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
    ) -> T:
        """Call ``fn`` until it succeeds, retries run out, or the deadline does.

        Only ``retryable`` errors are retried; everything else propagates
        on the first occurrence.  ``on_retry(attempt, delay, error)`` is
        invoked before each backoff sleep (metrics hooks live there, not
        here).
        """
        attempt = 1
        delay: Optional[float] = None
        while True:
            try:
                return fn()
            except retryable as error:
                if attempt >= self.max_attempts:
                    raise
                delay = self.next_delay(delay)
                if deadline is not None:
                    remaining = deadline - obs.now()
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            f"retry budget exhausted by deadline after "
                            f"{attempt} attempt(s): {error}"
                        ) from error
                    delay = min(delay, remaining)
                if on_retry is not None:
                    on_retry(attempt, delay, error)
                time.sleep(delay)
                attempt += 1
