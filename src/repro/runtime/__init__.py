"""``repro.runtime`` — the parallel execution layer under the cluster.

PR 3's :class:`~repro.cluster.sharded.ShardedForecaster` gave the system N
model replicas but one global lock, so N shards still used one core.  This
package holds the concurrency primitives that fix that, kept separate from
the cluster so they stay reusable (and testable) on their own:

* :class:`RWLock` — writer-preferring reentrant reader/writer lock: routed
  traffic shares the topology read-side, rebalances/checkpoints take the
  exclusive write-side — with owner tracking (``assert_held`` /
  ``assert_not_held``) so lock-sensitive internals fail fast when called
  without their lock;
* :class:`TrackedRLock` / :class:`LockOrderMonitor` — named locks feeding
  a debug-mode acquisition-order graph that raises
  :class:`PotentialDeadlock` on order inversions (enable with
  :func:`enable_lock_ordering` or ``REPRO_LOCK_ORDER=1``);
* :func:`guarded_by` / :func:`requires_lock` / :func:`unguarded` — no-op
  annotations the static analyzer (``python -m repro.analysis``) enforces;
* :class:`Executor` / :class:`SerialExecutor` / :class:`PoolExecutor` /
  :class:`ProcessExecutor` — pluggable fan-out strategies for per-shard
  work (inline, thread pool, or worker processes; threads reach S cores
  only while the work is NumPy-bound, processes always do — at the price
  of wire-codec-serialisable tasks, see :mod:`repro.runtime.procpool`);
* :func:`map_shards` — the one fan-out idiom: ``fn(shard_id)`` per shard,
  results keyed and ordered by shard id;
* :class:`RetryPolicy` / :class:`CircuitBreaker` — resilience primitives
  for calls that cross a process gap: decorrelated-jitter retries with a
  deadline-capped budget, and a per-dependency breaker that fails fast
  while a worker is sick (see :mod:`repro.runtime.resilience`).

See ``ARCHITECTURE.md`` for how these compose with the per-shard locks in
the cluster layer, and ``benchmarks/test_parallel_scaling.py`` for the
measured speedup.
"""

from .annotations import guarded_by, requires_lock, unguarded
from .executor import Executor, PoolExecutor, SerialExecutor, map_shards
from .resilience import CircuitBreaker, RetryPolicy
from .locks import (
    LockOrderMonitor,
    PotentialDeadlock,
    RWLock,
    TrackedRLock,
    disable_lock_ordering,
    enable_lock_ordering,
    lock_order_monitor,
    lock_ordering,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "PoolExecutor",
    "ProcessExecutor",
    "map_shards",
    "task_name",
    "RWLock",
    "TrackedRLock",
    "LockOrderMonitor",
    "PotentialDeadlock",
    "lock_order_monitor",
    "enable_lock_ordering",
    "disable_lock_ordering",
    "lock_ordering",
    "guarded_by",
    "requires_lock",
    "unguarded",
    "CircuitBreaker",
    "RetryPolicy",
]


def __getattr__(name):
    # ProcessExecutor loads lazily (PEP 562): the worker half runs as
    # ``python -m repro.runtime.procpool``, and an eager import here would
    # put the module in sys.modules before runpy executes it as __main__,
    # tripping the double-import RuntimeWarning in every worker.
    if name in ("ProcessExecutor", "task_name"):
        from . import procpool

        return getattr(procpool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
